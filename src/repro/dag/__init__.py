"""Transduction DAGs (Section 4): typed dataflow graphs of operators.

A :class:`TransductionDAG` is a labelled directed acyclic graph whose
edges carry data-trace types and whose processing vertices carry operator
templates or structural operators (MRG / RR / HASH / UNQ / SORT).  The
module provides:

- :mod:`repro.dag.graph` — construction (the Figure 2 builder API),
  structural validation, topological order;
- :mod:`repro.dag.typecheck` — the edge/operator type-consistency check
  performed by ``getStormTopology()`` in the paper;
- :mod:`repro.dag.semantics` — the denotational edge-labelling semantics
  of Section 4 (evaluate a DAG on input traces to output traces);
- :mod:`repro.dag.rewrite` — the Theorem 4.3 parallelization equations,
  MRG/HASH reordering, and fusion, used to derive deployments that are
  provably (and here: testably) equivalent to the source DAG
  (Corollary 4.4);
- :mod:`repro.dag.viz` — ASCII rendering of DAGs in the style of the
  paper's figures.
"""

from repro.dag.graph import TransductionDAG, Vertex, Edge, VertexKind
from repro.dag.semantics import evaluate_dag, EvaluationResult, check_dag_invariance
from repro.dag.rewrite import parallelize_vertex, deploy, fuse_linear_chains
from repro.dag.typecheck import typecheck_dag
from repro.dag.planner import Plan, plan_parallelism
from repro.dag.viz import render_dag

__all__ = [
    "TransductionDAG",
    "Vertex",
    "Edge",
    "VertexKind",
    "evaluate_dag",
    "EvaluationResult",
    "check_dag_invariance",
    "parallelize_vertex",
    "deploy",
    "fuse_linear_chains",
    "typecheck_dag",
    "Plan",
    "plan_parallelism",
    "render_dag",
]
