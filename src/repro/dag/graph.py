"""Transduction DAG construction and structural validation.

A DAG is a tuple ``(S, N, T, E, ->, lambda)`` (Section 4): source
vertices, processing vertices, sink vertices, and typed edges.  The
builder API mirrors the Figure 2 embedded DSL:

>>> dag = TransductionDAG()
>>> src = dag.add_source("events", output_type=U)
>>> op1 = dag.add_op(filter_op, parallelism=2, upstream=[src])
>>> op2 = dag.add_op(sum_op, parallelism=3, upstream=[op1])
>>> dag.add_sink("printer", upstream=op2)
>>> dag.validate()

Processing vertices may take several upstream edges; at evaluation and
deployment time those inputs are combined with a marker-aligned ``MRG``
exactly as the paper's semantics prescribes.  Structural vertices
(explicit merges and splitters) are first-class so that the rewrite rules
of :mod:`repro.dag.rewrite` can be expressed as graph surgery.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import DagError
from repro.operators.base import Operator
from repro.operators.merge import Merge
from repro.operators.split import Splitter
from repro.traces.trace_type import DataTraceType


class VertexKind(enum.Enum):
    """The role a vertex plays in the DAG."""

    SOURCE = "source"
    SINK = "sink"
    OP = "op"
    MERGE = "merge"
    SPLIT = "split"


@dataclass
class Vertex:
    """One DAG vertex.

    ``payload`` is an :class:`Operator` for ``OP``, a :class:`Merge` for
    ``MERGE``, a :class:`Splitter` for ``SPLIT``, and ``None`` for
    sources/sinks.  ``parallelism`` is the deployment hint of Figure 2
    (meaningful for OP vertices only).
    """

    vertex_id: int
    kind: VertexKind
    name: str
    payload: Any = None
    parallelism: int = 1
    #: For SOURCE vertices: the trace type of the emitted stream.
    output_type: Optional[DataTraceType] = None
    #: For SINK vertices: the trace type of the consumed stream.
    input_type: Optional[DataTraceType] = None

    def __repr__(self):
        return f"Vertex({self.vertex_id}, {self.kind.value}, {self.name!r})"


@dataclass
class Edge:
    """A typed channel from ``src`` (output port) to ``dst`` (input port).

    Ports order multiple channels at a splitter's output or a
    merge/operator's input; they are dense indexes starting at 0.
    """

    edge_id: int
    src: int
    src_port: int
    dst: int
    dst_port: int
    trace_type: Optional[DataTraceType] = None

    def __repr__(self):
        return (
            f"Edge({self.src}:{self.src_port} -> {self.dst}:{self.dst_port}, "
            f"{self.trace_type})"
        )


class TransductionDAG:
    """A typed dataflow graph of transduction operators."""

    def __init__(self, name: str = "dag"):
        self.name = name
        self.vertices: Dict[int, Vertex] = {}
        self.edges: Dict[int, Edge] = {}
        self._vertex_counter = itertools.count()
        self._edge_counter = itertools.count()

    # ------------------------------------------------------------------
    # Builder API (mirrors Figure 2).
    # ------------------------------------------------------------------

    def add_source(self, name: str, output_type: Optional[DataTraceType] = None) -> Vertex:
        """Add a source vertex (exactly one outgoing edge once wired)."""
        return self._add_vertex(VertexKind.SOURCE, name, output_type=output_type)

    def add_sink(
        self,
        name: str,
        upstream: Optional["Vertex"] = None,
        input_type: Optional[DataTraceType] = None,
    ) -> Vertex:
        """Add a sink vertex, optionally wiring it to ``upstream``."""
        sink = self._add_vertex(VertexKind.SINK, name, input_type=input_type)
        if upstream is not None:
            self.connect(upstream, sink, trace_type=input_type)
        return sink

    def add_op(
        self,
        operator: Operator,
        parallelism: int = 1,
        upstream: Sequence["Vertex"] = (),
        name: str = "",
        edge_types: Optional[Sequence[Optional[DataTraceType]]] = None,
    ) -> Vertex:
        """Add a processing vertex and wire edges from each ``upstream``.

        ``edge_types`` optionally annotates the new incoming edges; when
        omitted, the operator's declared ``input_type`` is used.
        """
        vertex = self._add_vertex(
            VertexKind.OP, name or operator.label(), payload=operator
        )
        vertex.parallelism = parallelism
        for i, up in enumerate(upstream):
            ttype = None
            if edge_types is not None:
                ttype = edge_types[i]
            elif operator.input_type is not None:
                ttype = operator.input_type
            self.connect(up, vertex, trace_type=ttype)
        return vertex

    def add_merge(
        self, merge: Merge, upstream: Sequence["Vertex"] = (), name: str = ""
    ) -> Vertex:
        """Add an explicit marker-aligned merge vertex."""
        vertex = self._add_vertex(VertexKind.MERGE, name or merge.label(), payload=merge)
        for up in upstream:
            self.connect(up, vertex)
        return vertex

    def add_split(
        self, splitter: Splitter, upstream: Optional["Vertex"] = None, name: str = ""
    ) -> Vertex:
        """Add an explicit splitter vertex (RR / HASH / UNQ)."""
        vertex = self._add_vertex(
            VertexKind.SPLIT, name or splitter.label(), payload=splitter
        )
        if upstream is not None:
            self.connect(upstream, vertex)
        return vertex

    def connect(
        self,
        src: "Vertex",
        dst: "Vertex",
        trace_type: Optional[DataTraceType] = None,
        src_port: Optional[int] = None,
        dst_port: Optional[int] = None,
    ) -> Edge:
        """Add a typed edge; ports default to the next free index."""
        if src.vertex_id not in self.vertices or dst.vertex_id not in self.vertices:
            raise DagError("both endpoints must belong to this DAG")
        if src_port is None:
            src_port = len(self.out_edges(src))
        if dst_port is None:
            dst_port = len(self.in_edges(dst))
        edge = Edge(
            next(self._edge_counter), src.vertex_id, src_port, dst.vertex_id, dst_port,
            trace_type,
        )
        self.edges[edge.edge_id] = edge
        return edge

    def _add_vertex(self, kind: VertexKind, name: str, **kwargs) -> Vertex:
        vertex = Vertex(next(self._vertex_counter), kind, name, **kwargs)
        self.vertices[vertex.vertex_id] = vertex
        return vertex

    # ------------------------------------------------------------------
    # Structure queries.
    # ------------------------------------------------------------------

    def in_edges(self, vertex: "Vertex") -> List[Edge]:
        """Incoming edges of ``vertex``, sorted by destination port."""
        found = [e for e in self.edges.values() if e.dst == vertex.vertex_id]
        return sorted(found, key=lambda e: e.dst_port)

    def out_edges(self, vertex: "Vertex") -> List[Edge]:
        """Outgoing edges of ``vertex``, sorted by source port."""
        found = [e for e in self.edges.values() if e.src == vertex.vertex_id]
        return sorted(found, key=lambda e: e.src_port)

    def sources(self) -> List[Vertex]:
        return [v for v in self.vertices.values() if v.kind == VertexKind.SOURCE]

    def sinks(self) -> List[Vertex]:
        return [v for v in self.vertices.values() if v.kind == VertexKind.SINK]

    def processing_vertices(self) -> List[Vertex]:
        return [
            v
            for v in self.vertices.values()
            if v.kind in (VertexKind.OP, VertexKind.MERGE, VertexKind.SPLIT)
        ]

    def upstream_vertex(self, edge: Edge) -> Vertex:
        return self.vertices[edge.src]

    def downstream_vertex(self, edge: Edge) -> Vertex:
        return self.vertices[edge.dst]

    def topological_order(self) -> List[Vertex]:
        """Vertices in a topological order; raises on cycles."""
        indegree = {vid: 0 for vid in self.vertices}
        for edge in self.edges.values():
            indegree[edge.dst] += 1
        ready = sorted(vid for vid, deg in indegree.items() if deg == 0)
        order: List[Vertex] = []
        while ready:
            vid = ready.pop(0)
            order.append(self.vertices[vid])
            for edge in self.out_edges(self.vertices[vid]):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self.vertices):
            raise DagError("graph contains a cycle")
        return order

    # ------------------------------------------------------------------
    # Validation.
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Structural checks: acyclicity, arity constraints, dense ports.

        - sources have exactly one outgoing and no incoming edge;
        - sinks have exactly one incoming and no outgoing edge;
        - splitter out-degree equals the splitter's ``n_outputs``;
        - merge in-degree equals the merge's ``n_inputs``;
        - input/output ports of each vertex are dense (0..k-1).
        """
        self.topological_order()  # raises on cycles
        for vertex in self.vertices.values():
            ins = self.in_edges(vertex)
            outs = self.out_edges(vertex)
            if vertex.kind == VertexKind.SOURCE:
                if ins:
                    raise DagError(f"source {vertex.name} has incoming edges")
                if len(outs) != 1:
                    raise DagError(
                        f"source {vertex.name} must have exactly one outgoing edge"
                    )
            elif vertex.kind == VertexKind.SINK:
                if outs:
                    raise DagError(f"sink {vertex.name} has outgoing edges")
                if len(ins) != 1:
                    raise DagError(
                        f"sink {vertex.name} must have exactly one incoming edge"
                    )
            elif vertex.kind == VertexKind.OP:
                if not ins:
                    raise DagError(f"operator {vertex.name} has no input")
                if not outs:
                    raise DagError(f"operator {vertex.name} has no consumer")
            elif vertex.kind == VertexKind.SPLIT:
                if len(ins) != 1:
                    raise DagError(f"splitter {vertex.name} must have one input")
                if len(outs) != vertex.payload.n_outputs:
                    raise DagError(
                        f"splitter {vertex.name} declares {vertex.payload.n_outputs} "
                        f"outputs but has {len(outs)} outgoing edges"
                    )
            elif vertex.kind == VertexKind.MERGE:
                if len(ins) != vertex.payload.n_inputs:
                    raise DagError(
                        f"merge {vertex.name} declares {vertex.payload.n_inputs} "
                        f"inputs but has {len(ins)} incoming edges"
                    )
                if len(outs) != 1:
                    raise DagError(f"merge {vertex.name} must have one output")
            for port, edge in enumerate(ins):
                if edge.dst_port != port:
                    raise DagError(f"non-dense input ports at {vertex.name}")
            for port, edge in enumerate(outs):
                if edge.src_port != port:
                    raise DagError(f"non-dense output ports at {vertex.name}")

    def __repr__(self):
        return (
            f"TransductionDAG({self.name!r}, {len(self.vertices)} vertices, "
            f"{len(self.edges)} edges)"
        )
