"""Semantics-preserving DAG rewrites (Theorem 4.3, Corollary 4.4).

The parallelization equations of Theorem 4.3:

- ``MRG >> beta  =  (beta || ... || beta) >> MRG``  (stateless ``beta``)
- ``gamma  =  HASH >> (gamma || ... || gamma) >> MRG``  (keyed ordered)
- ``delta  =  HASH >> (delta || ... || delta) >> MRG``  (keyed unordered)
- ``SORT   =  HASH >> (SORT  || ... || SORT ) >> MRG``

plus ``beta = SPLIT >> (beta || ...) >> MRG`` for any splitter when
``beta`` is stateless (round-robin is the load-balancing choice).

:func:`parallelize_vertex` applies one equation as graph surgery;
:func:`deploy` applies it to every OP vertex according to its
parallelism hint, yielding the deployed DAG (Figure 1, top).
:func:`reorder_merge_split` implements the "Reordering MRG and HASH"
table of Section 4, and :func:`fuse_linear_chains` computes the fusion
groups (``MRG;op`` / ``op;HASH``) that the compiler collapses into single
deployment units (Figure 1, bottom).  Corollary 4.4 — any deployment is
equivalent to the source DAG — is exercised in the test suite by
evaluating both graphs on random inputs.
"""

from __future__ import annotations

import copy as _copy
from typing import Callable, Dict, List, Optional

from repro.errors import DagError
from repro.dag.graph import Edge, TransductionDAG, Vertex, VertexKind
from repro.operators.merge import Merge
from repro.operators.sort import SortOp
from repro.operators.split import HashSplit, RoundRobinSplit, Splitter
from repro.operators.stateless import OpStateless


def copy_dag(dag: TransductionDAG) -> TransductionDAG:
    """Structural copy sharing operator payloads (operators are immutable
    configuration; all run state lives outside them)."""
    clone = TransductionDAG(dag.name)
    clone.vertices = {
        vid: Vertex(
            vertex_id=v.vertex_id,
            kind=v.kind,
            name=v.name,
            payload=v.payload,
            parallelism=v.parallelism,
            output_type=v.output_type,
            input_type=v.input_type,
        )
        for vid, v in dag.vertices.items()
    }
    clone.edges = {
        eid: Edge(e.edge_id, e.src, e.src_port, e.dst, e.dst_port, e.trace_type)
        for eid, e in dag.edges.items()
    }
    # Continue id counters beyond the copied ids.
    import itertools

    next_vid = max(clone.vertices, default=-1) + 1
    next_eid = max(clone.edges, default=-1) + 1
    clone._vertex_counter = itertools.count(next_vid)
    clone._edge_counter = itertools.count(next_eid)
    return clone


def choose_splitter(operator, n: int) -> Splitter:
    """The Theorem 4.3 splitter for parallelizing ``operator`` ``n`` ways.

    Stateless operators may be split arbitrarily (round-robin balances
    load); every keyed or sorting operator needs ``HASH`` so that each
    key's items meet a single instance.
    """
    if isinstance(operator, OpStateless):
        return RoundRobinSplit(n)
    return HashSplit(n)


def parallelize_vertex(
    dag: TransductionDAG,
    vertex_id: int,
    n: int,
    splitter: Optional[Splitter] = None,
) -> TransductionDAG:
    """Return a new DAG with OP vertex ``vertex_id`` replicated ``n`` ways.

    The vertex is replaced by ``SPLIT >> (op || ... || op) >> MRG``.
    Requires the vertex to have exactly one consumer (true of every DAG
    in the paper's figures); multi-input vertices get an explicit ``MRG``
    in front first, preserving the implicit-merge semantics.
    """
    result = copy_dag(dag)
    vertex = result.vertices.get(vertex_id)
    if vertex is None or vertex.kind != VertexKind.OP:
        raise DagError(f"vertex {vertex_id} is not a processing (OP) vertex")
    if n < 1:
        raise DagError("parallelism must be positive")
    out_edges = result.out_edges(vertex)
    if len(out_edges) != 1:
        raise DagError(
            f"parallelize_vertex requires a single consumer; {vertex.name} has "
            f"{len(out_edges)}"
        )
    if n == 1:
        vertex.parallelism = 1
        return result

    in_edges = result.in_edges(vertex)
    in_type = in_edges[0].trace_type
    (out_edge,) = out_edges
    out_type = out_edge.trace_type

    # Explicit merge in front when the vertex has several inputs.
    if len(in_edges) > 1:
        front_merge = result.add_merge(Merge(len(in_edges)))
        for port, edge in enumerate(in_edges):
            edge.dst = front_merge.vertex_id
            edge.dst_port = port
        feed_edge = result.connect(front_merge, vertex, trace_type=in_type)
        in_edges = [feed_edge]

    operator = vertex.payload
    split = splitter or choose_splitter(operator, n)
    if split.n_outputs != n:
        raise DagError("splitter fan-out must equal the parallelism degree")

    split_vertex = result.add_split(split)
    (in_edge,) = in_edges
    in_edge.dst = split_vertex.vertex_id
    in_edge.dst_port = 0

    merge_vertex = result.add_merge(Merge(n))

    copies: List[Vertex] = [vertex]
    for _ in range(n - 1):
        copies.append(
            result.add_op(operator, parallelism=1, name=vertex.name)
        )
    vertex.parallelism = 1

    for port, copy_vertex in enumerate(copies):
        result.connect(
            split_vertex, copy_vertex, trace_type=in_type, src_port=port, dst_port=0
        )
        result.connect(
            copy_vertex, merge_vertex, trace_type=out_type, src_port=0, dst_port=port
        )

    out_edge.src = merge_vertex.vertex_id
    out_edge.src_port = 0

    result.validate()
    return result


def deploy(
    dag: TransductionDAG,
    parallelism: Optional[Dict[int, int]] = None,
) -> TransductionDAG:
    """Apply Theorem 4.3 to every OP vertex per its parallelism hint.

    ``parallelism`` overrides hints by vertex id.  The result is the
    deployed DAG of Figure 1 (top form, before fusion): every
    parallelized stage is an explicit ``SPLIT >> copies >> MRG`` diamond.
    """
    result = copy_dag(dag)
    op_ids = [v.vertex_id for v in result.vertices.values() if v.kind == VertexKind.OP]
    for vid in op_ids:
        hint = result.vertices[vid].parallelism
        if parallelism is not None:
            hint = parallelism.get(vid, hint)
        if hint > 1:
            result = parallelize_vertex(result, vid, hint)
    return result


def reorder_merge_split(dag: TransductionDAG, merge_id: int) -> TransductionDAG:
    """Apply the "Reordering MRG and HASH" rule at one MRG >> SPLIT pair.

    Pattern: a MERGE vertex whose single consumer is a SPLIT vertex.
    Rewrites ``MRG_m >> SPLIT_n`` into per-input splitters followed by
    per-channel merges: input ``i`` goes to a fresh ``SPLIT_n`` and the
    ``j``-th outputs of all splitters meet in a fresh ``MRG_m`` feeding
    the original ``j``-th consumer.  Semantics-preserving for HASH (and
    any content-deterministic splitter) per the Section 4 table.
    """
    result = copy_dag(dag)
    merge_vertex = result.vertices.get(merge_id)
    if merge_vertex is None or merge_vertex.kind != VertexKind.MERGE:
        raise DagError(f"vertex {merge_id} is not a MERGE vertex")
    (mid_edge,) = result.out_edges(merge_vertex)
    split_vertex = result.vertices[mid_edge.dst]
    if split_vertex.kind != VertexKind.SPLIT:
        raise DagError("reorder_merge_split requires MRG feeding a SPLIT")
    splitter: Splitter = split_vertex.payload
    if isinstance(splitter, RoundRobinSplit):
        raise DagError("reordering MRG with a round-robin splitter is unsound")

    in_edges = result.in_edges(merge_vertex)
    out_edges = result.out_edges(split_vertex)
    m, n = len(in_edges), len(out_edges)
    stream_type = mid_edge.trace_type

    new_splits = []
    for edge in in_edges:
        new_split = result.add_split(type(splitter)(n))
        edge.dst = new_split.vertex_id
        edge.dst_port = 0
        new_splits.append(new_split)

    for j, out_edge in enumerate(out_edges):
        new_merge = result.add_merge(Merge(m))
        for i, new_split in enumerate(new_splits):
            result.connect(
                new_split, new_merge, trace_type=stream_type, src_port=j, dst_port=i
            )
        out_edge.src = new_merge.vertex_id
        out_edge.src_port = 0

    # Remove the old MRG >> SPLIT pair and the edge between them.
    del result.edges[mid_edge.edge_id]
    del result.vertices[merge_vertex.vertex_id]
    del result.vertices[split_vertex.vertex_id]
    result.validate()
    return result


def fuse_linear_chains(dag: TransductionDAG) -> List[List[int]]:
    """Compute fusion groups: maximal chains collapsible into one unit.

    A MERGE or SORT vertex is fused into its single consumer and a SPLIT
    vertex into its single producer (the paper fuses ``MRG``/``SORT``
    with the following operator and ``op >> HASH`` into ``op;HASH`` to
    remove communication hops).  Returns vertex-id groups in topological
    order; the compiler maps each group to one deployment unit.
    """
    order = dag.topological_order()
    group_of: Dict[int, List[int]] = {}
    groups: List[List[int]] = []

    def new_group(vid: int) -> List[int]:
        group = [vid]
        groups.append(group)
        group_of[vid] = group
        return group

    for vertex in order:
        vid = vertex.vertex_id
        if vertex.kind in (VertexKind.SOURCE, VertexKind.SINK):
            new_group(vid)
            continue
        if vertex.kind == VertexKind.MERGE:
            # Fuse forward into the consumer: group assigned lazily when
            # the consumer is visited; start tentative group now.
            new_group(vid)
            continue
        if vertex.kind == VertexKind.OP:
            # Absorb a directly preceding MERGE (single-consumer) group.
            ins = dag.in_edges(vertex)
            if len(ins) == 1:
                producer = dag.vertices[ins[0].src]
                if producer.kind == VertexKind.MERGE:
                    group = group_of[producer.vertex_id]
                    group.append(vid)
                    group_of[vid] = group
                    continue
            new_group(vid)
            continue
        if vertex.kind == VertexKind.SPLIT:
            # Fuse into the single producer's group.
            (in_edge,) = dag.in_edges(vertex)
            group = group_of[in_edge.src]
            group.append(vid)
            group_of[vid] = group
            continue
    return groups
