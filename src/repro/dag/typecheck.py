"""Type-consistency checking of transduction DAGs.

This is the check performed by ``dag.getStormTopology()`` in Figure 2:
every edge's data-trace type must be consistent with the operators at its
endpoints.  The practical types of Section 4 are classified by *stream
kind* — ``"U"`` (unordered between markers) or ``"O"`` (per-key ordered
between markers) — and the rules are:

- ``OpStateless`` / ``OpKeyedUnordered`` declare U inputs; by
  *subsumption* they also accept O edges (consistency w.r.t. the coarser
  U equivalence implies consistency w.r.t. the finer O equivalence —
  Figure 5's stateless ``Map`` consumes the ordered LI output).  Their
  outputs are U.
- ``OpKeyedOrdered`` requires O inputs: it is order-sensitive, so a U
  edge is a type error (the Section 2 bug: feeding ``LI`` a stream whose
  per-key order was destroyed).  Its output is O.
- ``SORT``: any input kind, O output.
- ``RR``: requires a U edge **with no subsumption** — round-robin
  splitting an ordered stream separates same-key items and destroys the
  order downstream merges would need.
- ``HASH`` / ``UNQ`` / ``MRG``: kind-preserving (merged inputs must
  share one kind).
- Kind-polymorphic operators (identity) propagate the input kind.

Kinds come from edge annotations (:class:`DataTraceType`) where present
and are inferred along the topological order otherwise; a contradiction
raises :class:`~repro.errors.TraceTypeError` naming the offending spot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TraceTypeError
from repro.dag.graph import TransductionDAG, VertexKind
from repro.operators.split import Splitter
from repro.traces.trace_type import DataTraceType


@dataclass(frozen=True)
class EdgeKindDiagnostic:
    """One edge whose kind inference fell back to the ``U`` default.

    Produced by :func:`typecheck_diagnostics` (and surfaced as the
    linter's ``DT502``): ``edge_id`` plus endpoint names locate the
    edge; ``reason`` says why inference could not determine a kind.
    """

    edge_id: int
    src: str
    dst: str
    reason: str

    def describe(self) -> str:
        return (
            f"edge {self.edge_id} ({self.src} -> {self.dst}) "
            f"defaulted to U: {self.reason}"
        )


def _kind_of_type(trace_type: Optional[DataTraceType]) -> Optional[str]:
    if trace_type is None:
        return None
    # Non-keyed formal types are outside the U/O fragment (kind None).
    return trace_type.stream_kind()


def typecheck_dag(dag: TransductionDAG, strict: bool = False) -> Dict[int, str]:
    """Check the DAG; return the inferred kind ("U"/"O") per edge id.

    Raises :class:`TraceTypeError` on any inconsistency.  Edges whose
    kind cannot be determined default to ``"U"`` in the returned map;
    with ``strict=True`` such edges are a hard error instead (use
    :func:`typecheck_diagnostics` to get them as data).
    """
    kinds, diagnostics = typecheck_diagnostics(dag)
    if strict and diagnostics:
        details = "; ".join(d.describe() for d in diagnostics)
        raise TraceTypeError(
            f"strict type check: {len(diagnostics)} edge(s) with "
            f"undetermined kind ({details}); annotate them with "
            "edge_types=[...]"
        )
    return kinds


def typecheck_diagnostics(
    dag: TransductionDAG,
) -> Tuple[Dict[int, str], List[EdgeKindDiagnostic]]:
    """Like :func:`typecheck_dag`, but also report defaulted edges.

    Returns ``(kinds, diagnostics)`` where ``kinds`` maps every edge id
    to "U"/"O" (defaulted edges included, for backward compatibility)
    and ``diagnostics`` lists each edge whose kind had to be defaulted
    rather than inferred, with the reason inference failed.
    """
    dag.validate()
    kinds: Dict[int, Optional[str]] = {
        eid: _kind_of_type(edge.trace_type) for eid, edge in dag.edges.items()
    }
    # edge id -> why its kind had to be defaulted (cleared if a later
    # constraint determines the kind after all).
    defaulted: Dict[int, str] = {}

    def set_kind(edge_id: int, kind: Optional[str], context: str) -> None:
        """Constrain an edge to exactly ``kind`` (hard unification)."""
        if kind is None:
            return
        existing = kinds.get(edge_id)
        if existing is None or edge_id in defaulted:
            if existing is not None and existing != kind:
                raise TraceTypeError(
                    f"type error at {context}: edge {edge_id} is {existing} "
                    f"but {kind} is required"
                )
            kinds[edge_id] = kind
            defaulted.pop(edge_id, None)  # a real constraint arrived
        elif existing != kind:
            raise TraceTypeError(
                f"type error at {context}: edge {edge_id} is {existing} "
                f"but {kind} is required"
            )

    def require_input(edge_id: int, wanted: Optional[str], context: str) -> None:
        """Check an operator input against an edge kind with subsumption:
        a U-consuming operator accepts O edges, not vice versa."""
        if wanted is None:
            return
        existing = kinds.get(edge_id)
        if wanted == "O":
            if existing == "U" and edge_id not in defaulted:
                raise TraceTypeError(
                    f"order-sensitive operator {context} fed by an "
                    f"unordered (U) edge {edge_id}; insert SORT first "
                    "(Section 2's Sort-LI fix)"
                )
            set_kind(edge_id, "O", context)
        elif wanted == "U":
            if existing is None:
                # best-effort default, not a demand: record why
                kinds[edge_id] = "U"
                defaulted[edge_id] = (
                    f"consumer {context} accepts any kind (U with "
                    "subsumption); no annotation and no typed upstream "
                    "determined the edge"
                )
            # existing "O" is fine by subsumption; "U" is exact.

    for vertex in dag.topological_order():
        ins = dag.in_edges(vertex)
        outs = dag.out_edges(vertex)
        if vertex.kind == VertexKind.SOURCE:
            # A source's declared stream type seeds its outgoing edge —
            # without this, an unannotated edge from a U source into an
            # order-sensitive operator would slip through inference.
            for edge in outs:
                set_kind(edge.edge_id, _kind_of_type(vertex.output_type),
                         vertex.name)
            continue
        if vertex.kind == VertexKind.SINK:
            for edge in ins:
                require_input(edge.edge_id, _kind_of_type(vertex.input_type),
                              vertex.name)
            continue
        if vertex.kind == VertexKind.OP:
            operator = vertex.payload
            for edge in ins:
                require_input(edge.edge_id, operator.input_kind, vertex.name)
            if operator.output_kind is not None:
                for edge in outs:
                    set_kind(edge.edge_id, operator.output_kind, vertex.name)
            elif operator.input_kind is None:
                # Kind-polymorphic (identity-like): propagate input kind.
                in_kind = _common_kind(kinds, ins, vertex.name)
                for edge in outs:
                    set_kind(edge.edge_id, in_kind, vertex.name)
        elif vertex.kind == VertexKind.MERGE:
            in_kind = _common_kind(kinds, ins, vertex.name)
            for edge in outs:
                set_kind(edge.edge_id, in_kind, vertex.name)
        elif vertex.kind == VertexKind.SPLIT:
            splitter: Splitter = vertex.payload
            (in_edge,) = ins
            in_kind = kinds.get(in_edge.edge_id)
            if splitter.requires_unordered:
                if in_kind == "O":
                    raise TraceTypeError(
                        f"round-robin splitter {vertex.name} applied to an "
                        "ordered (O) stream: this reorders same-key items "
                        "and is rejected (Section 2)"
                    )
                set_kind(in_edge.edge_id, "U", vertex.name)
                in_kind = "U"
            for edge in outs:
                set_kind(edge.edge_id, in_kind, vertex.name)

    # Second pass: every order-sensitive operator must have O inputs even
    # after inference filled in edge kinds.
    for vertex in dag.topological_order():
        if vertex.kind != VertexKind.OP:
            continue
        operator = vertex.payload
        if operator.input_kind != "O":
            continue
        for edge in dag.in_edges(vertex):
            kind = kinds.get(edge.edge_id)
            if kind == "U":
                raise TraceTypeError(
                    f"order-sensitive operator {vertex.name} fed by an "
                    f"unordered (U) edge {edge.edge_id}; insert SORT first "
                    "(Section 2's Sort-LI fix)"
                )

    # Edges no constraint ever touched (e.g. between two kind-polymorphic
    # vertices) default to U as well, with their own reason.
    for eid, kind in kinds.items():
        if kind is None:
            defaulted[eid] = (
                "no annotation, and neither endpoint constrains the kind"
            )

    diagnostics = [
        EdgeKindDiagnostic(
            edge_id=eid,
            src=dag.vertices[dag.edges[eid].src].name,
            dst=dag.vertices[dag.edges[eid].dst].name,
            reason=reason,
        )
        for eid, reason in sorted(defaulted.items())
    ]
    return {eid: kind or "U" for eid, kind in kinds.items()}, diagnostics


def _common_kind(kinds, edges, context: str) -> Optional[str]:
    found = {kinds.get(e.edge_id) for e in edges} - {None}
    if len(found) > 1:
        raise TraceTypeError(
            f"type error at {context}: mixed stream kinds {sorted(found)} "
            "merged into one channel"
        )
    return next(iter(found), None)
