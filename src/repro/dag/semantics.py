"""Denotational semantics of transduction DAGs (Section 4).

The paper defines the meaning of a DAG by labelling every edge with a
data trace: source edges get the input traces; each processing vertex, in
topological order, maps its incoming traces to outgoing traces; sinks
read off the result.  This module implements exactly that edge-labelling
evaluation over runtime event sequences, returning both the raw event
sequences (one representative of each edge's trace) and — on demand —
the canonical :class:`~repro.traces.blocks.BlockTrace` views used for
equivalence checking.

Multi-input OP vertices are given the marker-aligned ``MRG`` semantics;
the canonical interleaving feeds channels round-robin one event at a
time, which is immaterial at the trace level (any interleaving yields the
same output trace for well-typed DAGs) but keeps evaluation
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import DagError
from repro.operators.base import Event
from repro.operators.merge import Merge
from repro.dag.graph import Edge, TransductionDAG, Vertex, VertexKind
from repro.traces.blocks import BlockTrace


@dataclass
class EvaluationResult:
    """Edge labels and sink outputs of one DAG evaluation."""

    #: event sequence labelling each edge, by edge id.
    edge_events: Dict[int, List[Event]]
    #: events delivered to each sink, by sink name.
    sink_events: Dict[str, List[Event]]

    def sink_trace(self, sink_name: str, ordered: bool) -> BlockTrace:
        """The canonical trace delivered to a sink."""
        return _events_to_block_trace(self.sink_events[sink_name], ordered)

    def edge_trace(self, edge: Edge, ordered: bool) -> BlockTrace:
        """The canonical trace labelling an edge."""
        return _events_to_block_trace(self.edge_events[edge.edge_id], ordered)


def _events_to_block_trace(events: Sequence[Event], ordered: bool) -> BlockTrace:
    from repro.operators.base import KV, Marker

    trace = BlockTrace(ordered)
    for event in events:
        if isinstance(event, Marker):
            trace.add_marker(event.timestamp)
        else:
            trace.add_pair(event.key, event.value)
    return trace


def _interleave_round_robin(channels: List[List[Event]]) -> List[Any]:
    """Canonical interleaving: cycle through channels one event at a time.

    Returns ``(channel_index, event)`` pairs.
    """
    result: List[Any] = []
    cursors = [0] * len(channels)
    remaining = sum(len(c) for c in channels)
    while remaining:
        for i, channel in enumerate(channels):
            if cursors[i] < len(channel):
                result.append((i, channel[cursors[i]]))
                cursors[i] += 1
                remaining -= 1
    return result


def evaluate_dag(
    dag: TransductionDAG,
    source_events: Dict[str, Sequence[Event]],
) -> EvaluationResult:
    """Evaluate ``dag`` on per-source event sequences.

    ``source_events`` maps each source vertex name to the representative
    event sequence of its input trace.  Returns the full edge labelling
    plus per-sink outputs.
    """
    dag.validate()
    edge_events: Dict[int, List[Event]] = {}
    sink_events: Dict[str, List[Event]] = {}

    for vertex in dag.topological_order():
        if vertex.kind == VertexKind.SOURCE:
            if vertex.name not in source_events:
                raise DagError(f"no input supplied for source {vertex.name!r}")
            (out_edge,) = dag.out_edges(vertex)
            edge_events[out_edge.edge_id] = list(source_events[vertex.name])
        elif vertex.kind == VertexKind.SINK:
            (in_edge,) = dag.in_edges(vertex)
            sink_events[vertex.name] = list(edge_events[in_edge.edge_id])
        elif vertex.kind == VertexKind.OP:
            inputs = [edge_events[e.edge_id] for e in dag.in_edges(vertex)]
            merged = _merge_inputs(inputs)
            operator = vertex.payload
            state = operator.initial_state()
            output: List[Event] = []
            for event in merged:
                output.extend(operator.handle(state, event))
            for out_edge in dag.out_edges(vertex):
                edge_events[out_edge.edge_id] = list(output)
        elif vertex.kind == VertexKind.MERGE:
            inputs = [edge_events[e.edge_id] for e in dag.in_edges(vertex)]
            merge: Merge = vertex.payload
            state = merge.initial_state()
            output = []
            for channel, event in _interleave_round_robin(inputs):
                output.extend(merge.handle(state, channel, event))
            (out_edge,) = dag.out_edges(vertex)
            edge_events[out_edge.edge_id] = output
        elif vertex.kind == VertexKind.SPLIT:
            (in_edge,) = dag.in_edges(vertex)
            splitter = vertex.payload
            state = splitter.initial_state()
            per_channel: List[List[Event]] = [[] for _ in range(splitter.n_outputs)]
            for event in edge_events[in_edge.edge_id]:
                for channel, out_event in splitter.handle(state, event):
                    per_channel[channel].append(out_event)
            for out_edge in dag.out_edges(vertex):
                edge_events[out_edge.edge_id] = per_channel[out_edge.src_port]
        else:  # pragma: no cover - exhaustive over VertexKind
            raise DagError(f"unknown vertex kind {vertex.kind}")

    return EvaluationResult(edge_events=edge_events, sink_events=sink_events)


def check_dag_invariance(
    dag: TransductionDAG,
    source_events: Dict[str, Sequence[Event]],
    shuffles: int = 5,
    seed: int = 0,
    ordered_sinks: Optional[Dict[str, bool]] = None,
) -> None:
    """Spot-check that the DAG's denotation is a trace function.

    Evaluates the DAG on the given inputs and on ``shuffles`` random
    within-block permutations of each source stream; every sink must
    deliver the same trace each time.  Raises
    :class:`~repro.errors.ConsistencyError` with the offending sink name
    otherwise.  This is the whole-graph analogue of the per-operator
    Definition 3.5 checker — what Theorem 4.2 guarantees by construction
    for template-built DAGs.
    """
    import random as _random

    from repro.errors import ConsistencyError
    from repro.operators.base import KV, Marker

    ordered_sinks = ordered_sinks or {}
    rng = _random.Random(seed)

    def shuffle_stream(events):
        result, block = [], []
        for event in events:
            if isinstance(event, Marker):
                rng.shuffle(block)
                result.extend(block)
                result.append(event)
                block = []
            else:
                block.append(event)
        rng.shuffle(block)
        result.extend(block)
        return result

    base = evaluate_dag(dag, source_events)
    sink_names = list(base.sink_events)
    baseline = {
        name: base.sink_trace(name, ordered_sinks.get(name, False))
        for name in sink_names
    }
    for _ in range(shuffles):
        variant_inputs = {
            name: shuffle_stream(events)
            for name, events in source_events.items()
        }
        result = evaluate_dag(dag, variant_inputs)
        for name in sink_names:
            got = result.sink_trace(name, ordered_sinks.get(name, False))
            if got != baseline[name]:
                raise ConsistencyError(
                    f"sink {name!r}: output trace depends on the input "
                    "representative — the DAG is not a trace function"
                )


def _merge_inputs(inputs: List[List[Event]]) -> List[Event]:
    """Combine an OP vertex's input channels with implicit MRG semantics."""
    if len(inputs) == 1:
        return inputs[0]
    merge = Merge(len(inputs))
    state = merge.initial_state()
    output: List[Event] = []
    for channel, event in _interleave_round_robin(inputs):
        output.extend(merge.handle(state, channel, event))
    return output
