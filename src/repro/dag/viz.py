"""ASCII rendering of transduction DAGs, in the style of the paper's
figures (``HUB --U(Ut,M)--> JFM --U(ID,V)--> SORT --O(ID,V)--> ...``).
"""

from __future__ import annotations

from typing import List

from repro.dag.graph import TransductionDAG, VertexKind


def render_dag(dag: TransductionDAG) -> str:
    """Render the DAG as one line per edge, in topological order."""
    lines: List[str] = [f"# {dag.name}"]
    order = {v.vertex_id: i for i, v in enumerate(dag.topological_order())}
    edges = sorted(
        dag.edges.values(), key=lambda e: (order[e.src], e.src_port, order[e.dst])
    )
    for edge in edges:
        src = dag.vertices[edge.src]
        dst = dag.vertices[edge.dst]
        label = f" --{edge.trace_type}--> " if edge.trace_type else " --> "
        src_name = _decorated_name(src)
        dst_name = _decorated_name(dst)
        lines.append(f"{src_name}{label}{dst_name}")
    return "\n".join(lines)


def _decorated_name(vertex) -> str:
    name = vertex.name
    if vertex.kind == VertexKind.OP and vertex.parallelism > 1:
        name = f"{name}[x{vertex.parallelism}]"
    return name


_DOT_SHAPES = {
    VertexKind.SOURCE: "oval",
    VertexKind.SINK: "doubleoctagon",
    VertexKind.OP: "box",
    VertexKind.MERGE: "triangle",
    VertexKind.SPLIT: "invtriangle",
}


def dag_to_dot(dag: TransductionDAG) -> str:
    """Render the DAG as Graphviz dot (edges labelled with trace types)."""
    lines: List[str] = [f'digraph "{dag.name}" {{', "  rankdir=LR;"]
    for vertex in dag.topological_order():
        shape = _DOT_SHAPES[vertex.kind]
        label = _decorated_name(vertex).replace('"', "'")
        lines.append(
            f'  v{vertex.vertex_id} [label="{label}", shape={shape}];'
        )
    for edge in dag.edges.values():
        label = str(edge.trace_type) if edge.trace_type else ""
        lines.append(
            f'  v{edge.src} -> v{edge.dst} [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def topology_to_dot(topology) -> str:
    """Render a compiled/hand-written topology as Graphviz dot."""
    lines: List[str] = [f'digraph "{topology.name}" {{', "  rankdir=LR;"]
    for name, spec in topology.components.items():
        shape = "oval" if spec.is_spout else "box"
        safe = name.replace('"', "'")
        lines.append(
            f'  "{safe}" [label="{safe}\\nx{spec.parallelism}", shape={shape}];'
        )
    for name, spec in topology.components.items():
        for upstream, grouping in spec.inputs.items():
            label = grouping.describe().replace('"', "'")
            lines.append(f'  "{upstream}" -> "{name}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
