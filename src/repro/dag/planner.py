"""Automatic parallelism planning for transduction DAGs.

The paper leaves parallelism hints to the programmer (Figure 2's
``par1``/``par2``).  This planner derives them from a per-vertex cost
table and a cluster size, giving each stage a share of tasks
proportional to its per-tuple CPU weight (heavier stages get more
instances), subject to:

- at least one task per stage;
- keyed stages capped at their declared key cardinality when known
  (more instances than keys sit idle);
- the total number of tasks targets ``tasks_per_core * total cores``.

The plan is deliberately simple — a linear-rate balance, not an optimal
schedule — but it removes the manual-tuning step from the experiment
harness and is validated against hand-tuned plans in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.dag.graph import TransductionDAG, VertexKind


@dataclass
class Plan:
    """Chosen parallelism per OP vertex id."""

    parallelism: Dict[int, int]

    def apply(self, dag: TransductionDAG, check: bool = True) -> TransductionDAG:
        """Return a copy of ``dag`` with the plan's hints installed.

        With ``check=True`` (default) the Theorem 4.3 side conditions
        are verified first — a hint on a vertex the rewrite could not
        legally parallelize (DT503: multiple consumers) raises
        :class:`~repro.errors.DagError` here, at planning time, instead
        of surfacing later inside ``deploy()``.
        """
        from repro.dag.rewrite import copy_dag

        result = copy_dag(dag)
        for vertex_id, hint in self.parallelism.items():
            result.vertices[vertex_id].parallelism = hint
        if check:
            # Imported lazily: the dag layer must not depend on the
            # analysis package at import time.
            from repro.analysis.rules_dag import check_parallelism_preconditions
            from repro.errors import DagError

            problems = check_parallelism_preconditions(result, result.name)
            if problems:
                details = "; ".join(f.message for f in problems)
                raise DagError(
                    f"plan violates Theorem 4.3 side conditions: {details}"
                )
        return result

    def total_tasks(self) -> int:
        return sum(self.parallelism.values())


def plan_parallelism(
    dag: TransductionDAG,
    vertex_costs: Dict[str, float],
    machines: int,
    cores_per_machine: int = 2,
    tasks_per_core: float = 1.0,
    key_cardinality: Optional[Dict[str, int]] = None,
    default_cost: float = 1e-6,
) -> Plan:
    """Derive per-stage parallelism from costs and cluster size."""
    if machines < 1:
        raise ValueError("machines must be positive")
    key_cardinality = key_cardinality or {}
    ops = [v for v in dag.topological_order() if v.kind == VertexKind.OP]
    if not ops:
        return Plan({})

    weights = {}
    for vertex in ops:
        cost = vertex_costs.get(vertex.name, default_cost)
        if callable(cost):  # marker-weighted entries: use the item cost
            from repro.operators.base import KV

            cost = float(cost(KV(None, None)))
        weights[vertex.vertex_id] = max(cost, 1e-9)

    total_weight = sum(weights.values())
    budget = max(len(ops), int(round(machines * cores_per_machine * tasks_per_core)))

    parallelism: Dict[int, int] = {}
    for vertex in ops:
        share = weights[vertex.vertex_id] / total_weight
        hint = max(1, int(round(share * budget)))
        cap = key_cardinality.get(vertex.name)
        if cap is not None:
            hint = min(hint, max(1, cap))
        parallelism[vertex.vertex_id] = hint
    return Plan(parallelism)
