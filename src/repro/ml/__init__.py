"""Machine-learning substrate for the evaluation workloads.

- :class:`RepTree` — a fast decision/regression tree in the style of
  WEKA's REPTree (variance-reduction splits, optional reduced-error
  pruning), used by the Smart-Homes power predictor (Section 6).
- :class:`KMeans` — Lloyd's algorithm, used by Query VI's per-location
  user clustering.
- :func:`linear_interpolate` — gap filling for time series, the LI stage
  of Example 4.1 / Figure 5.
"""

from repro.ml.reptree import RepTree
from repro.ml.kmeans import KMeans
from repro.ml.interpolate import linear_interpolate, fill_series

__all__ = ["RepTree", "KMeans", "linear_interpolate", "fill_series"]
