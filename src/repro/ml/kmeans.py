"""k-means clustering (Lloyd's algorithm) for Query VI.

Query VI periodically clusters users by their extracted feature vectors,
independently per location.  The clustering runs inside an operator, so
it must be deterministic given its inputs: initialization uses a seeded
k-means++-style farthest-point heuristic over the data, no global RNG.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import ModelError

Vector = Tuple[float, ...]


def _distance_sq(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


class KMeans:
    """Lloyd's algorithm with seeded k-means++ initialization."""

    def __init__(self, k: int, max_iters: int = 50, tol: float = 1e-9, seed: int = 0):
        if k < 1:
            raise ModelError("k must be positive")
        self.k = k
        self.max_iters = max_iters
        self.tol = tol
        self.seed = seed
        self.centroids: List[Vector] = []
        self.iterations_run = 0

    def fit(self, points: Sequence[Sequence[float]]) -> "KMeans":
        """Cluster ``points``; duplicates allowed, k capped at #distinct."""
        if not points:
            raise ModelError("cannot cluster an empty point set")
        data = [tuple(float(v) for v in p) for p in points]
        k = min(self.k, len(set(data)))
        self.centroids = self._init_centroids(data, k)
        for iteration in range(self.max_iters):
            assignments = [self._nearest(p) for p in data]
            new_centroids: List[Vector] = []
            for c in range(len(self.centroids)):
                members = [data[i] for i, a in enumerate(assignments) if a == c]
                if members:
                    dim = len(members[0])
                    new_centroids.append(
                        tuple(
                            sum(m[d] for m in members) / len(members)
                            for d in range(dim)
                        )
                    )
                else:
                    new_centroids.append(self.centroids[c])
            shift = max(
                _distance_sq(a, b) for a, b in zip(self.centroids, new_centroids)
            )
            self.centroids = new_centroids
            self.iterations_run = iteration + 1
            if shift <= self.tol:
                break
        return self

    def predict(self, point: Sequence[float]) -> int:
        """Index of the nearest centroid."""
        if not self.centroids:
            raise ModelError("predict before fit")
        return self._nearest(tuple(float(v) for v in point))

    def inertia(self, points: Sequence[Sequence[float]]) -> float:
        """Total within-cluster squared distance."""
        return sum(
            _distance_sq(p, self.centroids[self.predict(p)]) for p in points
        )

    # ------------------------------------------------------------------

    def _nearest(self, point: Vector) -> int:
        best, best_d = 0, math.inf
        for i, c in enumerate(self.centroids):
            d = _distance_sq(point, c)
            if d < best_d:
                best, best_d = i, d
        return best

    def _init_centroids(self, data: List[Vector], k: int) -> List[Vector]:
        """Seeded k-means++: first centroid pseudo-random, the rest chosen
        with probability proportional to squared distance."""
        rng = random.Random(self.seed)
        centroids = [data[rng.randrange(len(data))]]
        while len(centroids) < k:
            weights = [
                min(_distance_sq(p, c) for c in centroids) for p in data
            ]
            total = sum(weights)
            if total <= 0:
                break  # all remaining points coincide with centroids
            r = rng.random() * total
            acc = 0.0
            for p, w in zip(data, weights):
                acc += w
                if acc >= r:
                    centroids.append(p)
                    break
        return centroids
