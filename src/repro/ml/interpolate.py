"""Linear interpolation for time series with missing points.

The LI stage (Example 4.1, Table 2, Figure 5) fills gaps in per-sensor
time series: between a previous point ``(t0, x)`` and the next point
``(t1, y)`` it emits one interpolated value per missing integer timestamp.
The streaming form is Table 2's ``linearInterpolation``; the batch form
here backs it and is reused by tests as an oracle.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def linear_interpolate(
    t0: int, x: float, t1: int, y: float
) -> List[Tuple[int, float]]:
    """Points at integer timestamps ``t0+1 .. t1`` on the segment.

    Matches Table 2's loop: for ``i = 1 .. dt`` emit
    ``(t0 + i, x + i * (y - x) / dt)`` — the final point ``(t1, y)`` is
    included (it is the real sample).
    """
    dt = t1 - t0
    if dt <= 0:
        return []
    return [
        (t0 + i, x + i * (y - x) / dt)
        for i in range(1, dt + 1)
    ]


def fill_series(samples: Sequence[Tuple[int, float]]) -> List[Tuple[int, float]]:
    """Densify a sorted series: linear interpolation across every gap.

    ``samples`` must be sorted by timestamp; duplicate timestamps keep
    the first occurrence (matching the streaming operator, which treats a
    repeated timestamp as a zero-length gap and emits nothing new).
    """
    result: List[Tuple[int, float]] = []
    previous: Tuple[int, float] = None
    for t, v in samples:
        if previous is None:
            result.append((t, v))
        else:
            t0, x = previous
            if t > t0:
                result.extend(linear_interpolate(t0, x, t, v))
            else:
                continue  # duplicate or out-of-order timestamp: skip
        previous = result[-1]
    return result
