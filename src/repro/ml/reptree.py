"""A REPTree-style regression tree.

WEKA's REPTree builds a decision/regression tree using information
gain/variance reduction and prunes it with reduced-error pruning.  The
Smart-Homes case study (Section 6) trains such a tree offline on features
(current time, current load, past-minute consumption) and applies it per
stream element inside an ``OpKeyedOrdered`` vertex.

This implementation covers the regression case:

- greedy binary splits on numeric features, chosen to maximize variance
  reduction, with midpoint thresholds over sorted unique values
  (subsampled when a feature has many distinct values, as REPTree does);
- stopping rules: ``max_depth``, ``min_samples_split``, ``min_variance``;
- optional reduced-error pruning against a held-out fraction of the
  training data: a subtree is collapsed to its mean when that does not
  hurt held-out squared error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ModelError

Vector = Sequence[float]


@dataclass
class _Node:
    """One tree node; leaves carry ``value``, internal nodes a split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    def is_leaf(self) -> bool:
        return self.left is None

    def predict(self, x: Vector) -> float:
        node = self
        while not node.is_leaf():
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        if self.is_leaf():
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def size(self) -> int:
        if self.is_leaf():
            return 1
        return 1 + self.left.size() + self.right.size()


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _sse(values: Sequence[float]) -> float:
    """Sum of squared errors around the mean."""
    if not values:
        return 0.0
    mu = _mean(values)
    return sum((v - mu) ** 2 for v in values)


class RepTree:
    """Regression tree with variance-reduction splits and REP pruning.

    Parameters
    ----------
    max_depth: maximum tree depth (REPTree's ``-L``; -1 for unlimited).
    min_samples_split: do not split nodes smaller than this.
    min_variance_ratio: do not split nodes whose variance is below this
        fraction of the root variance (REPTree's minimum variance rule).
    prune: reduced-error pruning against a held-out fraction.
    holdout_fraction: share of training data held out for pruning.
    max_thresholds: candidate thresholds per feature per node.
    seed: RNG seed for the holdout split and threshold subsampling.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 10,
        min_variance_ratio: float = 1e-4,
        prune: bool = True,
        holdout_fraction: float = 0.25,
        max_thresholds: int = 32,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_variance_ratio = min_variance_ratio
        self.prune = prune
        self.holdout_fraction = holdout_fraction
        self.max_thresholds = max_thresholds
        self.seed = seed
        self._root: Optional[_Node] = None
        self._n_features = 0

    # ------------------------------------------------------------------

    def fit(self, X: Sequence[Vector], y: Sequence[float]) -> "RepTree":
        """Fit the tree; returns self."""
        if len(X) != len(y) or not X:
            raise ModelError("fit requires equal-length, non-empty X and y")
        self._n_features = len(X[0])
        rng = random.Random(self.seed)
        indices = list(range(len(X)))
        rng.shuffle(indices)
        if self.prune and len(X) >= 8:
            cut = max(1, int(len(X) * self.holdout_fraction))
            holdout_idx, grow_idx = indices[:cut], indices[cut:]
        else:
            holdout_idx, grow_idx = [], indices
        grow_X = [X[i] for i in grow_idx]
        grow_y = [y[i] for i in grow_idx]
        root_variance = _sse(grow_y) / max(1, len(grow_y))
        self._root = self._grow(
            grow_X, grow_y, depth=0, min_variance=root_variance * self.min_variance_ratio,
            rng=rng,
        )
        if self.prune and holdout_idx:
            hold_X = [X[i] for i in holdout_idx]
            hold_y = [y[i] for i in holdout_idx]
            self._rep_prune(self._root, hold_X, hold_y)
        return self

    def predict(self, x: Vector) -> float:
        """Predict one sample."""
        if self._root is None:
            raise ModelError("predict before fit")
        if len(x) != self._n_features:
            raise ModelError(
                f"expected {self._n_features} features, got {len(x)}"
            )
        return self._root.predict(x)

    def predict_many(self, X: Sequence[Vector]) -> List[float]:
        return [self.predict(x) for x in X]

    def depth(self) -> int:
        if self._root is None:
            raise ModelError("depth before fit")
        return self._root.depth()

    def n_nodes(self) -> int:
        if self._root is None:
            raise ModelError("n_nodes before fit")
        return self._root.size()

    # ------------------------------------------------------------------

    def _grow(self, X, y, depth, min_variance, rng) -> _Node:
        node = _Node(value=_mean(y))
        if (
            len(y) < self.min_samples_split
            or (0 <= self.max_depth <= depth)
            or _sse(y) / len(y) <= min_variance
        ):
            return node
        best = self._best_split(X, y, rng)
        if best is None:
            return node
        feature, threshold, left_idx, right_idx = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(
            [X[i] for i in left_idx], [y[i] for i in left_idx],
            depth + 1, min_variance, rng,
        )
        node.right = self._grow(
            [X[i] for i in right_idx], [y[i] for i in right_idx],
            depth + 1, min_variance, rng,
        )
        return node

    def _best_split(self, X, y, rng) -> Optional[Tuple[int, float, List[int], List[int]]]:
        base = _sse(y)
        best_gain = 1e-12
        best = None
        n = len(y)
        for feature in range(self._n_features):
            values = sorted({x[feature] for x in X})
            if len(values) < 2:
                continue
            midpoints = [
                (a + b) / 2.0 for a, b in zip(values, values[1:])
            ]
            if len(midpoints) > self.max_thresholds:
                midpoints = rng.sample(midpoints, self.max_thresholds)
            for threshold in midpoints:
                left_idx = [i for i in range(n) if X[i][feature] <= threshold]
                if not left_idx or len(left_idx) == n:
                    continue
                right_idx = [i for i in range(n) if X[i][feature] > threshold]
                gain = base - _sse([y[i] for i in left_idx]) - _sse(
                    [y[i] for i in right_idx]
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, threshold, left_idx, right_idx)
        return best

    def _rep_prune(self, node: _Node, X, y) -> float:
        """Prune bottom-up; returns the subtree's held-out SSE after
        pruning.  Collapses a subtree to a leaf when the leaf is no worse
        on the held-out data."""
        if node.is_leaf():
            return sum((node.value - t) ** 2 for t in y)
        left_X, left_y, right_X, right_y = [], [], [], []
        for x, t in zip(X, y):
            if x[node.feature] <= node.threshold:
                left_X.append(x)
                left_y.append(t)
            else:
                right_X.append(x)
                right_y.append(t)
        subtree_sse = self._rep_prune(node.left, left_X, left_y) + self._rep_prune(
            node.right, right_X, right_y
        )
        leaf_sse = sum((node.value - t) ** 2 for t in y)
        if leaf_sse <= subtree_sse:
            node.left = None
            node.right = None
            node.feature = -1
            return leaf_sse
        return subtree_sse
