"""The Section 2 / Example 4.1 sensor pipeline.

A temperature-sensor stream with missing data points is pre-processed by
``Map`` (deserialization) -> ``LI`` (linear interpolation) -> ``Avg``
(running average every marker).  The module provides:

- the typed transduction DAG (with ``SORT`` in front of ``LI``, the
  Sort-LI fix) which any deployment executes deterministically;
- the *naive* hand-parallelized topology of Section 2 — ``Map``
  replicated with shuffle grouping, order-sensitive ``LI`` consuming the
  arbitrarily interleaved merge — whose outputs depend on the
  interleaving seed (the motivation experiment).
"""

from repro.apps.iot.sensors import SensorReading, SensorWorkload
from repro.apps.iot.pipeline import (
    iot_typed_dag,
    build_naive_topology,
    iot_vertex_costs,
)

__all__ = [
    "SensorReading",
    "SensorWorkload",
    "iot_typed_dag",
    "build_naive_topology",
    "iot_vertex_costs",
]
