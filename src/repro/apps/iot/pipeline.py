"""The Section 2 pipeline, typed and naive.

``SENSOR -> Map -> LI -> Avg -> SINK``

*Typed version* (:func:`iot_typed_dag`): ``Map`` is an ``OpStateless``;
the unordered edge into the order-sensitive interpolation is repaired by
``SORT`` (the Sort-LI fix), so ``Map`` parallelizes soundly and every
deployment computes the same traces.

*Naive version* (:func:`iot_naive_topology`): the Storm idiom of
Section 2 — ``Map`` replicated with shuffle grouping, ``LI`` consuming
the merged streams in arrival order without sorting.  With one ``Map``
instance the output is correct; with two or more, the interleaving of
the instances' outputs is arbitrary and the interpolation results become
seed-dependent (and wrong), which is the paper's motivating observation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.apps.iot.sensors import SensorReading, deserialize
from repro.dag.graph import TransductionDAG
from repro.operators.base import Event, KV, Marker
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.library import RunningAggregate, StatelessFn
from repro.operators.sort import SortOp
from repro.storm.groupings import (
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
)
from repro.storm.topology import (
    Bolt,
    CaptureBolt,
    IteratorSpout,
    OutputCollector,
    Topology,
    TopologyBuilder,
)
from repro.storm.tuples import StormTuple
from repro.traces.trace_type import ordered_type, unordered_type

U_RAW = unordered_type("ID", "Str")
U_MEAS = unordered_type("ID", "V")
O_MEAS = ordered_type("ID", "V")

#: Per-vertex CPU costs: deserialization dominates (the Section 2
#: bottleneck that motivates replicating Map).
IOT_VERTEX_COSTS: Dict[str, float] = {
    "Map": 20e-6,
    "SORT": 1e-6,
    "LI": 1e-6,
    "Avg": 0.5e-6,
}


def iot_vertex_costs() -> Dict[str, float]:
    return dict(IOT_VERTEX_COSTS)


def map_stage() -> StatelessFn:
    """Deserialize; retain (sensor id, (value, timestamp))."""
    return StatelessFn(
        lambda key, message: [
            (lambda r: (r.sensor_id, (r.value, r.timestamp)))(deserialize(message))
        ],
        name="Map",
    )


class SensorInterpolation(OpKeyedOrdered):
    """Per-sensor linear interpolation over (value, ts) pairs."""

    name = "LI"

    def init(self):
        return None

    def on_item(self, state, key, value, emit):
        v, ts = value
        if state is None:
            emit(key, (v, ts))
            return (v, ts)
        prev_v, prev_ts = state
        dt = ts - prev_ts
        if dt <= 0:
            return state
        for i in range(1, dt + 1):
            emit(key, (round(prev_v + i * (v - prev_v) / dt, 6), prev_ts + i))
        return (v, ts)


def avg_stage() -> RunningAggregate:
    """Average of all measurements so far, emitted every marker."""
    return RunningAggregate(
        inject=lambda k, v: (v[0], 1),
        identity_elem=(0.0, 0),
        combine_fn=lambda x, y: (x[0] + y[0], x[1] + y[1]),
        finish=lambda key, acc, ts: round(acc[0] / acc[1], 6) if acc[1] else None,
        name="Avg",
    )


def iot_typed_dag(parallelism: int = 2) -> TransductionDAG:
    """The typed pipeline: Map (parallel) -> SORT -> LI -> Avg."""
    dag = TransductionDAG("iot-typed")
    src = dag.add_source("SENSOR", output_type=U_RAW)
    map_v = dag.add_op(
        map_stage(), parallelism=parallelism, upstream=[src],
        edge_types=[U_RAW], name="Map",
    )
    sort_v = dag.add_op(
        SortOp(sort_key=lambda v: v[1], name="SORT"),
        parallelism=parallelism, upstream=[map_v], edge_types=[U_MEAS],
    )
    li = dag.add_op(
        SensorInterpolation(), parallelism=parallelism, upstream=[sort_v],
        edge_types=[O_MEAS], name="LI",
    )
    avg = dag.add_op(
        avg_stage(), parallelism=1, upstream=[li], edge_types=[O_MEAS],
        name="Avg",
    )
    dag.add_sink("SINK", upstream=avg, input_type=U_MEAS)
    return dag


# ----------------------------------------------------------------------
# The naive hand-parallelized topology.
# ----------------------------------------------------------------------


class NaiveMapBolt(Bolt):
    """Deserialize and forward; markers forwarded as received (no
    alignment — the naive code has no notion of marker discipline)."""

    def execute(self, state, tup: StormTuple, collector: OutputCollector) -> None:
        event = tup.event
        if isinstance(event, Marker):
            collector.emit(event)
            return
        reading = deserialize(event.value)
        collector.emit(KV(reading.sensor_id, (reading.value, reading.timestamp)))


class NaiveInterpolationBolt(Bolt):
    """Order-dependent interpolation applied in *arrival* order.

    Relies on receiving each sensor's measurements in timestamp order —
    the precondition the naive Map parallelization silently breaks.
    Out-of-order samples are simply dropped by the ``dt <= 0`` guard, so
    disorder turns into missing or wrong interpolation segments.
    """

    def prepare(self, task_index: int, n_tasks: int):
        return {}

    def execute(self, state, tup: StormTuple, collector: OutputCollector) -> None:
        event = tup.event
        if isinstance(event, Marker):
            collector.emit(event)
            return
        v, ts = event.value
        previous = state.get(event.key)
        if previous is None:
            state[event.key] = (v, ts)
            collector.emit(KV(event.key, (v, ts)))
            return
        prev_v, prev_ts = previous
        dt = ts - prev_ts
        if dt <= 0:
            return
        for i in range(1, dt + 1):
            collector.emit(
                KV(event.key, (round(prev_v + i * (v - prev_v) / dt, 6), prev_ts + i))
            )
        state[event.key] = (v, ts)


class NaiveAvgBolt(Bolt):
    """Running average emitted at every received marker (markers arrive
    multiplied and unaligned — the naive code just reacts to each)."""

    def prepare(self, task_index: int, n_tasks: int):
        return {"sums": {}, "counts": {}}

    def execute(self, state, tup: StormTuple, collector: OutputCollector) -> None:
        event = tup.event
        if isinstance(event, Marker):
            for key in state["sums"]:
                collector.emit(
                    KV(key, round(state["sums"][key] / state["counts"][key], 6))
                )
            collector.emit(event)
            return
        v, _ts = event.value
        state["sums"][event.key] = state["sums"].get(event.key, 0.0) + v
        state["counts"][event.key] = state["counts"].get(event.key, 0) + 1


def build_naive_topology(
    events: List[Event], map_parallelism: int = 2
) -> Tuple[Topology, CaptureBolt]:
    """Construct the naive topology over a concrete event stream."""

    def make_iterator(task_index: int, n_tasks: int):
        return iter(events) if task_index == 0 else iter(())

    builder = TopologyBuilder("iot-naive")
    builder.set_spout("SENSOR", IteratorSpout(make_iterator), 1)
    builder.set_bolt("Map", NaiveMapBolt(), map_parallelism).grouping(
        "SENSOR", ShuffleGrouping()
    )
    builder.set_bolt("LI", NaiveInterpolationBolt(), 1).grouping(
        "Map", GlobalGrouping()
    )
    builder.set_bolt("Avg", NaiveAvgBolt(), 1).grouping("LI", GlobalGrouping())
    sink = CaptureBolt()
    builder.set_bolt("SINK", sink, 1).grouping("Avg", GlobalGrouping())
    return builder.build(), sink
