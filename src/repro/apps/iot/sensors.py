"""Sensor workload for the Section 2 motivation pipeline.

A home IoT hub forwards temperature measurements from several sensors.
Each sensor samples roughly once per second but drops measurements at
random (missing data points, to be filled by linear interpolation).  The
hub emits a synchronization marker every ``marker_period`` seconds with
the Example 4.1 watermark guarantee.

Measurements arrive as serialized strings (``"id|value|ts|meta..."``)
so that the ``Map`` deserialization stage has real, parallelizable work —
the stage whose replication motivates the whole Section 2 discussion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, NamedTuple

from repro.operators.base import Event, KV, Marker


class SensorReading(NamedTuple):
    """A deserialized measurement."""

    sensor_id: int
    value: float
    timestamp: int


def serialize(reading: SensorReading) -> str:
    """The wire format the hub forwards (with junk metadata fields)."""
    return (
        f"{reading.sensor_id}|{reading.value}|{reading.timestamp}"
        f"|fw=2.1|loc=window|unit=C"
    )


def deserialize(message: str) -> SensorReading:
    """Parse the wire format, discarding the metadata fields."""
    sensor_id, value, timestamp = message.split("|")[:3]
    return SensorReading(int(sensor_id), float(value), int(timestamp))


@dataclass
class SensorWorkload:
    """Deterministic sensor stream with gaps."""

    n_sensors: int = 3
    duration: int = 60           # seconds
    marker_period: int = 10
    drop_probability: float = 0.3
    seed: int = 21

    def readings(self) -> List[SensorReading]:
        rng = random.Random(self.seed)
        result: List[SensorReading] = []
        for sensor in range(self.n_sensors):
            base = 20.0 + 2.0 * sensor
            for t in range(self.duration):
                if rng.random() < self.drop_probability:
                    continue  # missing data point
                value = round(base + 3.0 * rng.random(), 2)
                result.append(SensorReading(sensor, value, t))
        return result

    def events(self) -> List[Event]:
        """The hub stream: serialized readings + markers, with readings
        scrambled within each marker block (watermark guarantee only)."""
        rng = random.Random(self.seed ^ 0xBEEF)
        blocks: Dict[int, List[SensorReading]] = {}
        for reading in self.readings():
            blocks.setdefault(reading.timestamp // self.marker_period, []).append(
                reading
            )
        stream: List[Event] = []
        for block in range(self.duration // self.marker_period):
            batch = blocks.get(block, [])
            rng.shuffle(batch)
            for reading in batch:
                stream.append(KV(reading.sensor_id, serialize(reading)))
            stream.append(Marker(self.marker_period * (block + 1)))
        return stream
