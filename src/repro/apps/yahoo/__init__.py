"""The extended Yahoo Streaming Benchmark (Section 6, Figures 3–4).

A stream of user-advertisement interaction events
``(userId, pageId, adId, eventType, eventTime)`` is processed by six
queries of increasing complexity.  Each query exists in two forms:

- a *transduction DAG* built from the Table 1 templates and compiled
  with :func:`repro.compiler.compile_dag` (``queries`` module);
- a *hand-crafted topology* written directly against the Storm-level API
  with manual marker handling (``handcrafted`` module).

``workload`` generates the event stream and the ads/users database.
"""

from repro.apps.yahoo.events import AdEvent, YahooWorkload
from repro.apps.yahoo import queries, handcrafted

__all__ = ["AdEvent", "YahooWorkload", "queries", "handcrafted"]
