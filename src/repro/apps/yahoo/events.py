"""Yahoo Streaming Benchmark workload: events and the campaigns database.

The benchmark (Chintapalli et al., 2016; Section 6 of the paper) defines
a stream of user/advertisement interaction tuples
``(userId, pageId, adId, eventType, eventTime)`` where ``eventType`` is
one of view/click/purchase, a fixed set of campaigns, and a database
mapping each ad to its campaign.  Our extension (Queries III and VI)
additionally assigns each user a location.

:class:`YahooWorkload` generates the stream deterministically from a
seed: ``events_per_second`` tuples per one-second block, each block
closed by a synchronization marker whose timestamp is the second index —
the paper configures sources to emit markers exactly when event
timestamps cross one-second boundaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, NamedTuple

from repro.db import Derby
from repro.operators.base import Event, KV, Marker

EVENT_TYPES = ("view", "click", "purchase")


class AdEvent(NamedTuple):
    """One interaction tuple (the benchmark's event schema)."""

    user_id: int
    page_id: int
    ad_id: int
    event_type: str
    event_time: int  # milliseconds


@dataclass
class YahooWorkload:
    """Deterministic benchmark workload.

    Parameters mirror the benchmark's knobs: number of campaigns, ads
    per campaign, users, pages, locations (our extension), seconds of
    stream, and events per second.
    """

    n_campaigns: int = 100
    ads_per_campaign: int = 10
    n_users: int = 1000
    n_pages: int = 100
    n_locations: int = 10
    seconds: int = 10
    events_per_second: int = 1000
    seed: int = 7

    # ------------------------------------------------------------------

    def n_ads(self) -> int:
        return self.n_campaigns * self.ads_per_campaign

    def make_database(self) -> Derby:
        """The ads->campaign and user->location tables, indexed."""
        db = Derby()
        ads = db.create_table("ads", [("ad_id", int), ("campaign_id", int)])
        ads.insert_many(
            (ad, ad // self.ads_per_campaign) for ad in range(self.n_ads())
        )
        ads.create_index("ad_id")
        rng = random.Random(self.seed ^ 0xA5A5)
        users = db.create_table("users", [("user_id", int), ("location", int)])
        users.insert_many(
            (user, rng.randrange(self.n_locations)) for user in range(self.n_users)
        )
        users.create_index("user_id")
        db.create_store("aggregates")
        return db

    def events(self) -> List[Event]:
        """The full stream: one marker per second, data keyed by user id.

        The value of each KV is the :class:`AdEvent` tuple; the key is
        the user id (any key works for the unordered input type — the
        first stage re-keys as needed).
        """
        rng = random.Random(self.seed)
        stream: List[Event] = []
        for second in range(1, self.seconds + 1):
            base_ms = (second - 1) * 1000
            for _ in range(self.events_per_second):
                event = AdEvent(
                    user_id=rng.randrange(self.n_users),
                    page_id=rng.randrange(self.n_pages),
                    ad_id=rng.randrange(self.n_ads()),
                    event_type=EVENT_TYPES[rng.randrange(3)],
                    event_time=base_ms + rng.randrange(1000),
                )
                stream.append(KV(event.user_id, event))
            stream.append(Marker(second))
        return stream

    def total_data_tuples(self) -> int:
        return self.seconds * self.events_per_second
