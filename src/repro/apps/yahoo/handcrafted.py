"""Hand-crafted Storm topologies for Queries I–VI.

These are the "handwritten implementation using the user-level API of
Apache Storm" of Section 6: bolts written directly against
:class:`~repro.storm.topology.Bolt` with *manual* marker bookkeeping —
the practical fixes (watermark trackers, per-second buckets keyed by
event time) that the typed framework generates automatically.  The same
per-tuple work is done (the same database lookups, the same window
updates), so the throughput comparison against the compiled pipelines
isolates framework overhead.

The engineer's control-stream trick is modelled by
:class:`HandRolledGrouping`: data is shuffled or key-partitioned, but
markers are broadcast to all tasks (in real Storm: a separate stream
with ``allGrouping``), since without that no downstream flush trigger is
possible at all.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.apps.yahoo.events import AdEvent
from repro.compiler.glue import AlignedCaptureBolt
from repro.db import Derby
from repro.ml import KMeans
from repro.operators.base import Event, KV, Marker
from repro.operators.split import default_key_hash
from repro.storm.groupings import Grouping
from repro.storm.topology import (
    Bolt,
    IteratorSpout,
    OutputCollector,
    Topology,
    TopologyBuilder,
)
from repro.storm.tuples import StormTuple


class HandRolledGrouping(Grouping):
    """Shuffle/fields/global for data; markers broadcast to every task.

    ``shuffle`` follows Storm's documented guarantee that tuples are
    distributed so "each bolt is guaranteed to get an equal number of
    tuples": per-sender round-robin from a random starting offset.
    """

    def __init__(self, mode: str = "shuffle"):
        if mode not in ("shuffle", "fields", "global"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self._next: int = -1

    def select(self, event: Event, n_tasks: int) -> List[int]:
        if isinstance(event, Marker):
            return list(range(n_tasks))
        if self.mode == "shuffle":
            if self._next < 0:
                self._next = self._rng.randrange(n_tasks)
            target = self._next % n_tasks
            self._next = (target + 1) % n_tasks
            return [target]
        if self.mode == "fields":
            return [default_key_hash(event.key) % n_tasks]
        return [0]


class MarkerTracker:
    """Manual watermark tracking over ``n_channels`` upstream tasks.

    ``advance`` records one marker from a channel and returns the list of
    timestamps that became *complete* (delivered by every channel).
    """

    def __init__(self, n_channels: int):
        self.n_channels = n_channels
        self._counts: Dict[Any, int] = {}
        self._timestamps: List[Any] = []
        self._completed = 0

    def advance(self, channel: Any, timestamp: Any) -> List[Any]:
        count = self._counts.get(channel, 0) + 1
        self._counts[channel] = count
        if count > len(self._timestamps):
            self._timestamps.append(timestamp)
        if len(self._counts) < self.n_channels:
            return []
        low = min(self._counts.values())
        ready = self._timestamps[self._completed : low]
        self._completed = low
        return ready


class _HandBolt(Bolt):
    """Shared skeleton: route markers through a tracker, data to a hook."""

    def __init__(self, n_channels: int, name: str = ""):
        self.n_channels = n_channels
        self.name = name or type(self).__name__

    def prepare(self, task_index: int, n_tasks: int) -> Any:
        return {"tracker": MarkerTracker(self.n_channels), "data": self.fresh_state()}

    def fresh_state(self) -> Any:
        return None

    def on_data(self, state: Any, event: KV, collector: OutputCollector) -> None:
        raise NotImplementedError

    def on_complete_marker(
        self, state: Any, timestamp: Any, collector: OutputCollector
    ) -> None:
        collector.emit(Marker(timestamp))

    def execute(self, state, tup: StormTuple, collector: OutputCollector) -> None:
        event = tup.event
        if isinstance(event, Marker):
            for ts in state["tracker"].advance(tup.channel(), event.timestamp):
                self.on_complete_marker(state["data"], ts, collector)
            return
        self.on_data(state["data"], event, collector)


class HandEnrichBolt(_HandBolt):
    """Queries I/IV/V stage 1: optional view filter + campaign lookup."""

    def __init__(self, db: Derby, views_only: bool, n_channels: int, name: str):
        super().__init__(n_channels, name)
        self._db = db
        self._views_only = views_only

    def on_data(self, state, event: KV, collector) -> None:
        ad_event: AdEvent = event.value
        if self._views_only and ad_event.event_type != "view":
            return
        row = self._db.lookup("ads", "ad_id", ad_event.ad_id)
        if row is not None:
            collector.emit(KV(row[1], ad_event.event_time))


class HandLocateBolt(_HandBolt):
    """Queries III/VI stage 1: user-location lookup."""

    def __init__(self, db: Derby, keep_user_key: bool, n_channels: int):
        super().__init__(n_channels, "Locate")
        self._db = db
        self._keep_user_key = keep_user_key

    def on_data(self, state, event: KV, collector) -> None:
        ad_event: AdEvent = event.value
        row = self._db.lookup("users", "user_id", ad_event.user_id)
        if row is None:
            return
        location = row[1]
        if self._keep_user_key:
            collector.emit(KV(ad_event.user_id, (location, ad_event.event_type)))
        else:
            collector.emit(KV(location, ad_event.event_time))


class HandKeyByAdBolt(_HandBolt):
    """Query II stage 1: re-key by ad id."""

    def on_data(self, state, event: KV, collector) -> None:
        ad_event: AdEvent = event.value
        collector.emit(KV(ad_event.ad_id, 1))


class HandSlidingCountBolt(_HandBolt):
    """Query IV stage 2: per-campaign count over the last ``window``
    seconds, bucketed by event time, flushed at completed watermarks."""

    def __init__(self, window: int, n_channels: int):
        super().__init__(n_channels, "Count10s")
        self._window = window

    def fresh_state(self):
        return {}  # campaign -> {second -> count}

    def on_data(self, state, event: KV, collector) -> None:
        second = event.value // 1000 + 1
        buckets = state.setdefault(event.key, {})
        buckets[second] = buckets.get(second, 0) + 1

    def on_complete_marker(self, state, timestamp, collector) -> None:
        low = timestamp - self._window + 1
        for campaign, buckets in state.items():
            total = sum(
                count for second, count in buckets.items() if low <= second <= timestamp
            )
            if total:
                collector.emit(KV(campaign, total))
            for second in [s for s in buckets if s < low]:
                del buckets[second]
        collector.emit(Marker(timestamp))


class HandTumblingCountBolt(_HandBolt):
    """Query V stage 2: per-campaign count of the completed second."""

    def fresh_state(self):
        return {}

    def on_data(self, state, event: KV, collector) -> None:
        second = event.value // 1000 + 1
        buckets = state.setdefault(event.key, {})
        buckets[second] = buckets.get(second, 0) + 1

    def on_complete_marker(self, state, timestamp, collector) -> None:
        for campaign, buckets in state.items():
            count = buckets.pop(timestamp, 0)
            if count:
                collector.emit(KV(campaign, count))
        collector.emit(Marker(timestamp))


class HandRunningCountBolt(_HandBolt):
    """Query III stage 2: whole-history per-key counts, emitted per
    completed marker; optionally persisted (Query II)."""

    def __init__(self, n_channels: int, db: Optional[Derby] = None, name: str = "History"):
        super().__init__(n_channels, name)
        self._db = db

    def fresh_state(self):
        return {}

    def on_data(self, state, event: KV, collector) -> None:
        state[event.key] = state.get(event.key, 0) + 1

    def on_complete_marker(self, state, timestamp, collector) -> None:
        for key, total in state.items():
            if self._db is not None:
                self._db.persist("aggregates", key, total)
            collector.emit(KV(key, total))
        collector.emit(Marker(timestamp))


class HandFeaturesBolt(_HandBolt):
    """Query VI stage 2: per-user per-block event-type counts."""

    def fresh_state(self):
        return {}  # user -> [views, clicks, purchases, location]

    def on_data(self, state, event: KV, collector) -> None:
        location, event_type = event.value
        entry = state.setdefault(event.key, [0, 0, 0, location])
        if event_type == "view":
            entry[0] += 1
        elif event_type == "click":
            entry[1] += 1
        else:
            entry[2] += 1

    def on_complete_marker(self, state, timestamp, collector) -> None:
        for user, (views, clicks, purchases, location) in state.items():
            collector.emit(KV(location, (float(views), float(clicks), float(purchases))))
        state.clear()
        collector.emit(Marker(timestamp))


class HandClusterBolt(_HandBolt):
    """Query VI stage 3: per-location k-means over the block's vectors."""

    def __init__(self, k: int, n_channels: int):
        super().__init__(n_channels, "Cluster")
        self._k = k

    def fresh_state(self):
        return {}  # location -> [vectors]

    def on_data(self, state, event: KV, collector) -> None:
        state.setdefault(event.key, []).append(event.value)

    def on_complete_marker(self, state, timestamp, collector) -> None:
        for location, points in state.items():
            if points:
                model = KMeans(self._k, seed=0).fit(sorted(points))
                collector.emit(
                    KV(location, (len(points), round(model.inertia(points), 9)))
                )
        state.clear()
        collector.emit(Marker(timestamp))


# ----------------------------------------------------------------------
# Topology builders.
# ----------------------------------------------------------------------


def _spout(events, parallelism: int) -> IteratorSpout:
    """Round-robin data partitioning; every task emits all markers."""

    def make_iterator(task_index: int, n_tasks: int) -> Iterator[Event]:
        data_seen = 0
        for event in events:
            if isinstance(event, Marker):
                yield event
            else:
                if data_seen % n_tasks == task_index:
                    yield event
                data_seen += 1

    return IteratorSpout(make_iterator)


def _two_stage(
    name: str,
    events,
    spout_parallelism: int,
    stage1: Callable[[int], Bolt],
    stage1_name: str,
    stage1_parallelism: int,
    stage2: Optional[Callable[[int], Bolt]],
    stage2_name: str,
    stage2_parallelism: int,
    stage2_mode: str = "fields",
) -> Tuple[Topology, AlignedCaptureBolt]:
    builder = TopologyBuilder(name)
    builder.set_spout("events", _spout(events, spout_parallelism), spout_parallelism)
    builder.set_bolt(stage1_name, stage1(spout_parallelism), stage1_parallelism).grouping(
        "events", HandRolledGrouping("shuffle")
    )
    last_name, last_parallelism = stage1_name, stage1_parallelism
    if stage2 is not None:
        builder.set_bolt(
            stage2_name, stage2(stage1_parallelism), stage2_parallelism
        ).grouping(stage1_name, HandRolledGrouping(stage2_mode))
        last_name, last_parallelism = stage2_name, stage2_parallelism
    sink = AlignedCaptureBolt(n_channels=last_parallelism)
    builder.set_bolt("SINK", sink, 1).grouping(last_name, HandRolledGrouping("global"))
    return builder.build(), sink


def handcrafted_query1(db: Derby, events, parallelism: int = 1, spouts: int = 1):
    """Query I, hand-written."""
    return _two_stage(
        "hand-q1", events, spouts,
        lambda n: HandEnrichBolt(db, False, n, "Enrich"), "Enrich", parallelism,
        None, "", 0,
    )


def handcrafted_query2(db: Derby, events, parallelism: int = 1, spouts: int = 1):
    """Query II, hand-written."""
    return _two_stage(
        "hand-q2", events, spouts,
        lambda n: HandKeyByAdBolt(n, "KeyByAd"), "KeyByAd", parallelism,
        lambda n: HandRunningCountBolt(n, db=db, name="PersistCount"),
        "PersistCount", parallelism,
    )


def handcrafted_query3(db: Derby, events, parallelism: int = 1, spouts: int = 1):
    """Query III, hand-written."""
    return _two_stage(
        "hand-q3", events, spouts,
        lambda n: HandLocateBolt(db, False, n), "Locate", parallelism,
        lambda n: HandRunningCountBolt(n), "History", parallelism,
    )


def handcrafted_query4(db: Derby, events, parallelism: int = 1, spouts: int = 1,
                       window: int = 10):
    """Query IV, hand-written (the benchmark's reference pipeline)."""
    return _two_stage(
        "hand-q4", events, spouts,
        lambda n: HandEnrichBolt(db, True, n, "FilterMap"), "FilterMap", parallelism,
        lambda n: HandSlidingCountBolt(window, n), "Count10s", parallelism,
    )


def handcrafted_query5(db: Derby, events, parallelism: int = 1, spouts: int = 1):
    """Query V, hand-written."""
    return _two_stage(
        "hand-q5", events, spouts,
        lambda n: HandEnrichBolt(db, True, n, "FilterMap"), "FilterMap", parallelism,
        lambda n: HandTumblingCountBolt(n, "CountTumbling"), "CountTumbling", parallelism,
    )


def handcrafted_query6(db: Derby, events, parallelism: int = 1, spouts: int = 1, k: int = 3):
    """Query VI, hand-written (three stages)."""
    builder = TopologyBuilder("hand-q6")
    builder.set_spout("events", _spout(events, spouts), spouts)
    builder.set_bolt("Locate", HandLocateBolt(db, True, spouts), parallelism).grouping(
        "events", HandRolledGrouping("shuffle")
    )
    builder.set_bolt(
        "Features", HandFeaturesBolt(parallelism, "Features"), parallelism
    ).grouping("Locate", HandRolledGrouping("fields"))
    builder.set_bolt(
        "Cluster", HandClusterBolt(k, parallelism), parallelism
    ).grouping("Features", HandRolledGrouping("fields"))
    sink = AlignedCaptureBolt(n_channels=parallelism)
    builder.set_bolt("SINK", sink, 1).grouping("Cluster", HandRolledGrouping("global"))
    return builder.build(), sink


HANDCRAFTED_BUILDERS = {
    "I": handcrafted_query1,
    "II": handcrafted_query2,
    "III": handcrafted_query3,
    "IV": handcrafted_query4,
    "V": handcrafted_query5,
    "VI": handcrafted_query6,
}
