"""Queries I–VI as transduction DAGs (Section 6, Figure 3, Figure 4).

Each builder takes the workload's database and a parallelism degree and
returns a typed :class:`~repro.dag.graph.TransductionDAG`; the benchmark
harness compiles it with :func:`repro.compiler.compile_dag` and runs it
on the simulated cluster.

Per-tuple CPU costs (used by the simulator's cost model) are declared
next to each query; the dominating cost throughout is the database
lookup in the enrichment stages, as in the paper, where stage 1's Derby
lookup is the bottleneck the data parallelism attacks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.apps.yahoo.events import AdEvent, YahooWorkload
from repro.dag.graph import TransductionDAG
from repro.db import Derby
from repro.ml import KMeans
from repro.operators.base import Marker
from repro.operators.keyed_unordered import OpKeyedUnordered
from repro.operators.library import (
    RunningAggregate,
    SlidingAggregate,
    TumblingAggregate,
    TableJoin,
    sliding_count,
)
from repro.operators.stateless import OpStateless
from repro.storm.costs import PerComponentCostModel
from repro.traces.trace_type import unordered_type

# ----------------------------------------------------------------------
# Cost constants (simulated seconds per tuple), shared with the
# hand-crafted implementations so both sides pay for the same real work.
# ----------------------------------------------------------------------

DB_LOOKUP_COST = 30e-6      # indexed Derby point lookup
DB_WRITE_COST = 20e-6       # keyed persist
WINDOW_UPDATE_COST = 1e-6   # per-key window/aggregate bookkeeping
FEATURE_COST = 2e-6         # per-event feature extraction
KMEANS_MARKER_COST = 500e-6 # one clustering run at a marker
CHEAP_COST = 0.5e-6         # trivially cheap per-tuple work

U_EVENTS = unordered_type("Ut", "YItem")
U_CID = unordered_type("CID", "Long")


def _cost(components: Dict[str, Any]) -> PerComponentCostModel:
    return PerComponentCostModel(components, default=CHEAP_COST)


def _marker_weighted(kv_cost: float, marker_cost: float) -> Callable[[Any], float]:
    """Cost callable charging markers differently from data tuples."""

    def cost(event) -> float:
        return marker_cost if isinstance(event, Marker) else kv_cost

    return cost


# ----------------------------------------------------------------------
# Stage operators.
# ----------------------------------------------------------------------


def enrich_campaign(db: Derby, views_only: bool) -> TableJoin:
    """Stage 1 of Queries I/IV/V: (filter views,) lookup the campaign of
    the event's ad, emit keyed by campaign id."""

    def lookup(key, event: AdEvent):
        if views_only and event.event_type != "view":
            return []
        row = db.lookup("ads", "ad_id", event.ad_id)
        if row is None:
            return []
        campaign_id = row[1]
        return [(campaign_id, event.event_time)]

    return TableJoin(lookup, name="FilterMap" if views_only else "Enrich")


def enrich_location(db: Derby, keep_user_key: bool) -> TableJoin:
    """Lookup the user's location; key output by location (Query III) or
    keep the user key carrying the location in the value (Query VI)."""

    def lookup(key, event: AdEvent):
        row = db.lookup("users", "user_id", event.user_id)
        if row is None:
            return []
        location = row[1]
        if keep_user_key:
            return [(event.user_id, (location, event.event_type))]
        return [(location, event.event_time)]

    return TableJoin(lookup, name="Locate")


class PersistingCount(RunningAggregate):
    """Query II's stage: per-key running count persisted at each marker."""

    def __init__(self, db: Derby, store: str = "aggregates"):
        self._db = db
        self._store = store
        super().__init__(
            inject=lambda k, v: 1,
            identity_elem=0,
            combine_fn=lambda x, y: x + y,
            finish=lambda key, total, ts: total,
            name="PersistCount",
        )

    def on_marker(self, new_state, key, m, emit):
        self._db.persist(self._store, key, new_state)
        emit(key, new_state)


class UserFeatures(OpKeyedUnordered):
    """Query VI stage 2: per-user per-block event-type counts.

    Aggregate ``A`` is ``(views, clicks, purchases, location)``; at each
    marker the feature vector is emitted re-keyed by location.
    """

    name = "Features"

    def fold_in(self, key, value):
        location, event_type = value
        return (
            1 if event_type == "view" else 0,
            1 if event_type == "click" else 0,
            1 if event_type == "purchase" else 0,
            location,
        )

    def identity(self):
        return (0, 0, 0, None)

    def combine(self, x, y):
        location = x[3] if x[3] is not None else y[3]
        return (x[0] + y[0], x[1] + y[1], x[2] + y[2], location)

    def init(self):
        return None

    def update_state(self, old_state, agg):
        return agg

    def on_marker(self, new_state, key, m, emit):
        views, clicks, purchases, location = new_state
        if location is None:
            return  # no activity for this user in the block
        emit(location, (float(views), float(clicks), float(purchases)))


class LocationClustering(OpKeyedUnordered):
    """Query VI stage 3: periodic per-location k-means over user vectors.

    The block aggregate is the multiset of user feature vectors kept as
    a sorted tuple, making ``combine`` commutative and associative.  The
    state accumulates the vectors of the last ``every`` blocks ("clusters
    the users periodically", Section 6); every ``every``-th marker runs
    k-means and emits the location's ``(n_points, inertia)``.
    """

    name = "Cluster"

    def __init__(self, k: int = 3, every: int = 1):
        if every < 1:
            raise ValueError("clustering period must be >= 1 markers")
        self._k = k
        self._every = every

    def fold_in(self, key, value):
        return (tuple(value),)

    def identity(self):
        return ()

    def combine(self, x, y):
        return tuple(sorted(x + y))

    def init(self):
        # (blocks accumulated modulo the period, accumulated vectors)
        return (0, ())

    def update_state(self, old_state, agg):
        count, accumulated = old_state
        base = () if count == 0 else accumulated
        return ((count + 1) % self._every, tuple(sorted(base + agg)))

    def on_marker(self, new_state, key, m, emit):
        count, accumulated = new_state
        if count != 0 or not accumulated:
            return  # mid-period, or nothing to cluster
        points = list(accumulated)
        model = KMeans(self._k, seed=0).fit(points)
        emit(key, (len(points), round(model.inertia(points), 9)))


# ----------------------------------------------------------------------
# Query DAG builders.
# ----------------------------------------------------------------------


def query1(db: Derby, parallelism: int = 1) -> TransductionDAG:
    """Query I: single-stage stateless DB enrichment."""
    dag = TransductionDAG("yahoo-q1")
    src = dag.add_source("events", output_type=U_EVENTS)
    enrich = dag.add_op(
        enrich_campaign(db, views_only=False),
        parallelism=parallelism,
        upstream=[src],
        edge_types=[U_EVENTS],
        name="Enrich",
    )
    dag.add_sink("SINK", upstream=enrich, input_type=U_CID)
    return dag


def query1_costs() -> PerComponentCostModel:
    return _cost({"Enrich": DB_LOOKUP_COST})


def query2(db: Derby, parallelism: int = 1) -> TransductionDAG:
    """Query II: per-ad running count persisted to the database."""
    dag = TransductionDAG("yahoo-q2")
    src = dag.add_source("events", output_type=U_EVENTS)
    rekey = dag.add_op(
        TableJoin(lambda k, e: [(e.ad_id, 1)], name="KeyByAd"),
        parallelism=parallelism,
        upstream=[src],
        edge_types=[U_EVENTS],
    )
    count = dag.add_op(
        PersistingCount(db),
        parallelism=parallelism,
        upstream=[rekey],
        edge_types=[unordered_type("AdId", "Int")],
        name="PersistCount",
    )
    dag.add_sink("SINK", upstream=count, input_type=unordered_type("AdId", "Long"))
    return dag


def query2_costs() -> PerComponentCostModel:
    return _cost(
        {
            "KeyByAd": CHEAP_COST,
            "PersistCount": _marker_weighted(WINDOW_UPDATE_COST, DB_WRITE_COST),
            "KeyByAd;PersistCount": _marker_weighted(
                WINDOW_UPDATE_COST + CHEAP_COST, DB_WRITE_COST
            ),
        }
    )


def query3(db: Derby, parallelism: int = 1) -> TransductionDAG:
    """Query III: location enrichment + whole-history per-location count."""
    dag = TransductionDAG("yahoo-q3")
    src = dag.add_source("events", output_type=U_EVENTS)
    locate = dag.add_op(
        enrich_location(db, keep_user_key=False),
        parallelism=parallelism,
        upstream=[src],
        edge_types=[U_EVENTS],
        name="Locate",
    )
    summarize = dag.add_op(
        RunningAggregate(
            inject=lambda k, v: 1,
            identity_elem=0,
            combine_fn=lambda x, y: x + y,
            finish=lambda key, total, ts: total,
            name="History",
        ),
        parallelism=parallelism,
        upstream=[locate],
        edge_types=[unordered_type("Loc", "Int")],
    )
    dag.add_sink("SINK", upstream=summarize, input_type=unordered_type("Loc", "Long"))
    return dag


def query3_costs() -> PerComponentCostModel:
    return _cost({"Locate": DB_LOOKUP_COST, "History": WINDOW_UPDATE_COST})


def query4(db: Derby, parallelism: int = 1, window_seconds: int = 10) -> TransductionDAG:
    """Query IV: the original Yahoo pipeline (Figure 3) — filter views,
    campaign lookup, sliding per-campaign count over the last 10 s."""
    dag = TransductionDAG("yahoo-q4")
    src = dag.add_source("events", output_type=U_EVENTS)
    filter_map = dag.add_op(
        enrich_campaign(db, views_only=True),
        parallelism=parallelism,
        upstream=[src],
        edge_types=[U_EVENTS],
        name="FilterMap",
    )
    count = dag.add_op(
        sliding_count(window_seconds, name="Count10s"),
        parallelism=parallelism,
        upstream=[filter_map],
        edge_types=[U_CID],
    )
    dag.add_sink("SINK", upstream=count, input_type=unordered_type("CID", "Long"))
    return dag


def query4_costs() -> PerComponentCostModel:
    return _cost({"FilterMap": DB_LOOKUP_COST, "Count10s": WINDOW_UPDATE_COST})


def query5(db: Derby, parallelism: int = 1) -> TransductionDAG:
    """Query V: Query IV with tumbling (non-overlapping) windows."""
    dag = TransductionDAG("yahoo-q5")
    src = dag.add_source("events", output_type=U_EVENTS)
    filter_map = dag.add_op(
        enrich_campaign(db, views_only=True),
        parallelism=parallelism,
        upstream=[src],
        edge_types=[U_EVENTS],
        name="FilterMap",
    )
    count = dag.add_op(
        TumblingAggregate(
            inject=lambda k, v: 1,
            identity_elem=0,
            combine_fn=lambda x, y: x + y,
            finish=lambda key, total, ts: total,
            name="CountTumbling",
        ),
        parallelism=parallelism,
        upstream=[filter_map],
        edge_types=[U_CID],
    )
    dag.add_sink("SINK", upstream=count, input_type=unordered_type("CID", "Long"))
    return dag


def query5_costs() -> PerComponentCostModel:
    return _cost({"FilterMap": DB_LOOKUP_COST, "CountTumbling": WINDOW_UPDATE_COST})


def query6(
    db: Derby, parallelism: int = 1, k: int = 3, cluster_every: int = 1
) -> TransductionDAG:
    """Query VI: location enrichment, per-user features, per-location
    k-means clustering every ``cluster_every`` markers (the three-stage
    ML pipeline)."""
    dag = TransductionDAG("yahoo-q6")
    src = dag.add_source("events", output_type=U_EVENTS)
    locate = dag.add_op(
        enrich_location(db, keep_user_key=True),
        parallelism=parallelism,
        upstream=[src],
        edge_types=[U_EVENTS],
        name="Locate",
    )
    features = dag.add_op(
        UserFeatures(),
        parallelism=parallelism,
        upstream=[locate],
        edge_types=[unordered_type("UserId", "LocType")],
        name="Features",
    )
    cluster = dag.add_op(
        LocationClustering(k, every=cluster_every),
        parallelism=parallelism,
        upstream=[features],
        edge_types=[unordered_type("Loc", "Vec")],
        name="Cluster",
    )
    dag.add_sink("SINK", upstream=cluster, input_type=unordered_type("Loc", "Fit"))
    return dag


def query6_costs() -> PerComponentCostModel:
    return _cost(
        {
            "Locate": DB_LOOKUP_COST,
            "Features": _marker_weighted(FEATURE_COST, WINDOW_UPDATE_COST),
            "Cluster": _marker_weighted(WINDOW_UPDATE_COST, KMEANS_MARKER_COST),
        }
    )


def query4_multi_source(
    db: Derby, n_sources: int, parallelism: int = 1, window_seconds: int = 10
) -> TransductionDAG:
    """Figure 3 verbatim: N Yahoo source vertices (``Yahoo0 .. YahooN``)
    feeding the Filter-Map stage, whose implicit marker-aligned merge
    unifies the sub-streams."""
    dag = TransductionDAG("yahoo-q4-multi")
    sources = [
        dag.add_source(f"Yahoo{i}", output_type=U_EVENTS)
        for i in range(n_sources)
    ]
    filter_map = dag.add_op(
        enrich_campaign(db, views_only=True),
        parallelism=parallelism,
        upstream=sources,
        edge_types=[U_EVENTS] * n_sources,
        name="FilterMap",
    )
    count = dag.add_op(
        sliding_count(window_seconds, name="Count10s"),
        parallelism=parallelism,
        upstream=[filter_map],
        edge_types=[U_CID],
    )
    dag.add_sink("SINK", upstream=count, input_type=unordered_type("CID", "Long"))
    return dag


#: Registry used by tests and the benchmark harness.
QUERY_BUILDERS = {
    "I": (query1, query1_costs),
    "II": (query2, query2_costs),
    "III": (query3, query3_costs),
    "IV": (query4, query4_costs),
    "V": (query5, query5_costs),
    "VI": (query6, query6_costs),
}
