"""The DEBS 2014 Smart-Homes power-prediction case study (Section 6).

Smart plugs installed across buildings report load measurements (~one
per two seconds, non-uniformly spaced, with gaps and duplicate
timestamps).  The pipeline of Figure 5 predicts, per device type, the
power consumption over the next ten minutes using a regression tree:

``JFM -> SORT -> LI -> Map -> SORT -> Avg -> Predict -> SINK``

- ``workload`` generates the plug stream and the plug/device database;
- ``pipeline`` builds the Figure 5 transduction DAG;
- ``prediction`` trains the REPTree model offline.
"""

from repro.apps.smarthomes.events import PlugReading, SmartHomesWorkload
from repro.apps.smarthomes.pipeline import smart_homes_dag, smart_homes_costs
from repro.apps.smarthomes.prediction import train_predictor, make_features

__all__ = [
    "PlugReading",
    "SmartHomesWorkload",
    "smart_homes_dag",
    "smart_homes_costs",
    "train_predictor",
    "make_features",
]
