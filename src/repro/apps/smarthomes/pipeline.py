"""The Figure 5 transduction DAG: smart-homes load prediction.

``JFM -> SORT -> LI -> Map -> SORT -> Avg -> Predict -> SINK``

Stage semantics (Section 6):

- **JFM** joins each measurement with the plug->device-type table,
  filters to the device types under analysis, and re-shapes the tuple
  into a plug key and a timestamped value.
- **SORT** restores per-plug timestamp order inside each marker block
  (the hub's watermark guarantee makes this a total per-key order).
- **LI** fills missing per-second data points by linear interpolation
  (Table 2's ``linearInterpolation``).
- **Map** projects the plug key to its device type.
- **SORT** restores per-device-type timestamp order.
- **Avg** averages, per device type, all values with the same timestamp
  (one output value per second).
- **Predict** forecasts the consumption over the next ``horizon``
  seconds with a REPTree over (second-of-day, current load, past-minute
  consumption).

The compiler fuses this into the Figure 5 deployment:
``JFM | H  ->  MRG;SORT;LI;Map | H  ->  MRG;SORT;Avg;Predict | UNQ``.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from operator import itemgetter
from typing import Any, Callable, Dict, Optional, Tuple

from repro.apps.smarthomes.events import SmartHomesWorkload
from repro.dag.graph import TransductionDAG
from repro.db import Derby
from repro.ml.reptree import RepTree
from repro.operators.base import Marker
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.library import TableJoin, map_pairs
from repro.operators.sort import SortOp
from repro.traces.trace_type import ordered_type, unordered_type

U_READINGS = unordered_type("Ut", "SItem")
U_PLUG = unordered_type("Plug", "VT")
O_PLUG = ordered_type("Plug", "VT")
U_DTYPE = unordered_type("DType", "VT")
O_DTYPE = ordered_type("DType", "VT")

#: Per-tuple CPU costs by DAG vertex (simulated seconds); the bench
#: harness sums these per fused component.
VERTEX_COSTS: Dict[str, float] = {
    "JFM": 30e-6,     # plug->device lookup
    "SORT1": 1.5e-6,  # per-item buffer/sort amortized
    "LI": 1e-6,
    "Map": 0.5e-6,
    "SORT2": 1.5e-6,
    "Avg": 1e-6,
    "Predict": 5e-6,  # regression-tree inference
}


DEFAULT_KEEP_TYPES = (
    "ac", "lights", "heater", "tv", "washer", "dryer", "dishwasher",
    "oven", "computer", "waterheater",
)


def jfm_stage(db: Derby, keep_types=DEFAULT_KEEP_TYPES) -> TableJoin:
    """Join-filter-map: plug lookup, device-type filter, tuple reshape."""
    keep = frozenset(keep_types)
    # Bind the table's indexed point lookup once; the join calls it per
    # reading (the stage's hot path).
    lookup_one = db.tables["plugs"].lookup_one

    def lookup(key, reading):
        plug_key = reading.plug_key()
        row = lookup_one("plug_key", plug_key)
        if row is None:
            return []
        device_type = row[1]
        if device_type not in keep:
            return []
        return [(plug_key, (reading.value, reading.timestamp, device_type))]

    return TableJoin(lookup, name="JFM")


class LinearInterpolationOp(OpKeyedOrdered):
    """Table 2's ``linearInterpolation``: per plug, fill per-second gaps.

    State is the previous ``(value, ts, dtype)``; each new sample emits
    the interpolated points for ``ts_prev+1 .. ts`` (the sample itself
    included).  Duplicate timestamps emit nothing and keep the earlier
    sample, matching the batch oracle in :mod:`repro.ml.interpolate`.
    """

    name = "LI"

    def init(self):
        return None

    def copy_state(self, state):
        # A mutable [load, ts, dtype] triple of scalars (or None).
        # repro: ignore[DT402] -- elements are scalars, one level deep
        return state if state is None else list(state)

    def on_item(self, state, key, value, emit):
        # State is a mutable [load, ts, dtype] triple updated in place —
        # one list allocated per key instead of one tuple per sample.
        load, ts, dtype = value
        if state is None:
            emit(key, value)
            return [load, ts, dtype]
        prev_load, prev_ts, _ = state
        dt = ts - prev_ts
        if dt <= 0:
            return state  # duplicate timestamp: keep the first sample
        diff = load - prev_load
        for i in range(1, dt + 1):
            emit(key, (prev_load + i * diff / dt, prev_ts + i, dtype))
        state[0] = load
        state[1] = ts
        state[2] = dtype
        return state

    def on_items(self, state, key, values, emit):
        # Per-key block loop: same interpolation arithmetic as on_item,
        # with the running (load, ts) kept in locals across the run.
        i = 0
        if state is None:
            first = values[0]
            emit(key, first)
            load, ts, dtype = first
            state = [load, ts, dtype]
            i = 1
        prev_load, prev_ts, prev_dtype = state
        n = len(values)
        while i < n:
            load, ts, dtype = values[i]
            i += 1
            dt = ts - prev_ts
            if dt <= 0:
                continue  # duplicate timestamp: keep the first sample
            diff = load - prev_load
            for k in range(1, dt + 1):
                emit(key, (prev_load + k * diff / dt, prev_ts + k, dtype))
            prev_load, prev_ts, prev_dtype = load, ts, dtype
        state[0] = prev_load
        state[1] = prev_ts
        state[2] = prev_dtype
        return state


class AveragePerSecondOp(OpKeyedOrdered):
    """Per device type, average all values sharing a timestamp.

    Input is per-key sorted by timestamp, so a strictly larger timestamp
    proves the previous second's group is complete (up to items delayed
    across interpolation gaps, which streaming averaging inherently
    assigns to their arrival group).
    """

    name = "Avg"

    def init(self):
        return None  # or [ts, total, count]

    def copy_state(self, state):
        # A mutable [ts, total, count] triple of scalars (or None).
        # repro: ignore[DT402] -- elements are scalars, one level deep
        return state if state is None else list(state)

    def on_item(self, state, key, value, emit):
        # State is a mutable [ts, total, count] triple updated in place.
        load, ts = value
        if state is None:
            return [ts, load, 1]
        current_ts = state[0]
        if ts == current_ts:
            state[1] += load
            state[2] += 1
            return state
        emit(key, (state[1] / state[2], current_ts))
        state[0] = ts
        state[1] = load
        state[2] = 1
        return state

    def on_items(self, state, key, values, emit):
        # Per-key block loop with the (ts, total, count) accumulator in
        # locals; the additions happen in the same order as on_item's.
        i = 0
        if state is None:
            if not values:
                return state
            load, ts = values[0]
            state = [ts, load, 1]
            i = 1
        current_ts, total, count = state
        n = len(values)
        while i < n:
            load, ts = values[i]
            i += 1
            if ts == current_ts:
                total += load
                count += 1
            else:
                emit(key, (total / count, current_ts))
                current_ts, total, count = ts, load, 1
        state[0] = current_ts
        state[1] = total
        state[2] = count
        return state


class PredictOp(OpKeyedOrdered):
    """REPTree forecast per device type and second.

    Keeps the past minute of per-second averages; once the window is
    warm, each new second emits ``(ts, predicted next-horizon sum)``.
    """

    name = "Predict"

    def __init__(self, models: Dict[str, RepTree], past: int = 60):
        self._models = models
        self._past = past

    def init(self):
        return deque()

    def copy_state(self, state):
        # A deque of immutable (ts, load) tuples.
        return deque(state)  # repro: ignore[DT402] -- elements are immutable tuples

    def on_item(self, state, key, value, emit):
        avg_load, ts = value
        window = state
        window.append((ts, avg_load))
        while window and window[0][0] < ts - self._past:
            window.popleft()
        if len(window) > self._past // 2:
            # Per key the input timestamps strictly increase (the ``O``
            # input comes from Avg, which emits one strictly newer second
            # at a time), so "all entries with t < ts" is exactly the
            # window minus the entry just appended.
            past_sum = sum(map(_load_of, islice(window, len(window) - 1)))
            model = self._models.get(key)
            if model is not None:
                prediction = model.predict([float(ts % 86400), avg_load, past_sum])
                emit(key, (ts, round(prediction, 3)))
        return window

    def on_items(self, state, key, values, emit):
        # Per-key block loop: one model lookup per run, window plumbing
        # bound to locals; identical arithmetic to on_item.
        window = state
        append = window.append
        popleft = window.popleft
        past = self._past
        warm = past // 2
        model = self._models.get(key)
        for value in values:
            avg_load, ts = value
            append((ts, avg_load))
            low = ts - past
            while window[0][0] < low:
                popleft()
            if len(window) > warm and model is not None:
                past_sum = sum(map(_load_of, islice(window, len(window) - 1)))
                prediction = model.predict([float(ts % 86400), avg_load, past_sum])
                emit(key, (ts, round(prediction, 3)))
        return window


_load_of = itemgetter(1)


def map_to_device_type() -> Any:
    """The Map stage: project the plug key to its device type."""
    return map_pairs(
        lambda plug_key, value: (value[2], (value[0], value[1])), name="Map"
    )


def smart_homes_dag(
    db: Derby,
    models: Dict[str, RepTree],
    parallelism: int = 1,
) -> TransductionDAG:
    """Build the Figure 5 DAG with the given per-stage parallelism."""
    dag = TransductionDAG("smart-homes")
    src = dag.add_source("hub", output_type=U_READINGS)
    jfm = dag.add_op(
        jfm_stage(db), parallelism=parallelism, upstream=[src],
        edge_types=[U_READINGS], name="JFM",
    )
    sort1 = dag.add_op(
        SortOp(sort_key=itemgetter(1), name="SORT1"),
        parallelism=parallelism, upstream=[jfm], edge_types=[U_PLUG],
    )
    li = dag.add_op(
        LinearInterpolationOp(), parallelism=parallelism, upstream=[sort1],
        edge_types=[O_PLUG], name="LI",
    )
    map_stage = dag.add_op(
        map_to_device_type(), parallelism=parallelism, upstream=[li],
        edge_types=[O_PLUG], name="Map",
    )
    sort2 = dag.add_op(
        SortOp(sort_key=itemgetter(1), name="SORT2"),
        parallelism=parallelism, upstream=[map_stage], edge_types=[U_DTYPE],
    )
    avg = dag.add_op(
        AveragePerSecondOp(), parallelism=parallelism, upstream=[sort2],
        edge_types=[O_DTYPE], name="Avg",
    )
    predict = dag.add_op(
        PredictOp(models), parallelism=parallelism, upstream=[avg],
        edge_types=[O_DTYPE], name="Predict",
    )
    dag.add_sink("SINK", upstream=predict, input_type=O_DTYPE)
    return dag


def smart_homes_costs() -> Dict[str, float]:
    """Per-vertex CPU costs (see :data:`VERTEX_COSTS`)."""
    return dict(VERTEX_COSTS)
