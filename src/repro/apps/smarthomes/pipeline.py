"""The Figure 5 transduction DAG: smart-homes load prediction.

``JFM -> SORT -> LI -> Map -> SORT -> Avg -> Predict -> SINK``

Stage semantics (Section 6):

- **JFM** joins each measurement with the plug->device-type table,
  filters to the device types under analysis, and re-shapes the tuple
  into a plug key and a timestamped value.
- **SORT** restores per-plug timestamp order inside each marker block
  (the hub's watermark guarantee makes this a total per-key order).
- **LI** fills missing per-second data points by linear interpolation
  (Table 2's ``linearInterpolation``).
- **Map** projects the plug key to its device type.
- **SORT** restores per-device-type timestamp order.
- **Avg** averages, per device type, all values with the same timestamp
  (one output value per second).
- **Predict** forecasts the consumption over the next ``horizon``
  seconds with a REPTree over (second-of-day, current load, past-minute
  consumption).

The compiler fuses this into the Figure 5 deployment:
``JFM | H  ->  MRG;SORT;LI;Map | H  ->  MRG;SORT;Avg;Predict | UNQ``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional, Tuple

from repro.apps.smarthomes.events import SmartHomesWorkload
from repro.dag.graph import TransductionDAG
from repro.db import Derby
from repro.ml.reptree import RepTree
from repro.operators.base import Marker
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.library import TableJoin, map_pairs
from repro.operators.sort import SortOp
from repro.traces.trace_type import ordered_type, unordered_type

U_READINGS = unordered_type("Ut", "SItem")
U_PLUG = unordered_type("Plug", "VT")
O_PLUG = ordered_type("Plug", "VT")
U_DTYPE = unordered_type("DType", "VT")
O_DTYPE = ordered_type("DType", "VT")

#: Per-tuple CPU costs by DAG vertex (simulated seconds); the bench
#: harness sums these per fused component.
VERTEX_COSTS: Dict[str, float] = {
    "JFM": 30e-6,     # plug->device lookup
    "SORT1": 1.5e-6,  # per-item buffer/sort amortized
    "LI": 1e-6,
    "Map": 0.5e-6,
    "SORT2": 1.5e-6,
    "Avg": 1e-6,
    "Predict": 5e-6,  # regression-tree inference
}


DEFAULT_KEEP_TYPES = (
    "ac", "lights", "heater", "tv", "washer", "dryer", "dishwasher",
    "oven", "computer", "waterheater",
)


def jfm_stage(db: Derby, keep_types=DEFAULT_KEEP_TYPES) -> TableJoin:
    """Join-filter-map: plug lookup, device-type filter, tuple reshape."""
    keep = frozenset(keep_types)

    def lookup(key, reading):
        row = db.lookup("plugs", "plug_key", reading.plug_key())
        if row is None:
            return []
        device_type = row[1]
        if device_type not in keep:
            return []
        return [(reading.plug_key(), (reading.value, reading.timestamp, device_type))]

    return TableJoin(lookup, name="JFM")


class LinearInterpolationOp(OpKeyedOrdered):
    """Table 2's ``linearInterpolation``: per plug, fill per-second gaps.

    State is the previous ``(value, ts, dtype)``; each new sample emits
    the interpolated points for ``ts_prev+1 .. ts`` (the sample itself
    included).  Duplicate timestamps emit nothing and keep the earlier
    sample, matching the batch oracle in :mod:`repro.ml.interpolate`.
    """

    name = "LI"

    def init(self):
        return None

    def on_item(self, state, key, value, emit):
        load, ts, dtype = value
        if state is None:
            emit(key, value)
            return (load, ts, dtype)
        prev_load, prev_ts, _ = state
        dt = ts - prev_ts
        if dt <= 0:
            return state  # duplicate timestamp: keep the first sample
        for i in range(1, dt + 1):
            interpolated = prev_load + i * (load - prev_load) / dt
            emit(key, (interpolated, prev_ts + i, dtype))
        return (load, ts, dtype)


class AveragePerSecondOp(OpKeyedOrdered):
    """Per device type, average all values sharing a timestamp.

    Input is per-key sorted by timestamp, so a strictly larger timestamp
    proves the previous second's group is complete (up to items delayed
    across interpolation gaps, which streaming averaging inherently
    assigns to their arrival group).
    """

    name = "Avg"

    def init(self):
        return None  # or (ts, total, count)

    def on_item(self, state, key, value, emit):
        load, ts = value
        if state is None:
            return (ts, load, 1)
        current_ts, total, count = state
        if ts == current_ts:
            return (current_ts, total + load, count + 1)
        emit(key, (total / count, current_ts))
        return (ts, load, 1)


class PredictOp(OpKeyedOrdered):
    """REPTree forecast per device type and second.

    Keeps the past minute of per-second averages; once the window is
    warm, each new second emits ``(ts, predicted next-horizon sum)``.
    """

    name = "Predict"

    def __init__(self, models: Dict[str, RepTree], past: int = 60):
        self._models = models
        self._past = past

    def init(self):
        return deque()

    def on_item(self, state, key, value, emit):
        avg_load, ts = value
        window = state
        window.append((ts, avg_load))
        while window and window[0][0] < ts - self._past:
            window.popleft()
        if len(window) > self._past // 2:
            past_sum = sum(v for t, v in window if t < ts)
            model = self._models.get(key)
            if model is not None:
                prediction = model.predict([float(ts % 86400), avg_load, past_sum])
                emit(key, (ts, round(prediction, 3)))
        return window


def map_to_device_type() -> Any:
    """The Map stage: project the plug key to its device type."""
    return map_pairs(
        lambda plug_key, value: (value[2], (value[0], value[1])), name="Map"
    )


def smart_homes_dag(
    db: Derby,
    models: Dict[str, RepTree],
    parallelism: int = 1,
) -> TransductionDAG:
    """Build the Figure 5 DAG with the given per-stage parallelism."""
    dag = TransductionDAG("smart-homes")
    src = dag.add_source("hub", output_type=U_READINGS)
    jfm = dag.add_op(
        jfm_stage(db), parallelism=parallelism, upstream=[src],
        edge_types=[U_READINGS], name="JFM",
    )
    sort1 = dag.add_op(
        SortOp(sort_key=lambda v: v[1], name="SORT1"),
        parallelism=parallelism, upstream=[jfm], edge_types=[U_PLUG],
    )
    li = dag.add_op(
        LinearInterpolationOp(), parallelism=parallelism, upstream=[sort1],
        edge_types=[O_PLUG], name="LI",
    )
    map_stage = dag.add_op(
        map_to_device_type(), parallelism=parallelism, upstream=[li],
        edge_types=[O_PLUG], name="Map",
    )
    sort2 = dag.add_op(
        SortOp(sort_key=lambda v: v[1], name="SORT2"),
        parallelism=parallelism, upstream=[map_stage], edge_types=[U_DTYPE],
    )
    avg = dag.add_op(
        AveragePerSecondOp(), parallelism=parallelism, upstream=[sort2],
        edge_types=[O_DTYPE], name="Avg",
    )
    predict = dag.add_op(
        PredictOp(models), parallelism=parallelism, upstream=[avg],
        edge_types=[O_DTYPE], name="Predict",
    )
    dag.add_sink("SINK", upstream=predict, input_type=O_DTYPE)
    return dag


def smart_homes_costs() -> Dict[str, float]:
    """Per-vertex CPU costs (see :data:`VERTEX_COSTS`)."""
    return dict(VERTEX_COSTS)
