"""Offline training of the power-consumption predictor (REPTree).

The Figure 5 ``Predict`` stage forecasts, per device type and per second,
the total power consumption over the next ``horizon`` seconds from three
features (Section 6): current time (second of day), current load, and
consumption over the past minute.  Matching the paper, the tree is
trained on a subset of the data — here a generated training series from
the same load model, so train and test distributions agree.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.apps.smarthomes.events import DEVICE_TYPES, device_load
from repro.ml import RepTree


def make_features(
    series: Sequence[Tuple[int, float]], horizon: int, past: int = 60
) -> Tuple[List[List[float]], List[float]]:
    """Feature/label extraction from a dense per-second series.

    For each index with a full ``past`` window behind and ``horizon``
    ahead: features ``[second_of_day, current_load, past-minute sum]``
    and label ``sum of the next horizon seconds``.
    """
    X: List[List[float]] = []
    y: List[float] = []
    loads = [v for _, v in series]
    times = [t for t, _ in series]
    for i in range(past, len(series) - horizon):
        past_sum = sum(loads[i - past : i])
        X.append([float(times[i] % 86400), loads[i], past_sum])
        y.append(sum(loads[i + 1 : i + 1 + horizon]))
    return X, y


def training_series(
    device_type: str, seconds: int, seed: int
) -> List[Tuple[int, float]]:
    """A dense per-second load series from the workload's load model."""
    rng = random.Random(seed)
    return [(t, device_load(device_type, t, rng)) for t in range(seconds)]


def train_predictor(
    horizon: int = 600,
    train_seconds: int = 4000,
    past: int = 60,
    seed: int = 5,
) -> Dict[str, RepTree]:
    """One REPTree per device type, trained on generated series."""
    models: Dict[str, RepTree] = {}
    for i, device_type in enumerate(DEVICE_TYPES):
        series = training_series(device_type, train_seconds, seed + i)
        X, y = make_features(series, horizon=horizon, past=past)
        models[device_type] = RepTree(
            max_depth=8, min_samples_split=20, seed=seed
        ).fit(X, y)
    return models
