"""Smart-plug workload generation (the DEBS 2014 dataset substitution).

Every stream event is a load measurement
``(timestamp, value, plugId, unitId, buildingId)``.  Per Section 6:

- a plug generates roughly one measurement per two seconds, but the
  samples are *not* uniformly spaced — there are gaps as well as multiple
  measurements at the same timestamp;
- the hub emits synchronization markers every ``marker_period`` seconds
  with the watermark guarantee of Example 4.1: all measurements with
  timestamps below ``marker_period * i`` are emitted before the i-th
  marker (within a block, emission order is scrambled).

Each plug is connected to a device of some type (A/C, lights, fridge,
heater, tv); the device's load follows a type-specific daily profile plus
noise, which is what gives the regression tree something to learn.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Tuple

from repro.db import Derby
from repro.operators.base import Event, KV, Marker

DEVICE_TYPES = (
    "ac",
    "lights",
    "fridge",
    "heater",
    "tv",
    "washer",
    "dryer",
    "dishwasher",
    "oven",
    "computer",
    "waterheater",
    "freezer",
)

#: Per-type (base watts, daily swing watts, noise watts).
_PROFILE = {
    "ac": (900.0, 600.0, 40.0),
    "lights": (120.0, 80.0, 10.0),
    "fridge": (150.0, 20.0, 8.0),
    "heater": (1200.0, 800.0, 60.0),
    "tv": (200.0, 150.0, 15.0),
    "washer": (500.0, 350.0, 30.0),
    "dryer": (1800.0, 900.0, 80.0),
    "dishwasher": (1100.0, 500.0, 50.0),
    "oven": (2000.0, 1200.0, 90.0),
    "computer": (250.0, 120.0, 12.0),
    "waterheater": (1500.0, 700.0, 70.0),
    "freezer": (180.0, 25.0, 9.0),
}


class PlugReading(NamedTuple):
    """One smart-plug load measurement."""

    timestamp: int      # seconds
    value: float        # load in Watts
    plug_id: int
    unit_id: int
    building_id: int

    def plug_key(self) -> Tuple[int, int, int]:
        """The globally unique plug identity (building, unit, plug)."""
        return (self.building_id, self.unit_id, self.plug_id)


def device_load(device_type: str, t: int, rng: random.Random) -> float:
    """The instantaneous load of a device at second ``t`` (>= 0)."""
    base, swing, noise = _PROFILE[device_type]
    phase = 2.0 * math.pi * (t % 86400) / 86400.0
    return max(0.0, base + swing * math.sin(phase) + rng.gauss(0.0, noise))


@dataclass
class SmartHomesWorkload:
    """Deterministic plug-stream generator."""

    n_buildings: int = 4
    units_per_building: int = 5
    plugs_per_unit: int = 3
    duration: int = 120          # seconds of stream
    marker_period: int = 10      # seconds between markers
    mean_sample_gap: float = 2.0 # average seconds between samples
    gap_probability: float = 0.15        # chance of a long gap after a sample
    duplicate_probability: float = 0.08  # chance of a duplicate timestamp
    seed: int = 11

    def plug_keys(self) -> List[Tuple[int, int, int]]:
        return [
            (b, u, p)
            for b in range(self.n_buildings)
            for u in range(self.units_per_building)
            for p in range(self.plugs_per_unit)
        ]

    def device_of(self, plug_key: Tuple[int, int, int]) -> str:
        b, u, p = plug_key
        return DEVICE_TYPES[(b * 7 + u * 3 + p) % len(DEVICE_TYPES)]

    def make_database(self) -> Derby:
        """Plug -> device-type table (the JFM join side)."""
        db = Derby()
        plugs = db.create_table("plugs", [("plug_key", tuple), ("device_type", str)])
        plugs.insert_many((key, self.device_of(key)) for key in self.plug_keys())
        plugs.create_index("plug_key")
        return db

    # ------------------------------------------------------------------

    def readings(self) -> List[PlugReading]:
        """All measurements, unsorted within marker blocks (see events)."""
        rng = random.Random(self.seed)
        readings: List[PlugReading] = []
        for key in self.plug_keys():
            device = self.device_of(key)
            plug_rng = random.Random((self.seed, key).__hash__() & 0x7FFFFFFF)
            t = plug_rng.uniform(0.0, self.mean_sample_gap)
            while t < self.duration:
                second = int(t)
                b, u, p = key
                readings.append(
                    PlugReading(second, round(device_load(device, second, plug_rng), 3), p, u, b)
                )
                if plug_rng.random() < self.duplicate_probability:
                    readings.append(
                        PlugReading(
                            second,
                            round(device_load(device, second, plug_rng), 3),
                            p, u, b,
                        )
                    )
                gap = plug_rng.expovariate(1.0 / self.mean_sample_gap)
                if plug_rng.random() < self.gap_probability:
                    gap += plug_rng.uniform(2.0, 4.0) * self.mean_sample_gap
                t += max(0.5, gap)
        return readings

    def events(self) -> List[Event]:
        """The hub's stream: blocks of scrambled measurements + markers.

        Marker ``i`` (timestamp ``marker_period * i``) is emitted after
        every measurement with timestamp below ``marker_period * i`` —
        the Example 4.1 watermark guarantee.
        """
        rng = random.Random(self.seed ^ 0x5EED)
        by_block: Dict[int, List[PlugReading]] = {}
        for reading in self.readings():
            block = reading.timestamp // self.marker_period
            by_block.setdefault(block, []).append(reading)
        stream: List[Event] = []
        n_blocks = self.duration // self.marker_period
        for block in range(n_blocks):
            batch = by_block.get(block, [])
            rng.shuffle(batch)
            for reading in batch:
                stream.append(KV(reading.plug_key(), reading))
            stream.append(Marker(self.marker_period * (block + 1)))
        return stream

    def total_data_tuples(self) -> int:
        return sum(
            1
            for reading in self.readings()
            if reading.timestamp < (self.duration // self.marker_period) * self.marker_period
        )
