"""Evaluation applications (Section 6).

- :mod:`repro.apps.yahoo` — the extended Yahoo Streaming Benchmark:
  Queries I–VI, each as a transduction DAG and as a hand-crafted
  topology (Figure 3 / Figure 4).
- :mod:`repro.apps.smarthomes` — the DEBS 2014 Smart-Homes power
  prediction case study (Figure 5 / Figure 6).
- :mod:`repro.apps.iot` — the Example 4.1 sensor-interpolation pipeline
  used by the Section 2 motivation experiment.
"""
