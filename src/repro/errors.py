"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything coming out of this package with a single
``except`` clause while still distinguishing the finer-grained failure
modes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TraceTypeError(ReproError):
    """A value, item, or trace does not conform to its declared data-trace type.

    Raised by type constructors when items carry unknown tags or ill-typed
    values, and by the DAG type checker when an edge's type does not match
    the operator endpoints (the Figure 2 ``getStormTopology()`` check).
    """


class DependenceError(ReproError):
    """A dependence relation is malformed (e.g., not symmetric)."""


class ConsistencyError(ReproError):
    """A data-string transduction violates (X, Y)-consistency (Definition 3.5).

    Carries the offending pair of equivalent inputs whose cumulative
    outputs are not trace-equivalent, when available.
    """

    def __init__(self, message, witness=None):
        super().__init__(message)
        self.witness = witness


class DagError(ReproError):
    """A transduction DAG is structurally invalid (cycles, dangling edges,
    sources with multiple outputs, sinks with multiple inputs, ...)."""


class CompilationError(ReproError):
    """The DAG-to-topology compiler rejected the input DAG."""


class TopologyError(ReproError):
    """A Storm topology is malformed (unknown component, bad grouping, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class TaskFailureError(SimulationError):
    """A simulated task failed (operator exception or injected fault).

    Carries the failure context — which task, on which machine, during
    which epoch — plus a partial :class:`~repro.storm.simulator.
    SimulationReport` covering everything delivered before the failure,
    so callers can assert on *where* a run died instead of parsing a
    bare traceback.
    """

    def __init__(self, message, *, component=None, task_index=None,
                 machine=None, epoch=None, report=None):
        super().__init__(message)
        self.component = component
        self.task_index = task_index
        self.machine = machine
        self.epoch = epoch
        self.report = report


class SchemaError(ReproError):
    """A database table or row violates its declared schema."""


class ModelError(ReproError):
    """An ML model was used before fitting or with malformed inputs."""
