"""The analyzer driver: files in, one merged report out.

``analyze_source``/``analyze_file`` run the static AST rules on one
module; ``analyze_paths`` walks files and directories, applies inline
suppressions, optionally cross-confirms flagged monoids dynamically
(``check_monoid_laws`` on DT2xx-flagged classes only), and with
``dynamic=True`` runs the full sampled-shuffle validation of
``validate_operator_findings`` on every template class it can
instantiate.  ``analyze_dag`` is re-exported from
:mod:`repro.analysis.rules_dag` for graph-level checks.

Suppression syntax (same line, or a standalone comment covering the
next line)::

    risky_line()          # repro: ignore[DT203] -- why it is safe
    # repro: ignore[DT402] -- elements are immutable tuples
    return list(state)

A suppression that matches no finding is itself reported as DT001.
"""

from __future__ import annotations

import ast
import importlib.util
import inspect
import io
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.analysis import (
    rules_keyed,
    rules_order,
    rules_purity,
    rules_snapshot,
)
from repro.analysis.astutils import ScannedClass, scan_module
from repro.analysis.findings import Finding, Report, filter_findings
from repro.analysis.registry import get_rule
from repro.analysis.rules_dag import analyze_dag

__all__ = [
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "analyze_dag",
    "Report",
]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9,\s]+)\]")

_RULE_MODULES = (rules_purity, rules_order, rules_keyed, rules_snapshot)


@dataclass
class _Suppression:
    line: int  # the line the comment sits on
    target: int  # the line it covers
    codes: Tuple[str, ...]
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.target and finding.code in self.codes


@dataclass
class _FileResult:
    path: str
    findings: List[Finding] = field(default_factory=list)
    classes: List[ScannedClass] = field(default_factory=list)
    suppressions: List[_Suppression] = field(default_factory=list)


def _parse_suppressions(source: str) -> List[_Suppression]:
    """Find ``# repro: ignore[...]`` comments via the tokenizer.

    Tokenizing (rather than line-regexing) keeps suppression examples
    inside docstrings and string literals from being treated as real
    suppressions.
    """
    out: List[_Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out  # the parser will report DT002 separately
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        codes = tuple(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
        lineno = tok.start[0]
        # A comment-only line covers the next line; a trailing comment
        # covers its own line.
        before = tok.line[: tok.start[1]]
        target = lineno + 1 if before.strip() == "" else lineno
        out.append(_Suppression(line=lineno, target=target, codes=codes))
    return out


def _analyze_module(source: str, path: str) -> _FileResult:
    result = _FileResult(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            get_rule("DT002").finding(
                f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
            )
        )
        return result
    result.classes = scan_module(tree)
    for cls in result.classes:
        for module in _RULE_MODULES:
            result.findings.extend(module.check_class(cls, path))
    result.suppressions = _parse_suppressions(source)
    return result


def _apply_suppressions(
    result: _FileResult, *, dynamic_ran: bool
) -> List[Finding]:
    kept: List[Finding] = []
    for finding in result.findings:
        suppressed = False
        for supp in result.suppressions:
            if supp.covers(finding):
                supp.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    for supp in result.suppressions:
        if supp.used:
            continue
        # DT9xx suppressions are only judged when dynamic checks ran.
        if not dynamic_ran and all(c.startswith("DT9") for c in supp.codes):
            continue
        kept.append(
            get_rule("DT001").finding(
                f"suppression for {', '.join(supp.codes)} matches no finding",
                path=result.path,
                line=supp.line,
            )
        )
    return kept


def analyze_source(
    source: str, path: str = "<string>", *, suppress: bool = True
) -> List[Finding]:
    """Static findings for one module's source text."""
    result = _analyze_module(source, path)
    if not suppress:
        return result.findings
    return _apply_suppressions(result, dynamic_ran=False)


def analyze_file(path) -> List[Finding]:
    """Static findings (with suppressions applied) for one file."""
    p = Path(path)
    result = _analyze_module(p.read_text(encoding="utf-8"), str(p))
    return _apply_suppressions(result, dynamic_ran=False)


def _iter_python_files(paths: Sequence) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in f.parts
                ):
                    continue
                files.append(f)
        elif p.suffix == ".py":
            files.append(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {p}")
    # de-duplicate while keeping order
    seen: Set[Path] = set()
    unique: List[Path] = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def analyze_paths(
    paths: Sequence,
    *,
    dynamic: bool = False,
    confirm_monoids: bool = True,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    shuffles: int = 10,
    seed: int = 0,
) -> Report:
    """Analyze files/directories; return one merged :class:`Report`.

    ``confirm_monoids`` (on by default) imports only the files whose
    classes drew DT2xx findings and runs ``check_monoid_laws`` on those
    classes — a concrete counterexample upgrades the heuristic to a
    DT901 witness; passing samples annotate the static finding.  With
    ``dynamic=True`` every template class is validated
    (``validate_operator_findings``), adding DT901/DT902/DT903.
    """
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        result = _analyze_module(
            file_path.read_text(encoding="utf-8"), str(file_path)
        )
        if dynamic:
            result.findings.extend(
                _dynamic_findings(result, shuffles=shuffles, seed=seed)
            )
        elif confirm_monoids:
            _confirm_flagged_monoids(result)
        findings.extend(_apply_suppressions(result, dynamic_ran=dynamic))
    return Report(filter_findings(findings, select=select, ignore=ignore))


# ----------------------------------------------------------------------
# Dynamic confirmation
# ----------------------------------------------------------------------

_import_counter = 0


def _import_module(path: str):
    """Import a file under a unique private name (never cached in place
    of the real module)."""
    global _import_counter
    _import_counter += 1
    name = f"_repro_lint_target_{_import_counter}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    return module


class _Unconstructible(Exception):
    """The class requires constructor arguments; not a defect."""


def _instantiate(module, cls_name: str):
    cls = getattr(module, cls_name, None)
    if cls is None:
        raise TypeError(f"class {cls_name} is not importable at module level")
    try:
        signature = inspect.signature(cls)
    except (TypeError, ValueError):
        signature = None
    if signature is not None and any(
        p.default is inspect.Parameter.empty
        and p.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
        for p in signature.parameters.values()
    ):
        raise _Unconstructible(cls_name)
    return cls()


def _confirm_flagged_monoids(result: _FileResult) -> None:
    """Run check_monoid_laws on classes that drew DT2xx findings.

    A concrete law violation adds a DT901 witness; laws passing on the
    samples annotate the static finding (it stays — sampled laws can
    miss what the heuristic saw).  Files that cannot be imported or
    classes that cannot be zero-arg instantiated are skipped silently:
    the static verdict stands on its own.
    """
    from repro.operators.keyed_unordered import OpKeyedUnordered
    from repro.operators.sampling import default_sample_events
    from repro.operators.validate import check_monoid_laws

    flagged = {
        f.symbol.split(".")[0]
        for f in result.findings
        if f.code.startswith("DT2") and f.symbol
    }
    flagged_classes = [c for c in result.classes if c.name in flagged]
    if not flagged_classes:
        return
    try:
        module = _import_module(result.path)
    except BaseException:
        return
    for cls in flagged_classes:
        try:
            operator = _instantiate(module, cls.name)
        except BaseException:
            continue
        if not isinstance(operator, OpKeyedUnordered):
            continue
        try:
            check_monoid_laws(operator, default_sample_events())
        except Exception as exc:
            result.findings.append(
                get_rule("DT901").finding(
                    f"{exc} (dynamic confirmation of the static DT2xx "
                    "finding)",
                    path=result.path,
                    line=cls.node.lineno,
                    symbol=cls.name,
                )
            )
        else:
            result.findings = [
                f.with_note("monoid laws passed on sampled aggregates; "
                            "heuristic finding stands")
                if f.code == "DT201" and f.symbol.startswith(cls.name + ".")
                else f
                for f in result.findings
            ]


def _dynamic_findings(
    result: _FileResult, *, shuffles: int, seed: int
) -> List[Finding]:
    """validate_operator_findings for every template class in the file."""
    from repro.analysis import astutils
    from repro.operators.validate import validate_operator_findings

    targets = [
        c for c in result.classes if c.kind != astutils.GENERIC
    ]
    if not targets:
        return []
    try:
        module = _import_module(result.path)
    except BaseException as exc:
        return [
            get_rule("DT903").finding(
                f"file could not be imported for dynamic validation: "
                f"{exc!r}",
                path=result.path,
            )
        ]
    findings: List[Finding] = []
    for cls in targets:
        try:
            operator = _instantiate(module, cls.name)
        except _Unconstructible:
            # Factory-style classes (required ctor args) cannot be
            # validated generically; that is not a defect.
            continue
        except BaseException as exc:
            findings.append(
                get_rule("DT903").finding(
                    f"{cls.name} could not be instantiated for dynamic "
                    f"validation: {exc!r}",
                    path=result.path,
                    line=cls.node.lineno,
                    symbol=cls.name,
                )
            )
            continue
        findings.extend(
            validate_operator_findings(
                operator,
                shuffles=shuffles,
                seed=seed,
                path=result.path,
                line=cls.node.lineno,
                symbol=cls.name,
            )
        )
    return findings
