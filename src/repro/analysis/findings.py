"""The findings model: the shared diagnostic currency of the analyzer.

Every check in :mod:`repro.analysis` — static AST rules, DAG-structure
rules, and the dynamic witnesses of
:func:`repro.operators.validate.validate_operator_findings` — reports
through one :class:`Finding` shape, so a single ``repro lint`` run can
mix them in one report and CI can gate on them uniformly.

Codes are stable and grouped by family:

- ``DT0xx`` — analyzer meta (unused suppression, syntax error);
- ``DT1xx`` — purity of template callbacks (Theorem 4.2's "pure
  function" side conditions);
- ``DT2xx`` — commutativity of ``combine`` and order-sensitivity
  hazards (the commutative-monoid side condition of Table 1);
- ``DT3xx`` — keyed-state locality and the ``OpKeyedOrdered``
  key-preservation restriction;
- ``DT4xx`` — snapshot aliasing (checkpoint independence, the PR 4
  recovery contract);
- ``DT5xx`` — DAG-level rules (Section 2's RR hazard, silently
  defaulted edge kinds, Theorem 4.3 rewrite side conditions);
- ``DT9xx`` — dynamic witnesses (sampled monoid laws and Definition
  3.5 shuffle consistency).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Iterable, List, Sequence

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a concrete location.

    ``path``/``line``/``col`` locate the finding (``col`` is 1-based for
    display, like compilers print it); ``symbol`` names the enclosing
    ``Class.method`` or DAG vertex; ``hint`` is a one-line fix
    suggestion and ``clause`` the paper clause the rule enforces.
    """

    code: str
    message: str
    path: str = ""
    line: int = 0
    col: int = 0
    symbol: str = ""
    severity: str = ERROR
    hint: str = ""
    clause: str = ""

    def location(self) -> str:
        spot = self.path or "<unknown>"
        if self.line:
            spot += f":{self.line}"
            if self.col:
                spot += f":{self.col}"
        return spot

    def format_text(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        hint = f"\n    hint: {self.hint}" if self.hint else ""
        clause = f"\n    enforces: {self.clause}" if self.clause else ""
        return (
            f"{self.location()}: {self.severity} {self.code}{where}: "
            f"{self.message}{hint}{clause}"
        )

    def format_github(self) -> str:
        """One GitHub Actions workflow-command annotation line."""
        level = "error" if self.severity == ERROR else "warning"
        message = self.message
        if self.hint:
            message += f" (hint: {self.hint})"
        # Workflow commands are newline-delimited; escape per the spec.
        message = (
            message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )
        return (
            f"::{level} file={self.path},line={self.line or 1},"
            f"col={self.col or 1},title={self.code}::{message}"
        )

    def to_dict(self) -> dict:
        return asdict(self)

    def with_note(self, note: str) -> "Finding":
        """A copy of this finding with ``note`` appended to the message."""
        return replace(self, message=f"{self.message} [{note}]")

    def sort_key(self):
        return (
            self.path,
            self.line,
            self.col,
            _SEVERITY_RANK.get(self.severity, 9),
            self.code,
        )


@dataclass
class Report:
    """A batch of findings plus the rendering/exit-code policy."""

    findings: List[Finding] = field(default_factory=list)

    def sorted(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when errors (or, with ``strict``, warnings)."""
        if self.errors():
            return 1
        if strict and self.warnings():
            return 1
        return 0

    def render(self, fmt: str = "text") -> str:
        ordered = self.sorted()
        if fmt == "json":
            return json.dumps(
                {
                    "findings": [f.to_dict() for f in ordered],
                    "errors": len(self.errors()),
                    "warnings": len(self.warnings()),
                },
                indent=2,
            )
        if fmt == "github":
            return "\n".join(f.format_github() for f in ordered)
        lines = [f.format_text() for f in ordered]
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        n_err, n_warn = len(self.errors()), len(self.warnings())
        if not self.findings:
            return "no findings"
        return f"{n_err} error(s), {n_warn} warning(s)"


def filter_findings(
    findings: Iterable[Finding],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> List[Finding]:
    """Keep findings whose code matches ``select`` prefixes (all, when
    empty) and matches no ``ignore`` prefix.  Prefix match supports
    whole families: ``--select DT2`` keeps ``DT201``..``DT204``."""
    out = []
    for finding in findings:
        if select and not any(finding.code.startswith(p) for p in select):
            continue
        if ignore and any(finding.code.startswith(p) for p in ignore):
            continue
        out.append(finding)
    return out
