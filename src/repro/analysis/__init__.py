"""Static consistency analyzer for data-trace-typed pipelines.

An AST- and DAG-level linter for the side conditions Theorem 4.2
assumes but Python cannot enforce: purity of template callbacks
(DT1xx), commutativity of ``combine`` and order-sensitivity hazards
(DT2xx), keyed-state locality and key preservation (DT3xx), snapshot
aliasing (DT4xx), DAG-structure rules (DT5xx), plus dynamic witnesses
from sampled validation (DT9xx).

Entry points:

- :func:`repro.analysis.driver.analyze_paths` — lint files/dirs;
- :func:`repro.analysis.rules_dag.analyze_dag` — lint a built DAG;
- :func:`repro.analysis.registry.explain` — the ``--explain`` text;
- ``repro lint`` — the CLI front end.
"""

from repro.analysis.findings import ERROR, WARNING, Finding, Report
from repro.analysis.registry import RULES, all_codes, explain, get_rule

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "Report",
    "RULES",
    "all_codes",
    "explain",
    "get_rule",
    "analyze_paths",
    "analyze_file",
    "analyze_source",
    "analyze_dag",
]


def __getattr__(name):
    # Driver functions are imported lazily: repro.analysis.driver pulls
    # in the rule modules, which some embedders may not need just to
    # construct Finding objects.
    if name in ("analyze_paths", "analyze_file", "analyze_source",
                "analyze_dag"):
        from repro.analysis import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
