"""DT4xx — snapshot aliasing and shallow-copy hazards.

Epoch-aligned recovery restores operators from per-epoch snapshots;
the whole scheme rests on each snapshot being *independent* of the
live state it was taken from.  The static signatures of a broken
snapshot:

- DT401: ``snapshot_state``/``copy_state``/``restore_state`` returning
  its state argument unchanged (the snapshot IS the live object);
- DT402: returning a one-level copy (``list(state)``, ``state.copy()``,
  ``dict(state)``, slices, identity comprehensions) — safe only when
  every element is immutable, which the analyzer cannot prove, so it
  warns and expects either a deep copy or a justified suppression.

The ``X if X is None else <copy>`` idiom is recognized: only the
non-None branch is analyzed (returning a ``None`` state aliases
nothing).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.astutils import Callback, ScannedClass, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import get_rule

#: Call names that produce one-level copies of their argument.
_SHALLOW_CALLS = {
    "list", "tuple", "set", "frozenset", "dict", "deque",
    "collections.deque", "copy.copy",
}

#: Call names that produce independent copies.
_DEEP_CALLS = {"copy.deepcopy", "deepcopy"}


def check_class(cls: ScannedClass, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for cb in cls.callbacks:
        if cb.role != "snapshot":
            continue
        findings.extend(_check_snapshot(cb, path))
    return findings


def _is_param(node: ast.AST, name: Optional[str]) -> bool:
    return (
        name is not None
        and isinstance(node, ast.Name)
        and node.id == name
    )


def _none_guard_branch(expr: ast.AST, param: Optional[str]) -> ast.AST:
    """For ``state if state is None else X`` (either orientation),
    return the branch taken when the state is not None."""
    if not isinstance(expr, ast.IfExp) or param is None:
        return expr
    test = expr.test
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
        and _is_param(test.left, param)
    ):
        return expr
    if isinstance(test.ops[0], ast.Is):
        return expr.orelse  # state is None -> body is the None case
    if isinstance(test.ops[0], ast.IsNot):
        return expr.body
    return expr


def _check_snapshot(cb: Callback, path: str) -> List[Finding]:
    findings: List[Finding] = []
    fn = cb.node
    param = cb.state  # None for self-only snapshot_state()

    def report(code: str, node: ast.AST, msg: str) -> None:
        findings.append(
            get_rule(code).finding(
                msg,
                path=path,
                line=node.lineno,
                col=node.col_offset + 1,
                symbol=cb.symbol,
            )
        )

    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        expr = _none_guard_branch(node.value, param)

        # DT401: return <state param> verbatim
        if _is_param(expr, param):
            report(
                "DT401", node,
                f"{cb.name}() returns its state argument — the "
                f"snapshot aliases the live state",
            )
            continue
        # DT401 (self-only form): return self.<attr>
        if param is None and isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name) and cb.params and base.id == cb.params[0]:
                report(
                    "DT401", node,
                    f"{cb.name}() returns live instance state "
                    f"({ast.unparse(expr)}) without copying",
                )
                continue

        # DT402: shallow copies of the state argument
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in _DEEP_CALLS:
                continue
            if (
                name in _SHALLOW_CALLS
                and len(expr.args) == 1
                and _is_param(expr.args[0], param)
            ):
                report(
                    "DT402", node,
                    f"{cb.name}() returns a one-level copy "
                    f"({name}({param})); nested mutables stay shared "
                    f"with the live state",
                )
                continue
            # state.copy() method form
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "copy"
                and _is_param(expr.func.value, param)
            ):
                report(
                    "DT402", node,
                    f"{cb.name}() returns {param}.copy(); nested "
                    f"mutables stay shared with the live state",
                )
                continue
        # state[:] slice copy
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.slice, ast.Slice)
            and _is_param(expr.value, param)
        ):
            report(
                "DT402", node,
                f"{cb.name}() returns {param}[...] — a one-level slice "
                f"copy",
            )
            continue
        # identity comprehension: [x for x in state] / {k: v for k, v in
        # state.items()} — one-level copies when the element expression
        # is the bare loop variable (or bare k: v pair)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp)):
            if _is_identity_comp(expr, param):
                report(
                    "DT402", node,
                    f"{cb.name}() rebuilds the container but keeps the "
                    f"same element objects (identity comprehension)",
                )
    return findings


def _comp_over_param(comp, param: Optional[str]) -> bool:
    if param is None or len(comp.generators) != 1:
        return False
    src = comp.generators[0].iter
    if _is_param(src, param):
        return True
    # state.items() / .keys() / .values()
    return (
        isinstance(src, ast.Call)
        and isinstance(src.func, ast.Attribute)
        and src.func.attr in ("items", "keys", "values")
        and _is_param(src.func.value, param)
    )


def _is_identity_comp(comp, param: Optional[str]) -> bool:
    if not _comp_over_param(comp, param):
        return False
    gen = comp.generators[0]
    if isinstance(comp, ast.DictComp):
        # {k: v for k, v in state.items()} — value is the bare loop var
        if isinstance(gen.target, ast.Tuple) and len(gen.target.elts) == 2:
            v_target = gen.target.elts[1]
            return (
                isinstance(v_target, ast.Name)
                and isinstance(comp.value, ast.Name)
                and comp.value.id == v_target.id
            )
        return False
    # [x for x in state] — element is the bare loop var
    return (
        isinstance(gen.target, ast.Name)
        and isinstance(comp.elt, ast.Name)
        and comp.elt.id == gen.target.id
    )
