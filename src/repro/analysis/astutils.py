"""AST plumbing shared by the rule modules.

The central job here is mapping a parsed module to the Table 1
template vocabulary: which classes are operators, which template
family they instantiate (stateless / keyed-unordered / keyed-ordered /
sliding), and — for each overridden template callback — which
parameter plays which role (key, value, state, emit).  Rules then
speak in roles, not positions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

# Template families.
STATELESS = "stateless"
KEYED_UNORDERED = "keyed_unordered"
KEYED_ORDERED = "keyed_ordered"
SLIDING = "sliding"
GENERIC = "operator"  # raw Operator subclass: only snapshot rules apply

#: Known base-class names -> template family.  Covers the Table 1
#: templates plus the library/app subclasses built on them, so that
#: second-level subclasses (e.g. ``PersistingCount(RunningAggregate)``)
#: classify without cross-module resolution.
TEMPLATE_BASES: Dict[str, str] = {
    # templates
    "OpStateless": STATELESS,
    "StatelessFn": STATELESS,
    "OpKeyedUnordered": KEYED_UNORDERED,
    "OpKeyedOrdered": KEYED_ORDERED,
    "OpSlidingWindow": SLIDING,
    "SlidingWindowFn": SLIDING,
    # library subclasses that keep the template callback signatures
    "MapPairsFn": STATELESS,
    "TableJoin": STATELESS,
    "TumblingAggregate": KEYED_UNORDERED,
    "RunningAggregate": KEYED_UNORDERED,
    "SlidingAggregate": SLIDING,
    "MaxOfAvgPerKey": KEYED_UNORDERED,
    "BlockJoin": KEYED_UNORDERED,
    "TopK": KEYED_UNORDERED,
    "DistinctCount": KEYED_UNORDERED,
    "Sessionize": KEYED_ORDERED,
    "KeyedSequenceOp": KEYED_ORDERED,
    # generic operators: no template callbacks, but snapshot rules apply
    "Operator": GENERIC,
    "SortOp": GENERIC,
}

#: Methods holding checkpoint state, scanned by the DT4xx rules on any
#: class that defines them (position of the state-like parameter).
SNAPSHOT_METHODS: Dict[str, int] = {
    "snapshot_state": 1,  # snapshot_state(self, state)
    "copy_state": 1,
    "restore_state": 1,  # restore_state(self, snapshot)
}

#: Calls whose result does not expose the iteration/argument order of
#: its operands — crossing one of these launders order taint.
SANITIZERS: Set[str] = {
    "sorted", "len", "sum", "min", "max", "any", "all",
    "set", "frozenset", "Counter", "collections.Counter",
}

#: Method names that mutate their receiver in place.
MUTATING_METHODS: Set[str] = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
    "appendleft", "popleft", "rotate", "sort", "reverse", "write",
}


@dataclass(frozen=True)
class Callback:
    """One overridden template callback (or snapshot method) in a class."""

    cls_name: str
    kind: str  # template family of the class
    node: ast.FunctionDef
    role: str  # "emitting" | "pure" | "snapshot"
    key: Optional[str] = None
    value: Optional[str] = None
    state: Optional[str] = None
    emit: Optional[str] = None
    params: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def symbol(self) -> str:
        return f"{self.cls_name}.{self.node.name}"


@dataclass
class ScannedClass:
    """A classified operator class and its recognized callbacks."""

    node: ast.ClassDef
    kind: str
    callbacks: List[Callback] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name


# role spec per family: method -> (role, {param role: position}).
# Positions count self as 0; missing positions fall back to None.
_SPECS: Dict[str, Dict[str, Tuple[str, Dict[str, int]]]] = {
    STATELESS: {
        "on_item": ("emitting", {"key": 1, "value": 2, "emit": 3}),
        "on_marker": ("emitting", {"emit": 2}),
    },
    KEYED_UNORDERED: {
        # fold_in(self, key, value); update_state(self, old_state, agg);
        # on_item(self, last_state, key, value, emit);
        # on_marker(self, new_state, key, m, emit).
        "fold_in": ("pure", {"key": 1, "value": 2}),
        "identity": ("pure", {}),
        "combine": ("pure", {}),
        "init": ("pure", {}),
        "update_state": ("pure", {"state": 1, "value": 2}),
        "on_item": ("emitting", {"state": 1, "key": 2, "value": 3, "emit": 4}),
        "on_marker": ("emitting", {"state": 1, "key": 2, "emit": 4}),
    },
    KEYED_ORDERED: {
        # on_item/on_items(self, state, key, value(s), emit);
        # on_marker(self, state, key, m, emit).
        "init": ("pure", {}),
        "on_item": ("emitting", {"state": 1, "key": 2, "value": 3, "emit": 4}),
        "on_items": ("emitting", {"state": 1, "key": 2, "value": 3, "emit": 4}),
        "on_marker": ("emitting", {"state": 1, "key": 2, "emit": 4}),
    },
    SLIDING: {
        # fold_in(self, key, value); finish(self, key, agg, timestamp).
        "fold_in": ("pure", {"key": 1, "value": 2}),
        "identity": ("pure", {}),
        "combine": ("pure", {}),
        "finish": ("pure", {"key": 1, "state": 2}),
    },
    GENERIC: {},
}


def base_names(node: ast.ClassDef) -> List[str]:
    """Plain names of a class's bases (``pkg.Base`` -> ``Base``)."""
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _classify(node: ast.ClassDef, local_kinds: Dict[str, str]) -> Optional[str]:
    for base in base_names(node):
        if base in local_kinds:
            return local_kinds[base]
        if base in TEMPLATE_BASES:
            return TEMPLATE_BASES[base]
    return None


def _param_names(fn: ast.FunctionDef) -> Tuple[str, ...]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    return tuple(names)


def _make_callback(cls: ScannedClass, fn: ast.FunctionDef) -> Optional[Callback]:
    spec = _SPECS.get(cls.kind, {}).get(fn.name)
    params = _param_names(fn)
    if fn.name in SNAPSHOT_METHODS:
        pos = SNAPSHOT_METHODS[fn.name]
        state = params[pos] if pos and len(params) > pos else None
        return Callback(
            cls_name=cls.name, kind=cls.kind, node=fn, role="snapshot",
            state=state, params=params,
        )
    if spec is None:
        return None
    role, positions = spec

    def at(role_name: str) -> Optional[str]:
        pos = positions.get(role_name)
        if pos is not None and len(params) > pos:
            return params[pos]
        return None

    key, value, state, emit = at("key"), at("value"), at("state"), at("emit")
    # The emit parameter is positional in every template; as a fallback
    # (e.g. extra defaulted params) take a parameter literally named emit.
    if role == "emitting" and emit is None and "emit" in params:
        emit = "emit"
    return Callback(
        cls_name=cls.name, kind=cls.kind, node=fn, role=role,
        key=key, value=value, state=state, emit=emit, params=params,
    )


def scan_module(tree: ast.Module) -> List[ScannedClass]:
    """Classify every operator class in a module (nested ones included).

    Classification is by base-class *name*: the known template names
    plus any class classified earlier in the same module (handles
    local subclass chains in source order).
    """
    local_kinds: Dict[str, str] = {}
    out: List[ScannedClass] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        kind = _classify(node, local_kinds)
        if kind is None:
            continue
        local_kinds[node.name] = kind
        scanned = ScannedClass(node=node, kind=kind)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cb = _make_callback(scanned, item)
                if cb is not None:
                    scanned.callbacks.append(cb)
        out.append(scanned)
    return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    return dotted_name(call.func)


def is_sanitizer_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    return name in SANITIZERS if name else False


def names_in(node: ast.AST, *, through_sanitizers: bool = False) -> Set[str]:
    """Names referenced in an expression.

    With ``through_sanitizers=False`` (the default for taint checks),
    subtrees under a sanitizer call — ``sorted(xs)``, ``len(s)`` — are
    not descended into: their order content is laundered.
    """
    found: Set[str] = set()

    def visit(n: ast.AST) -> None:
        if not through_sanitizers and is_sanitizer_call(n):
            return
        if isinstance(n, ast.Name):
            found.add(n.id)
        for child in ast.iter_child_nodes(n):
            visit(child)

    visit(node)
    return found


def local_names(fn: ast.FunctionDef) -> Set[str]:
    """Parameters plus every name bound anywhere inside ``fn``.

    Deliberately coarse (it includes names bound in nested functions and
    comprehensions): the purity rules use this set to decide that a name
    is *not* local, so over-approximating locals only loses findings,
    never invents them.
    """
    bound: Set[str] = set(_param_names(fn))
    args = fn.args
    for a in (args.vararg, args.kwarg):
        if a is not None:
            bound.add(a.arg)
    for a in args.kwonlyargs:
        bound.add(a.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                bound.add(node.name)
            for a in node.args.args + node.args.posonlyargs + node.args.kwonlyargs:
                bound.add(a.arg)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound


def subscript_base(node: ast.AST) -> ast.AST:
    """Peel subscripts: ``a[i][j]`` -> the ``a`` node."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def is_self_attribute(node: ast.AST, self_name: str) -> bool:
    """True for ``self.x`` (or deeper: ``self.x.y``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id == self_name


def self_param(fn: ast.FunctionDef) -> Optional[str]:
    params = _param_names(fn)
    return params[0] if params else None


def infer_aggregate_kind(cls: ScannedClass) -> Optional[str]:
    """Guess the monoid aggregate's container kind from ``identity``.

    ``identity`` returning ``{}``/``dict(...)`` -> "dict"; ``set()``/
    set literals -> "set".  Used by the DT203 taint walk to treat the
    aggregate parameters of combine/update_state as unordered sources.
    """
    for cb in cls.callbacks:
        if cb.name != "identity":
            continue
        for node in ast.walk(cb.node):
            if isinstance(node, ast.Return) and node.value is not None:
                kind = container_kind(node.value)
                if kind:
                    return kind
    return None


def container_kind(expr: ast.AST) -> Optional[str]:
    """"dict" / "set" / "list" when the expression clearly builds one."""
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in ("dict", "collections.defaultdict", "defaultdict"):
            return "dict"
        if name in ("set", "frozenset"):
            return "set"
        if name == "list":
            return "list"
    return None


def walk_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node
