"""DT1xx — purity of template callbacks.

Theorem 4.2's consistency proof treats every template function as a
pure function of its arguments.  These rules flag the ways Python code
escapes that contract: instance-state writes (DT101), ``global``/
``nonlocal`` (DT102), nondeterministic calls (DT103), mutation of
shared mutables outside the function (DT104), and in-place mutation of
arguments that the runtime may alias (DT105).
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis import astutils
from repro.analysis.astutils import (
    Callback,
    MUTATING_METHODS,
    ScannedClass,
    dotted_name,
    is_self_attribute,
    local_names,
    self_param,
    subscript_base,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import get_rule

#: Exact dotted call names whose results depend on wall clock, process
#: identity, or hidden RNG state.
_NONDET_EXACT: Set[str] = {
    "id",
    "random", "randint", "randrange", "shuffle", "choice", "sample",
    "uniform", "gauss", "getrandbits",
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "os.urandom", "os.getpid",
    "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "uuid.uuid1", "uuid.uuid4",
}

#: Dotted prefixes: any call under these modules is nondeterministic.
_NONDET_PREFIXES = ("random.", "secrets.", "np.random.", "numpy.random.")


def _is_nondet_call(name: str) -> bool:
    if name in _NONDET_EXACT:
        return True
    return any(name.startswith(p) for p in _NONDET_PREFIXES)


def check_class(cls: ScannedClass, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for cb in cls.callbacks:
        if cb.role == "snapshot":
            continue  # DT4xx territory
        findings.extend(_check_callback(cb, path))
    return findings


def _check_callback(cb: Callback, path: str) -> List[Finding]:
    fn = cb.node
    findings: List[Finding] = []
    self_name = self_param(fn)
    locals_ = local_names(fn)
    # Parameters whose in-place mutation DT105 flags: the arguments of
    # pure functions, plus the state snapshot OpKeyedUnordered.on_item
    # sees (the runtime aliases it across items of a block).
    frozen_params: Set[str] = set()
    if cb.role == "pure":
        frozen_params = set(cb.params[1:])
    else:
        # Emitting callbacks do not own the incoming value (the runtime
        # may alias it into other tasks' queues), and OpKeyedUnordered's
        # on_item only sees the shared last-marker state snapshot.
        if cb.value:
            frozen_params.add(cb.value)
        if (
            cb.kind == astutils.KEYED_UNORDERED
            and cb.name == "on_item"
            and cb.state
        ):
            frozen_params.add(cb.state)

    def report(code: str, node: ast.AST, message: str) -> None:
        findings.append(
            get_rule(code).finding(
                message,
                path=path,
                line=getattr(node, "lineno", fn.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                symbol=cb.symbol,
            )
        )

    for node in ast.walk(fn):
        # --- DT102: global / nonlocal declarations -------------------
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kw = "global" if isinstance(node, ast.Global) else "nonlocal"
            report(
                "DT102", node,
                f"`{kw} {', '.join(node.names)}` declares out-of-band "
                f"state in template callback {cb.name}()",
            )
            continue

        # --- assignment targets --------------------------------------
        targets: List[ast.AST] = []
        if isinstance(node, (ast.Assign,)):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            base = subscript_base(target)
            if self_name and is_self_attribute(base, self_name):
                # e.g. self.total = ..., self.cache[k] = ..., del self.x
                report(
                    "DT101", node,
                    f"template callback {cb.name}() writes operator "
                    f"instance state ({ast.unparse(target)})",
                )
            elif isinstance(target, (ast.Subscript,)) or isinstance(
                target, ast.Attribute
            ):
                root = base
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    if root.id in frozen_params and isinstance(
                        target, ast.Subscript
                    ):
                        report(
                            "DT105", node,
                            f"{cb.name}() mutates its argument "
                            f"`{root.id}` in place "
                            f"({ast.unparse(target)} = ...)",
                        )
                    elif root.id not in locals_:
                        report(
                            "DT104", node,
                            f"{cb.name}() writes shared mutable "
                            f"`{root.id}` defined outside the function "
                            f"({ast.unparse(target)} = ...)",
                        )

        # --- calls ----------------------------------------------------
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and _is_nondet_call(name):
                report(
                    "DT103", node,
                    f"nondeterministic call {name}() in template "
                    f"callback {cb.name}()",
                )
            # mutating method calls: receiver decides the rule
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
            ):
                recv = subscript_base(node.func.value)
                if self_name and is_self_attribute(recv, self_name):
                    report(
                        "DT101", node,
                        f"template callback {cb.name}() mutates operator "
                        f"instance state "
                        f"({ast.unparse(node.func)}(...))",
                    )
                else:
                    root = recv
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name):
                        if root.id in frozen_params:
                            report(
                                "DT105", node,
                                f"{cb.name}() mutates its argument "
                                f"`{root.id}` in place "
                                f"(.{node.func.attr}())",
                            )
                        elif root.id not in locals_:
                            report(
                                "DT104", node,
                                f"{cb.name}() mutates shared mutable "
                                f"`{root.id}` defined outside the "
                                f"function (.{node.func.attr}())",
                            )
    return findings
