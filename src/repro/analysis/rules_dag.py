"""DT5xx — DAG-structure rules on a built :class:`TransductionDAG`.

These run on the graph, not on source text, so findings carry the DAG
and vertex names as their location:

- DT500: the DAG fails :func:`typecheck_dag` outright (hard type error);
- DT501: a round-robin splitter upstream of an order-sensitive (O
  input) operator with no SORT in between — the Section 2 bug as a
  reachability check, reported with the full offending path;
- DT502: edges whose kind inference fell back to the U default
  (from :func:`repro.dag.typecheck.typecheck_diagnostics`);
- DT503: a parallelism hint that violates Theorem 4.3's
  single-consumer side condition, i.e. :func:`deploy` would raise on
  it (checked here before the planner applies the rewrite).
"""

from __future__ import annotations

from typing import List

from repro.analysis.findings import Finding
from repro.analysis.registry import get_rule
from repro.dag.graph import TransductionDAG, Vertex, VertexKind
from repro.dag.typecheck import typecheck_diagnostics
from repro.errors import DagError, TraceTypeError


def analyze_dag(dag: TransductionDAG, path: str = "") -> List[Finding]:
    """All DT5xx findings for one DAG."""
    path = path or f"<dag:{dag.name}>"
    findings: List[Finding] = []
    findings.extend(_check_rr_upstream_of_ordered(dag, path))
    findings.extend(_check_parallelism_preconditions(dag, path))

    try:
        _, diagnostics = typecheck_diagnostics(dag)
    except (TraceTypeError, DagError) as exc:
        if not any(f.code == "DT501" for f in findings):
            findings.append(
                get_rule("DT500").finding(str(exc), path=path, symbol=dag.name)
            )
        return findings

    for diag in diagnostics:
        findings.append(
            get_rule("DT502").finding(
                diag.describe(),
                path=path,
                symbol=f"{diag.src}->{diag.dst}",
            )
        )
    return findings


def _is_sorting_vertex(vertex: Vertex) -> bool:
    """A SORT-like OP: consumes any kind, (re)establishes O output."""
    if vertex.kind != VertexKind.OP:
        return False
    op = vertex.payload
    return getattr(op, "input_kind", "U") is None and (
        getattr(op, "output_kind", None) == "O"
    )


def _check_rr_upstream_of_ordered(
    dag: TransductionDAG, path: str
) -> List[Finding]:
    findings: List[Finding] = []
    for split in dag.vertices.values():
        if split.kind != VertexKind.SPLIT:
            continue
        if not getattr(split.payload, "requires_unordered", False):
            continue  # HASH/UNQ preserve per-key order
        # BFS downstream; a SORT vertex re-establishes order and stops
        # the hazard along that path.
        stack = [(split, (split.name,))]
        seen = set()
        while stack:
            vertex, trail = stack.pop()
            for edge in dag.out_edges(vertex):
                nxt = dag.vertices[edge.dst]
                if nxt.vertex_id in seen:
                    continue
                seen.add(nxt.vertex_id)
                if _is_sorting_vertex(nxt):
                    continue
                if (
                    nxt.kind == VertexKind.OP
                    and getattr(nxt.payload, "input_kind", "U") == "O"
                ):
                    findings.append(
                        get_rule("DT501").finding(
                            f"round-robin splitter {split.name} reaches "
                            f"order-sensitive operator {nxt.name} with no "
                            f"SORT in between "
                            f"(path: {' -> '.join(trail + (nxt.name,))})",
                            path=path,
                            symbol=nxt.name,
                        )
                    )
                    continue
                stack.append((nxt, trail + (nxt.name,)))
    return findings


def check_parallelism_preconditions(
    dag: TransductionDAG, path: str = ""
) -> List[Finding]:
    """Theorem 4.3 side conditions for every vertex a deploy would split.

    Public entry point used by :meth:`repro.dag.planner.Plan.apply`
    (``check=True``) to gate a plan before the rewrite is attempted.
    """
    return _check_parallelism_preconditions(
        dag, path or f"<dag:{dag.name}>"
    )


def _check_parallelism_preconditions(
    dag: TransductionDAG, path: str
) -> List[Finding]:
    findings: List[Finding] = []
    for vertex in dag.vertices.values():
        if vertex.kind != VertexKind.OP or vertex.parallelism <= 1:
            continue
        consumers = dag.out_edges(vertex)
        if len(consumers) != 1:
            findings.append(
                get_rule("DT503").finding(
                    f"vertex {vertex.name} has parallelism "
                    f"{vertex.parallelism} but {len(consumers)} consumers; "
                    "the Theorem 4.3 rewrite requires exactly one",
                    path=path,
                    symbol=vertex.name,
                )
            )
    return findings
