"""DT3xx — keyed-state locality and key preservation.

Theorem 4.3's HASH parallelization of keyed operators is only sound
when all of a key's state lives in the template-managed keyed state
(so it travels with the key) and, for ``OpKeyedOrdered``, when every
emission keeps the input key (so the O output type remains justified).
These rules catch the static signatures of both violations:

- DT301: a keyed callback subscripting ``self.something[...]`` — a
  private key->state table next to the one the template manages;
- DT302: the state parameter subscripted by a variable other than the
  event key — a cross-key read/write;
- DT303: ``emit(k, ...)`` in an ``OpKeyedOrdered`` callback where
  ``k`` is not the input key parameter (the runtime key guard raises
  at execution time; this is the lint-time version).
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis import astutils
from repro.analysis.astutils import (
    Callback,
    ScannedClass,
    is_self_attribute,
    self_param,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import get_rule


def check_class(cls: ScannedClass, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for cb in cls.callbacks:
        if cb.role == "snapshot":
            continue
        if cb.kind in (astutils.KEYED_UNORDERED, astutils.KEYED_ORDERED,
                       astutils.SLIDING):
            findings.extend(_check_state_locality(cb, path))
        if cb.kind == astutils.KEYED_ORDERED and cb.role == "emitting":
            findings.extend(_check_key_preservation(cb, path))
    return findings


def _report(cb: Callback, path: str, code: str, node: ast.AST, msg: str) -> Finding:
    return get_rule(code).finding(
        msg,
        path=path,
        line=node.lineno,
        col=node.col_offset + 1,
        symbol=cb.symbol,
    )


def _key_aliases(cb: Callback) -> Set[str]:
    """The key parameter plus trivial aliases (``k = key``)."""
    aliases: Set[str] = set()
    if cb.key:
        aliases.add(cb.key)
        for node in ast.walk(cb.node):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases
            ):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        aliases.add(t.id)
    return aliases


def _check_state_locality(cb: Callback, path: str) -> List[Finding]:
    findings: List[Finding] = []
    fn = cb.node
    self_name = self_param(fn)
    key_names = _key_aliases(cb)
    state_name = cb.state

    for node in ast.walk(fn):
        if not isinstance(node, ast.Subscript):
            continue
        base = node.value
        # DT301: self.<attr>[...] inside a keyed callback
        if (
            self_name is not None
            and isinstance(base, ast.Attribute)
            and is_self_attribute(base, self_name)
        ):
            # Only when the subscript *looks keyed*: indexing by the key
            # or another variable.  Constant subscripts on instance
            # config (e.g. self._table[0]) are not per-key state.
            if not isinstance(node.slice, ast.Constant):
                findings.append(_report(
                    cb, path, "DT301", node,
                    f"{cb.name}() keeps per-key state on the operator "
                    f"instance ({ast.unparse(base)}[...])",
                ))
            continue
        # DT302: state[<non-key variable>]
        if (
            state_name is not None
            and isinstance(base, ast.Name)
            and base.id == state_name
            and cb.key is not None
        ):
            index = node.slice
            if isinstance(index, ast.Name) and index.id not in key_names:
                findings.append(_report(
                    cb, path, "DT302", node,
                    f"{cb.name}() subscripts the keyed state by "
                    f"`{index.id}`, which is not the event key "
                    f"`{cb.key}`",
                ))
    return findings


def _check_key_preservation(cb: Callback, path: str) -> List[Finding]:
    """DT303: every emit() in OpKeyedOrdered must pass the input key."""
    findings: List[Finding] = []
    if cb.emit is None or cb.key is None:
        return findings
    key_names = _key_aliases(cb)
    for node in ast.walk(cb.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == cb.emit
        ):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Name) and first.id in key_names:
            continue
        if isinstance(first, ast.Starred):
            continue  # cannot tell statically; the runtime guard decides
        findings.append(_report(
            cb, path, "DT303", node,
            f"{cb.name}() emits under `{ast.unparse(first)}`, which is "
            f"not the input key parameter `{cb.key}` — OpKeyedOrdered "
            f"must preserve the input key",
        ))
    return findings
