"""DT2xx — commutativity of ``combine`` and order-sensitivity hazards.

Two complementary attacks on the same side condition (Table 1's
commutative monoid, Definition 3.5's order-independence):

- **Syntactic non-commutativity** (DT201/DT202/DT204): ``combine``
  built from operations that visibly depend on argument order —
  subtraction, division, string/list concatenation, left-to-right
  ``reduce``, last-writer-wins dict merges.

- **Order taint** (DT203): a small intra-function taint walk from
  unordered iteration sources (set literals, dict-typed locals, dict/
  set monoid aggregates inferred from ``identity()``) to output sinks
  (``emit`` arguments, return values of pure template functions).
  Hash-order hazards are *stable within one process* (PYTHONHASHSEED),
  so dynamic validation cannot see them — this rule is the static
  counterpart.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis import astutils
from repro.analysis.astutils import (
    Callback,
    ScannedClass,
    call_name,
    container_kind,
    infer_aggregate_kind,
    is_sanitizer_call,
    names_in,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import get_rule

#: BinOp node types that are non-commutative outright.
_NONCOMM_OPS = (
    ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.MatMult,
)

_OP_NAMES = {
    ast.Sub: "-", ast.Div: "/", ast.FloorDiv: "//", ast.Mod: "%",
    ast.Pow: "**", ast.LShift: "<<", ast.RShift: ">>", ast.MatMult: "@",
}


def check_class(cls: ScannedClass, path: str) -> List[Finding]:
    findings: List[Finding] = []
    agg_kind = infer_aggregate_kind(cls)
    for cb in cls.callbacks:
        if cb.name == "combine" and cb.role == "pure":
            findings.extend(_check_combine(cb, path))
        elif cb.name in ("update_state", "finish", "fold_in") and (
            cb.role == "pure"
        ):
            findings.extend(_check_reduce(cb, path))
        if cb.role in ("pure", "emitting"):
            findings.extend(_check_order_taint(cb, path, agg_kind))
    return findings


def _check_reduce(cb: Callback, path: str) -> List[Finding]:
    """DT202 outside ``combine``: left-to-right folds in the other
    monoid/fold callbacks bake element order into the result too."""
    findings: List[Finding] = []
    for node in ast.walk(cb.node):
        if isinstance(node, ast.Call) and call_name(node) in (
            "reduce", "functools.reduce", "accumulate", "itertools.accumulate",
        ):
            findings.append(
                get_rule("DT202").finding(
                    f"{cb.name}() folds left-to-right with "
                    f"{call_name(node)}(); the result depends on element "
                    "order unless the inner function is "
                    "commutative+associative",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    symbol=cb.symbol,
                )
            )
    return findings


# ----------------------------------------------------------------------
# DT201 / DT202 / DT204: combine(x, y)
# ----------------------------------------------------------------------

def _check_combine(cb: Callback, path: str) -> List[Finding]:
    findings: List[Finding] = []
    fn = cb.node
    params = [p for p in cb.params[1:]]  # the two aggregate arguments
    if len(params) < 2:
        return findings
    x, y = params[0], params[1]

    def report(code: str, node: ast.AST, message: str) -> None:
        findings.append(
            get_rule(code).finding(
                message,
                path=path,
                line=node.lineno,
                col=node.col_offset + 1,
                symbol=cb.symbol,
            )
        )

    def scan(node: ast.AST) -> None:
        # Do not descend into sanitizer calls: sorted(x + y) launders
        # the concatenation order.
        if is_sanitizer_call(node):
            return
        if isinstance(node, ast.BinOp):
            left_names = names_in(node.left, through_sanitizers=True)
            right_names = names_in(node.right, through_sanitizers=True)
            crosses = (x in left_names and y in right_names) or (
                y in left_names and x in right_names
            )
            if isinstance(node.op, _NONCOMM_OPS) and crosses:
                report(
                    "DT201", node,
                    f"combine() applies non-commutative `{_OP_NAMES[type(node.op)]}` "
                    f"to its arguments ({x} and {y})",
                )
            elif isinstance(node.op, ast.Add) and (
                x in left_names or y in left_names
                or x in right_names or y in right_names
            ):
                # + is commutative on numbers but concatenation on
                # sequences; flag when either operand is visibly a
                # sequence literal or an f-string.
                for side in (node.left, node.right):
                    if isinstance(
                        side, (ast.List, ast.ListComp, ast.JoinedStr)
                    ) or (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, str)
                    ):
                        report(
                            "DT201", node,
                            "combine() concatenates sequences with `+` "
                            "(concatenation is not commutative)",
                        )
                        break
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("reduce", "functools.reduce",
                        "accumulate", "itertools.accumulate"):
                report(
                    "DT202", node,
                    f"combine() folds left-to-right with {name}(); the "
                    "result depends on element order unless the inner "
                    "function is commutative+associative",
                )
            # str.join over both arguments is ordered concatenation
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            ):
                arg_names = set()
                for arg in node.args:
                    arg_names |= names_in(arg, through_sanitizers=True)
                if x in arg_names and y in arg_names:
                    report(
                        "DT201", node,
                        "combine() joins its arguments into a string in "
                        "argument order",
                    )
            # dict.update on a local merge copy: last writer wins
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "update"
                and names_in(node, through_sanitizers=True) & {x, y}
            ):
                report(
                    "DT204", node,
                    "combine() merges dicts with .update() — last "
                    "writer wins on overlapping keys and insertion "
                    "order records arrival order",
                )
        if isinstance(node, ast.Dict):
            # {**x, **y} double-star merge
            starred = [k for k in node.keys if k is None]
            if starred:
                value_names = set()
                for key_node, value_node in zip(node.keys, node.values):
                    if key_node is None:
                        value_names |= names_in(
                            value_node, through_sanitizers=True
                        )
                if x in value_names or y in value_names:
                    report(
                        "DT204", node,
                        "combine() merges dicts with `{**...}` — last "
                        "writer wins on overlapping keys",
                    )
        for child in ast.iter_child_nodes(node):
            scan(child)

    for stmt in fn.body:
        scan(stmt)
    return findings


# ----------------------------------------------------------------------
# DT203: unordered-iteration order flowing to output
# ----------------------------------------------------------------------

def _check_order_taint(
    cb: Callback, path: str, agg_kind: Optional[str]
) -> List[Finding]:
    fn = cb.node
    findings: List[Finding] = []

    def report(node: ast.AST, message: str) -> None:
        findings.append(
            get_rule("DT203").finding(
                message,
                path=path,
                line=node.lineno,
                col=node.col_offset + 1,
                symbol=cb.symbol,
            )
        )

    # -- unordered sources ---------------------------------------------
    # Names bound to set/dict values in this function, plus the monoid
    # aggregate parameters when identity() showed the aggregate is a
    # dict/set (their iteration order encodes arrival/hash order).
    unordered: Set[str] = set()
    if agg_kind in ("dict", "set") and cb.kind in (
        astutils.KEYED_UNORDERED, astutils.SLIDING
    ):
        if cb.name in ("combine",):
            unordered |= set(cb.params[1:])
        elif cb.name == "update_state" and cb.value:
            unordered.add(cb.value)  # the agg argument
        elif cb.name == "finish" and cb.state:
            unordered.add(cb.state)  # the window aggregate
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                kind = container_kind(node.value)
                if kind in ("dict", "set"):
                    unordered.add(target.id)

    # -- taint propagation ---------------------------------------------
    tainted: Set[str] = set()

    def iter_is_unordered(expr: ast.AST) -> bool:
        # unwrap enumerate/list/tuple/iter/reversed — they preserve order
        while isinstance(expr, ast.Call) and call_name(expr) in (
            "enumerate", "list", "tuple", "iter", "reversed",
        ):
            if not expr.args:
                return False
            expr = expr.args[0]
        if is_sanitizer_call(expr):
            # sorted(...) / set(...)? set(...) *creates* a set, but
            # iterating it directly is a hash-order iteration:
            if isinstance(expr, ast.Call) and call_name(expr) in (
                "set", "frozenset",
            ):
                return True
            return False
        if isinstance(expr, (ast.Set, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in unordered or expr.id in tainted
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr in ("keys", "values", "items"):
                base = expr.func.value
                return isinstance(base, ast.Name) and (
                    base.id in unordered or base.id in tainted
                )
        return False

    def order_freezing(node: ast.AST) -> Set[str]:
        """Unordered names whose iteration order ``node`` records.

        ``list(agg)`` / ``tuple(agg)`` freeze the hash/insertion order
        of an unordered value into a sequence; a list comprehension over
        one does the same.  (``sorted``/``len``/``frozenset``-style
        sanitizers are handled by ``names_in`` and never reach here.)
        """
        out: Set[str] = set()
        for sub in ast.walk(node):
            if is_sanitizer_call(sub):
                continue
            arg = None
            if (
                isinstance(sub, ast.Call)
                and call_name(sub) in ("list", "tuple")
                and sub.args
            ):
                arg = sub.args[0]
            elif isinstance(sub, ast.ListComp) and sub.generators:
                arg = sub.generators[0].iter
            if isinstance(arg, ast.Name) and (
                arg.id in unordered or arg.id in tainted
            ):
                out.add(arg.id)
        return out

    def target_names(t: ast.AST) -> List[str]:
        if isinstance(t, ast.Name):
            return [t.id]
        if isinstance(t, (ast.Tuple, ast.List)):
            out: List[str] = []
            for elt in t.elts:
                out.extend(target_names(elt))
            return out
        return []

    emit_name = cb.emit

    def scan(node: ast.AST, loop_tainted: bool) -> None:
        if isinstance(node, ast.For):
            body_tainted = loop_tainted
            if iter_is_unordered(node.iter):
                body_tainted = True
                for name in target_names(node.target):
                    tainted.add(name)
            for child in node.body + node.orelse:
                scan(child, body_tainted)
            return
        if isinstance(node, ast.Assign):
            value_names = names_in(node.value)
            if (value_names & tainted) or order_freezing(node.value):
                for t in node.targets:
                    for name in target_names(t):
                        tainted.add(name)
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            if loop_tainted or (names_in(node.value) & tainted):
                tainted.add(node.target.id)
        if isinstance(node, ast.Call):
            # appending inside a hash/insertion-ordered loop records the
            # iteration order in the receiver, whatever is appended
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "append", "extend", "insert", "appendleft",
            ):
                recv = node.func.value
                if isinstance(recv, ast.Name):
                    if loop_tainted or (names_in(node) & tainted):
                        tainted.add(recv.id)
            # sinks: emit(...) with tainted arguments
            if (
                emit_name is not None
                and isinstance(node.func, ast.Name)
                and node.func.id == emit_name
            ):
                bad = set()
                for arg in node.args:
                    bad |= (names_in(arg) & tainted) | order_freezing(arg)
                if bad:
                    report(
                        node,
                        f"{cb.name}() emits a value derived from "
                        f"unordered iteration order "
                        f"({', '.join(sorted(bad))})",
                    )
        if isinstance(node, ast.Return) and node.value is not None:
            if cb.role == "pure":
                bad = (names_in(node.value) & tainted) | order_freezing(
                    node.value
                )
                if bad:
                    report(
                        node,
                        f"{cb.name}() returns a value recording "
                        f"unordered iteration order "
                        f"({', '.join(sorted(bad))})",
                    )
        for child in ast.iter_child_nodes(node):
            scan(child, loop_tainted)

    for stmt in fn.body:
        scan(stmt, False)
    return findings
