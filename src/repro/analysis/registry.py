"""The rule registry: one :class:`Rule` per stable finding code.

The registry is the single source of truth for the rule catalog —
``repro lint --explain DT203`` prints from here, the docs drift-check
test asserts every code here is documented in
``docs/static_analysis.md``, and rule modules pull severity/hint/clause
from here so a finding can never disagree with its catalog entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from textwrap import dedent, indent
from typing import Dict, List, Optional

from repro.analysis.findings import ERROR, WARNING, Finding


@dataclass(frozen=True)
class Rule:
    """Catalog entry for one finding code."""

    code: str
    title: str
    severity: str
    clause: str
    hint: str
    rationale: str
    example: str

    def finding(
        self,
        message: str,
        *,
        path: str = "",
        line: int = 0,
        col: int = 0,
        symbol: str = "",
        hint: Optional[str] = None,
        severity: Optional[str] = None,
    ) -> Finding:
        """Build a Finding for this rule, inheriting catalog metadata."""
        return Finding(
            code=self.code,
            message=message,
            path=path,
            line=line,
            col=col,
            symbol=symbol,
            severity=self.severity if severity is None else severity,
            hint=self.hint if hint is None else hint,
            clause=self.clause,
        )

    def explain(self) -> str:
        example = indent(dedent(self.example).strip("\n"), "    ")
        return dedent(
            f"""\
            {self.code}: {self.title}
            severity: {self.severity}
            enforces: {self.clause}

            {self.rationale}

            Example (triggers {self.code}):
            """
        ) + example + dedent(
            f"""

            Fix hint: {self.hint}
            Suppress (with a justification comment) via:
                ...offending line...  # repro: ignore[{self.code}] -- why it is safe
            """
        )


_RULES: List[Rule] = [
    # ------------------------------------------------------------------
    # DT0xx — analyzer meta
    # ------------------------------------------------------------------
    Rule(
        code="DT001",
        title="unused suppression",
        severity=WARNING,
        clause="analyzer hygiene (suppressions must suppress something)",
        hint="delete the stale `# repro: ignore[...]` comment",
        rationale=(
            "A `# repro: ignore[DTxxx]` comment that matches no finding is "
            "dead weight: either the bug it excused was fixed (delete the "
            "comment) or the code moved and the suppression now shadows a "
            "future real finding on the wrong line."
        ),
        example="    x = 1  # repro: ignore[DT203] -- nothing here iterates a set",
    ),
    Rule(
        code="DT002",
        title="file could not be parsed",
        severity=ERROR,
        clause="analyzer precondition",
        hint="fix the syntax error so the file can be analyzed",
        rationale=(
            "The analyzer works on the AST; a file that does not parse "
            "cannot be certified and is reported rather than silently "
            "skipped."
        ),
        example="    def on_item(self, key, value, emit)  # missing colon",
    ),
    # ------------------------------------------------------------------
    # DT1xx — purity of template callbacks
    # ------------------------------------------------------------------
    Rule(
        code="DT101",
        title="template callback writes operator instance state",
        severity=ERROR,
        clause="Theorem 4.2 purity: template callbacks must be pure functions of their arguments",
        hint="move the mutable state into the template's explicit state (init/update_state) so snapshots and parallel replicas see it",
        rationale=(
            "Table 1 templates thread *all* evolving state through explicit "
            "parameters (the monoid aggregate, the per-key state, the "
            "sliding window).  Writing `self.attr` inside on_item/combine/"
            "fold_in hides state from the runtime: it is not checkpointed "
            "by snapshot_state, not rolled back on recovery, and is "
            "duplicated per replica under Theorem 4.3 parallelization — "
            "each replica sees only its shard's history, so answers drift."
        ),
        example=(
            "    class Counter(OpStateless):\n"
            "        def on_item(self, key, value, emit):\n"
            "            self.total += value      # DT101\n"
            "            emit(key, self.total)"
        ),
    ),
    Rule(
        code="DT102",
        title="template callback uses global/nonlocal declarations",
        severity=ERROR,
        clause="Theorem 4.2 purity: no out-of-band state shared across items or replicas",
        hint="pass the value in via __init__ (read-only) or model it as template state",
        rationale=(
            "A `global`/`nonlocal` statement inside a template callback "
            "declares intent to rebind state that outlives the call.  Such "
            "state is shared across keys and replicas and invisible to "
            "checkpointing, so results depend on arrival order and on the "
            "parallelization chosen — exactly what data-trace types are "
            "supposed to rule out."
        ),
        example=(
            "    def on_item(self, key, value, emit):\n"
            "        global SEEN          # DT102\n"
            "        SEEN += 1"
        ),
    ),
    Rule(
        code="DT103",
        title="nondeterministic call in template callback",
        severity=ERROR,
        clause="Definition 3.5 consistency: output must be a function of the input data trace",
        hint="derive the value from the input (e.g. event timestamps), or seed an explicit RNG in __init__ and model its state",
        rationale=(
            "Calls like random.random(), time.time(), uuid.uuid4(), or id() "
            "make the operator's output depend on wall-clock, process "
            "identity, or RNG state rather than on the input trace.  Two "
            "runs over the same data trace then disagree, so no "
            "consistency argument (Definition 3.5) can hold, and recovery "
            "replay after a fault produces different answers than the "
            "original run."
        ),
        example=(
            "    def on_item(self, key, value, emit):\n"
            "        emit(key, (value, time.time()))   # DT103"
        ),
    ),
    Rule(
        code="DT104",
        title="template callback mutates module-level or closed-over mutable",
        severity=ERROR,
        clause="Theorem 4.2 purity: no out-of-band state shared across items or replicas",
        hint="make the shared object read-only, or model it as explicit template state",
        rationale=(
            "Appending to a module-level list or updating a closed-over "
            "dict is a write to state the runtime cannot see: it is shared "
            "across replicas, never checkpointed, and replayed twice after "
            "recovery.  Reading shared immutable configuration is fine; "
            "mutation is the hazard."
        ),
        example=(
            "    SEEN = []\n"
            "    class Tap(OpStateless):\n"
            "        def on_item(self, key, value, emit):\n"
            "            SEEN.append(value)    # DT104\n"
            "            emit(key, value)"
        ),
    ),
    Rule(
        code="DT105",
        title="pure template function mutates its argument",
        severity=WARNING,
        clause="Table 3 runtime contract: fold_in/combine/update_state arguments may be aliased",
        hint="build and return a new value instead of mutating the argument in place",
        rationale=(
            "The Table 3 runtime (and the batched kernels of the epoch "
            "engine) may pass the same aggregate object into combine or "
            "update_state more than once, and snapshot_state may hold a "
            "reference to it across a checkpoint.  In-place mutation of an "
            "argument then corrupts a value another code path still owns."
        ),
        example=(
            "    def combine(self, x, y):\n"
            "        x.update(y)      # DT105 (also DT204)\n"
            "        return x"
        ),
    ),
    # ------------------------------------------------------------------
    # DT2xx — commutativity and order-sensitivity
    # ------------------------------------------------------------------
    Rule(
        code="DT201",
        title="combine uses a non-commutative operation on its arguments",
        severity=ERROR,
        clause="Table 1 OpKeyedUnordered: (identity, combine) must form a commutative monoid",
        hint="use a commutative aggregate (sum/min/max/set union) or declare the input ordered and use OpKeyedOrdered",
        rationale=(
            "OpKeyedUnordered consumes U-typed (unordered) streams, so the "
            "runtime folds items in arrival order — which the type says is "
            "arbitrary.  Consistency (Theorem 4.2) therefore requires "
            "combine to be commutative and associative.  Subtraction, "
            "division, string/list concatenation and similar operations "
            "make the aggregate depend on arrival order, producing "
            "run-to-run nondeterminism that only shows up under shuffles."
        ),
        example=(
            "    def combine(self, x, y):\n"
            "        return x - y      # DT201: a-b != b-a"
        ),
    ),
    Rule(
        code="DT202",
        title="combine folds with reduce/accumulate over an ordered sequence",
        severity=WARNING,
        clause="Table 1 OpKeyedUnordered: combine must not depend on element order",
        hint="verify the folded operation is commutative+associative, or restructure as elementwise combine",
        rationale=(
            "functools.reduce and itertools.accumulate apply a binary "
            "function left-to-right; unless that inner function is itself "
            "commutative and associative, the result depends on the order "
            "of the sequence — which on a U-typed input is arrival order.  "
            "The static analyzer cannot see through the inner callable, so "
            "this is reported as a warning for dynamic confirmation "
            "(`repro lint --dynamic`)."
        ),
        example=(
            "    def combine(self, x, y):\n"
            "        return reduce(lambda a, b: a * 2 + b, [x, y])   # DT202"
        ),
    ),
    Rule(
        code="DT203",
        title="unordered-collection iteration order can flow to emitted output",
        severity=WARNING,
        clause="Definition 3.5 consistency: output must not depend on set/dict iteration order",
        hint="sort before iterating (sorted(...)), or emit an order-insensitive aggregate (len/sum/min/max/frozenset)",
        rationale=(
            "Iterating a set iterates in hash order, which varies across "
            "processes (PYTHONHASHSEED); iterating a dict iterates in "
            "insertion order, which on a U-typed stream is arrival order.  "
            "If the iteration order reaches emit() or a returned aggregate, "
            "output differs between runs or between the serial and "
            "parallelized deployments.  This class of bug is invisible to "
            "single-process dynamic validation (hash order is stable "
            "within one process), which is why it is checked statically."
        ),
        example=(
            "    def update_state(self, old, agg):\n"
            "        order = []\n"
            "        for tag in agg:          # agg is a dict aggregate\n"
            "            order.append(tag)    # DT203: insertion order = arrival order\n"
            "        return tuple(order)"
        ),
    ),
    Rule(
        code="DT204",
        title="combine merges dicts by insertion order",
        severity=WARNING,
        clause="Table 1 OpKeyedUnordered: combine must be commutative",
        hint="merge with an order-insensitive policy (e.g. min/max per key) or keep value sets and resolve deterministically",
        rationale=(
            "`{**x, **y}` and `d.update(y)` are last-writer-wins merges: "
            "on overlapping keys the result depends on which argument came "
            "second, and the merged dict's iteration order records arrival "
            "order.  Both break commutativity whenever key sets can "
            "overlap, which the analyzer cannot rule out statically."
        ),
        example=(
            "    def combine(self, x, y):\n"
            "        merged = dict(x)\n"
            "        merged.update(y)      # DT204: last writer wins\n"
            "        return merged"
        ),
    ),
    # ------------------------------------------------------------------
    # DT3xx — keyed-state locality and key preservation
    # ------------------------------------------------------------------
    Rule(
        code="DT301",
        title="keyed callback keeps per-key state on the operator instance",
        severity=ERROR,
        clause="Theorem 4.3 key-locality: all per-key state must live in the template's keyed state",
        hint="store through the template's state parameter so HASH parallelization keeps each key's state on one replica",
        rationale=(
            "Subscripting `self.something[...]` inside a keyed callback "
            "builds a private key->state table next to the one the "
            "template manages.  Under HASH parallelization each replica "
            "gets its own copy of that table; keys that hash to different "
            "replicas silently fork their state, and checkpoints miss it "
            "entirely."
        ),
        example=(
            "    def on_item(self, state, key, value, emit):\n"
            "        self._totals[key] = self._totals.get(key, 0) + value   # DT301\n"
            "        emit(key, self._totals[key])\n"
            "        return state"
        ),
    ),
    Rule(
        code="DT302",
        title="keyed state subscripted by something other than the event key",
        severity=WARNING,
        clause="Theorem 4.3 key-locality: a keyed operator may only touch the current key's state",
        hint="restructure so each key's computation reads only its own state (constant field indices are fine)",
        rationale=(
            "Indexing the state parameter with a variable that is not the "
            "current event's key reads (or writes) *another* key's state.  "
            "That cross-key dependency is exactly what the HASH "
            "parallelization of Theorem 4.3 assumes away: after splitting, "
            "the other key's state may live on a different replica and the "
            "read silently sees a stale or empty value."
        ),
        example=(
            "    def on_item(self, state, key, value, emit):\n"
            "        other = value[0]\n"
            "        state[other] += 1      # DT302: not the event key\n"
            "        return state"
        ),
    ),
    Rule(
        code="DT303",
        title="OpKeyedOrdered emits under a different key than the input",
        severity=ERROR,
        clause="Table 1 OpKeyedOrdered: key-preserving emissions keep the O output type sound",
        hint="emit(key, ...) with the input key; to re-key, follow with a stateless rekey stage and a SORT",
        rationale=(
            "OpKeyedOrdered's output is O-typed because per-key input "
            "order is preserved per-key on output.  Emitting under a "
            "different key forges ordering evidence: the downstream "
            "consumer believes the new key's items arrive in order, but "
            "they arrive in the *input* key's order.  The runtime key "
            "guard raises at execution time; this rule catches it at lint "
            "time."
        ),
        example=(
            "    def on_item(self, state, key, value, emit):\n"
            "        emit(value[0], value[1])    # DT303: value[0] is not the input key\n"
            "        return state"
        ),
    ),
    # ------------------------------------------------------------------
    # DT4xx — snapshot aliasing and recovery
    # ------------------------------------------------------------------
    Rule(
        code="DT401",
        title="snapshot/copy/restore returns the live state object",
        severity=ERROR,
        clause="epoch-aligned checkpointing: snapshots must be independent of live state",
        hint="return a copy (copy.deepcopy, or an element-wise rebuild) instead of the argument itself",
        rationale=(
            "A checkpoint that aliases the live state is corrupted by the "
            "very next on_item: after a fault, recovery restores a state "
            "that already contains post-checkpoint effects, so replayed "
            "items are applied twice.  This is the exact bug class the "
            "recovery layer's snapshot round-trip tests exist for; "
            "returning the argument unchanged is its static signature."
        ),
        example=(
            "    def snapshot_state(self):\n"
            "        return self._state      # DT401: aliases live state"
        ),
    ),
    Rule(
        code="DT402",
        title="snapshot/copy returns a shallow copy of nested mutable state",
        severity=WARNING,
        clause="epoch-aligned checkpointing: snapshots must be independent of live state",
        hint="deep-copy, or suppress with a justification that every element is immutable/scalar",
        rationale=(
            "`list(state)`, `dict(state)`, `state.copy()` and friends copy "
            "one level: if the elements are themselves mutated in place "
            "(e.g. per-key lists), the checkpoint still aliases them and "
            "recovery replays against a future state.  When the elements "
            "are provably immutable (tuples, scalars) a shallow copy is a "
            "legitimate fast path — suppress with a comment saying so, as "
            "the built-in operators do."
        ),
        example=(
            "    def copy_state(self, state):\n"
            "        return list(state)     # DT402: elements may be shared"
        ),
    ),
    # ------------------------------------------------------------------
    # DT5xx — DAG-level rules
    # ------------------------------------------------------------------
    Rule(
        code="DT500",
        title="DAG fails data-trace type checking",
        severity=ERROR,
        clause="Section 4 typing rules for transduction DAGs",
        hint="fix the reported edge annotation (or insert a SORT to turn U into O)",
        rationale=(
            "typecheck_dag found a hard inconsistency: an operator demands "
            "an O-typed input on an edge that can only be U, or two "
            "annotations conflict.  This is the Section 2 bug made "
            "static — the DAG would compute arrival-order-dependent "
            "answers."
        ),
        example="    dag.connect(rr_split, ordered_op)   # O required, U provided",
    ),
    Rule(
        code="DT501",
        title="round-robin split upstream of an order-sensitive consumer",
        severity=ERROR,
        clause="Section 2 / Theorem 4.3: RR destroys per-key order; only HASH preserves it",
        hint="use a HASH splitter keyed like the consumer, or insert a SORT before the order-sensitive operator",
        rationale=(
            "Round-robin splitting interleaves each key's items across "
            "replicas, so even a later merge cannot recover per-key order. "
            "Any OpKeyedOrdered (or other O-input operator) downstream of "
            "an RR split without an intervening SORT consumes a stream "
            "whose order the type system can no longer guarantee — the "
            "motivating bug of the paper's Section 2."
        ),
        example=(
            "    split = dag.add_split(RoundRobin(), upstream=src)\n"
            "    dag.add_op(Cumulative(), upstream=[split])   # DT501: O input fed by RR"
        ),
    ),
    Rule(
        code="DT502",
        title="edge kind could not be inferred and defaults to U",
        severity=WARNING,
        clause="Section 4: every edge of a well-typed DAG carries a data-trace type",
        hint="annotate the edge (edge_types=[...]) or let a typed upstream determine it",
        rationale=(
            "When neither an annotation nor inference determines an edge's "
            "kind, typecheck_dag historically defaulted it to U.  The "
            "default is sound for U-consumers (O <= U subsumption) but it "
            "hides missing annotations: a later refactor that starts "
            "requiring order on that edge fails at runtime instead of at "
            "lint time.  `typecheck_dag(dag, strict=True)` turns these "
            "into hard errors."
        ),
        example="    dag.connect(a, b)    # no edge_types, no typed upstream: DT502",
    ),
    Rule(
        code="DT503",
        title="parallelization hint violates a Theorem 4.3 side condition",
        severity=ERROR,
        clause="Theorem 4.3: vertex parallelization requires a single consumer per parallelized vertex",
        hint="drop the parallelism hint on this vertex, or restructure so it has exactly one consumer",
        rationale=(
            "The Theorem 4.3 rewrite replaces a vertex with split -> "
            "replicas -> merge; with more than one consumer the merge "
            "cannot be placed without duplicating or re-routing edges, and "
            "the equality proof of the rewrite no longer applies.  "
            "plan_parallelism avoids such vertices; a hand-written hint on "
            "one is applied unchecked unless this rule gates it."
        ),
        example=(
            "    dag.vertices[op].parallelism = 4   # op feeds two sinks: DT503"
        ),
    ),
    # ------------------------------------------------------------------
    # DT9xx — dynamic witnesses
    # ------------------------------------------------------------------
    Rule(
        code="DT901",
        title="dynamic check: monoid laws fail on sampled aggregates",
        severity=ERROR,
        clause="Table 1 OpKeyedUnordered: (identity, combine) must form a commutative monoid",
        hint="fix combine/identity so x+y == y+x and identity is neutral (the witness shows a failing pair)",
        rationale=(
            "check_monoid_laws folds sampled event values through the "
            "operator's own fold_in/combine/identity and compares "
            "commuted and re-associated evaluations.  A failure is a "
            "concrete counterexample — not a heuristic — so it is always "
            "an error, and it confirms (or catches beyond) the static "
            "DT2xx heuristics."
        ),
        example="    combine(x, y) = x - y   ->  witness: combine(1,2) != combine(2,1)",
    ),
    Rule(
        code="DT902",
        title="dynamic check: output changes under Definition 3.5 block shuffles",
        severity=ERROR,
        clause="Definition 3.5: consistency under reordering within marker blocks",
        hint="remove the arrival-order dependence the witness demonstrates (or declare the input ordered)",
        rationale=(
            "check_consistency_on runs the operator over the same data "
            "trace with items shuffled within marker blocks — re-orderings "
            "the U type declares equivalent — and compares canonicalized "
            "outputs.  Any difference is a concrete consistency violation: "
            "the operator computes a function of the arrival sequence, not "
            "of the data trace."
        ),
        example="    emit(key, running_total)   # running order differs per shuffle",
    ),
    Rule(
        code="DT903",
        title="dynamic check could not run to completion",
        severity=WARNING,
        clause="dynamic validation precondition",
        hint="make the operator constructible with no arguments (or fix the crash the message reports)",
        rationale=(
            "`repro lint --dynamic` instantiates each template operator "
            "with no arguments and runs sampled checks.  Operators that "
            "need constructor arguments, or that crash on the sample "
            "stream, cannot be dynamically certified; the warning reports "
            "why so the gap is visible rather than silently skipped."
        ),
        example="    def __init__(self, models):   # needs an argument: DT903",
    ),
]

RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULES}


def get_rule(code: str) -> Rule:
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown rule code {code!r}; known codes: {', '.join(sorted(RULES))}"
        ) from None


def explain(code: str) -> str:
    """The `repro lint --explain CODE` text for one rule."""
    return get_rule(code).explain()


def all_codes() -> List[str]:
    return sorted(RULES)
