"""Discrete-event simulation of a topology on a cluster.

The engine executes *real* spout/bolt code, so outputs are genuine; only
time is simulated.  The model:

- every machine has ``cores`` cores; a core executes one tuple at a time;
- every task (component instance) is single-threaded: its tuples are
  processed serially in arrival order;
- processing a tuple costs ``framework_overhead + cpu_cost(component,
  event)`` seconds on a core;
- a tuple emitted at time *t* arrives at a consumer task at
  ``t + network_delay(src_machine, dst_machine)``, with seeded jitter on
  remote hops — jitter (plus shuffle-grouping randomness) is the source
  of interleaving nondeterminism, so a seed sweep explores the
  "arbitrary interleavings imposed by the network" of Section 2;
- spout tasks and capture sinks live on an unbounded implicit host by
  default (see :mod:`repro.storm.cluster`), so the 1..N worker machines
  measure the processing stages, as in the paper's experiments.

The simulation drains the workload to completion; *makespan* is the time
the last tuple finishes anywhere, and throughput = data tuples injected /
makespan.
"""

from __future__ import annotations

import copy
import heapq
from collections import deque
import itertools
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError, TaskFailureError
from repro.operators.base import Event, KV, Marker
from repro.operators.keyed_unordered import CombinedAgg
from repro.storm.batching import BatchingOptions
from repro.storm.cluster import Cluster, Placement, round_robin_placement
from repro.storm.costs import CostModel, UniformCostModel
from repro.storm.faults import FaultPlan, Resequencer
from repro.storm.groupings import Grouping
from repro.storm.recovery import CheckpointStore, RecoveryOptions, RecoveryStats
from repro.storm.topology import CaptureBolt, OutputCollector, Spout, Topology
from repro.obs import ObsContext
from repro.storm.tuples import StormTuple

#: Shared placeholder for runs that skip the per-member cost breakdown
#: (monitors-only instrumentation); never mutated.
_NO_BREAKDOWN: List[Tuple[str, float, int]] = []

TaskKey = Tuple[str, int]


@dataclass
class SimulationReport:
    """Outcome of one simulated run."""

    makespan: float
    input_data_tuples: int
    input_all_tuples: int
    processed: Dict[str, int]
    emitted: Dict[str, int]
    #: events delivered to each CaptureBolt component, in delivery order.
    sink_events: Dict[str, List[Event]]
    #: delivered (event, src_component, src_task) per sink, for provenance checks.
    sink_tuples: Dict[str, List[StormTuple]]
    #: simulated delivery time of each sink tuple (parallel to sink_events).
    sink_delivery_times: Dict[str, List[float]]
    #: per marker timestamp: simulated time of first spout emission.
    marker_emit_times: Dict[Any, float]
    #: per machine id: total core-seconds of CPU charged.
    machine_busy: Dict[int, float]
    #: cores per machine id (for utilization).
    machine_cores: Dict[int, int]
    #: fault-tolerance accounting (a :class:`~repro.storm.recovery.
    #: RecoveryStats`) when the run had faults or recovery enabled, else
    #: ``None``.  Under recovery the raw ``sink_events``/``sink_tuples``
    #: views are at-least-once (replayed epochs re-deliver); exactly-once
    #: reads go through the capture bolts' aligned/received records,
    #: which roll back with the checkpoints.
    recovery: Optional[Any] = None

    def throughput(self) -> float:
        """Input data tuples per simulated second.

        An empty run (nothing injected, zero makespan) reports 0.0; a
        run that injected data in zero simulated time reports ``inf``.
        """
        if self.makespan <= 0:
            return 0.0 if self.input_data_tuples == 0 else float("inf")
        return self.input_data_tuples / self.makespan

    def utilization(self, machine_id: int) -> float:
        """Fraction of the machine's core-time spent busy over the run."""
        if self.makespan <= 0:
            return 0.0
        capacity = self.machine_cores.get(machine_id, 0) * self.makespan
        if capacity <= 0:
            return 0.0
        return min(1.0, self.machine_busy.get(machine_id, 0.0) / capacity)

    def mean_utilization(self) -> float:
        """Average utilization over the worker machines."""
        machines = [m for m in self.machine_cores if m >= 0]
        if not machines:
            return 0.0
        return sum(self.utilization(m) for m in machines) / len(machines)

    def marker_latencies(self, sink: str) -> Dict[Any, float]:
        """End-to-end latency per marker timestamp at a sink.

        Latency of timestamp ``t`` = time of the *last* delivery of a
        ``t``-marker to the sink (when alignment completes) minus the
        time a spout first emitted it.  The marker traverses every stage,
        so this is the pipeline's synchronization latency.

        A sink with no deliveries — or a name that is not a capture sink
        at all — yields ``{}`` rather than raising."""
        if sink not in self.sink_delivery_times or sink not in self.sink_tuples:
            return {}
        last_arrival: Dict[Any, float] = {}
        for time, tup in zip(self.sink_delivery_times[sink], self.sink_tuples[sink]):
            if isinstance(tup.event, Marker):
                last_arrival[tup.event.timestamp] = time
        return {
            ts: arrival - self.marker_emit_times.get(ts, 0.0)
            for ts, arrival in last_arrival.items()
        }


class _TaskRuntime:
    """Mutable per-task execution state."""

    __slots__ = (
        "component",
        "index",
        "machine",
        "is_spout",
        "payload",
        "state",
        "free_at",
        "groupings",
        "collector",
        "queue",
        "running",
        "batchable",
        "combiners",
        "executions",
        "crash_after",
        "last_marker",
        "emit_log",
        "replay_cursor",
        "seal_on_marker",
    )

    def __init__(self, component, index, machine, is_spout, payload, state):
        self.component = component
        self.index = index
        self.machine = machine
        self.is_spout = is_spout
        self.payload = payload
        self.state = state
        self.free_at = 0.0
        # downstream component -> per-sender grouping instance
        self.groupings: Dict[str, Grouping] = {}
        self.collector = OutputCollector()
        # FIFO of pending (tuple, remote) deliveries; `running` marks an
        # in-flight execution (a scheduled "done" event).
        self.queue: "deque" = deque()
        self.running = False
        # Micro-batching eligibility and sender-side combiner buffers
        # (consumer -> {key: pending monoid aggregate}); populated by
        # Simulator.run when a BatchingOptions licenses them.
        self.batchable = False
        self.combiners: Dict[str, Dict[Any, Any]] = {}
        # Fault-tolerance bookkeeping (see repro.storm.recovery):
        # lifetime invocation count, pending injected crash threshold,
        # last sealed epoch timestamp, the spout's emission log for
        # replay, the replay cursor into it (None = live), and whether a
        # plain single-channel bolt snapshots on each executed marker.
        self.executions = 0
        # Pending injected-crash thresholds (lifetime execution counts,
        # ascending); each fires once and is consumed.
        self.crash_after: List[int] = []
        self.last_marker: Any = None
        self.emit_log: Optional[List[Event]] = None
        self.replay_cursor: Optional[int] = None
        self.seal_on_marker = False


class Simulator:
    """Run a topology on a simulated cluster.

    Parameters
    ----------
    topology: the component graph.
    cluster: worker machines (see :class:`Cluster`).
    cost_model: CPU/network costs; default charges 1 us per tuple.
    placement: task->machine map; defaults to round-robin with sources
        and capture sinks offloaded.
    seed: RNG seed controlling shuffle groupings and network jitter.
    max_events: safety valve against runaway topologies.
    obs: optional :class:`~repro.obs.ObsContext`; when enabled, the run
        records per-task busy spans, queue-depth timelines, marker-epoch
        alignment spans, and merge channel-skew gauges, and feeds any
        attached :class:`~repro.obs.monitor.MonitorHub` every delivery
        (type-conformance checks), source marker (frontier), and sealed
        epoch (watermarks).  Instrumentation is read-only — it never
        touches the RNG or the schedule, so an instrumented run produces
        bit-identical results.
    batching: optional :class:`~repro.storm.batching.BatchingOptions`
        enabling the epoch-batched fast paths — receiver-side
        micro-batching through ``execute_batch`` (one framework overhead
        per batch instead of per tuple) and sender-side per-key
        combiners on type-licensed ``U(K,V)`` hash edges.  Batching
        changes the simulated *schedule* (fewer invocations, fewer
        shipped tuples) but never the canonical sink traces; it is
        disabled automatically while ``obs`` is enabled, because the
        instrumentation records per-tuple executions.
    faults: optional :class:`~repro.storm.faults.FaultPlan` injecting
        task crashes, machine failures, and per-edge message
        drop/duplicate/reorder.  Fault randomness draws from the plan's
        own seeded RNG, never the scheduling RNG, so enabling the
        machinery without faults leaves the simulated schedule
        unchanged.  Without ``recovery``, a crash raises
        :class:`~repro.errors.TaskFailureError` and message faults are
        raw (drops lose tuples).
    recovery: optional :class:`~repro.storm.recovery.RecoveryOptions`
        enabling epoch-aligned checkpointing and global rollback
        recovery: tasks snapshot at marker boundaries, crashes restore
        the last complete epoch and replay sources from it, and links
        become exactly-once via per-link sequence numbers and
        resequencing (drops turn into retransmissions).  The recovered
        run's canonical sink traces are trace-equivalent to the
        fault-free run's.
    """

    def __init__(
        self,
        topology: Topology,
        cluster: Cluster,
        cost_model: Optional[CostModel] = None,
        placement: Optional[Placement] = None,
        seed: int = 0,
        max_events: int = 50_000_000,
        obs: Optional[ObsContext] = None,
        batching: Optional[BatchingOptions] = None,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryOptions] = None,
    ):
        topology.validate()
        self.topology = topology
        self.cluster = cluster
        self.cost_model = cost_model or UniformCostModel()
        self.placement = placement or round_robin_placement(topology, cluster)
        self.seed = seed
        self.max_events = max_events
        self.obs = obs
        self.batching = batching
        self.faults = faults
        self.recovery = recovery

    # ------------------------------------------------------------------

    def run(self) -> SimulationReport:
        rng = random.Random(self.seed)
        tasks: Dict[TaskKey, _TaskRuntime] = {}
        downstream: Dict[str, List[str]] = {}
        for spec in self.topology.components.values():
            downstream[spec.name] = [
                name for name, _ in self.topology.downstream_of(spec.name)
            ]

        # Instantiate tasks.
        for spec in self.topology.components.values():
            for index in range(spec.parallelism):
                machine = self.placement.machine_of(spec.name, index)
                if spec.is_spout:
                    spout: Spout = copy.copy(spec.payload)
                    spout.open(index, spec.parallelism)
                    runtime = _TaskRuntime(
                        spec.name, index, machine, True, spout, None
                    )
                else:
                    state = spec.payload.prepare(index, spec.parallelism)
                    runtime = _TaskRuntime(
                        spec.name, index, machine, False, spec.payload, state
                    )
                # Per-sender grouping instances for each downstream bolt.
                for consumer, grouping in self.topology.downstream_of(spec.name):
                    instance = copy.deepcopy(grouping)
                    instance.bind(random.Random(rng.randrange(2**62)))
                    runtime.groupings[consumer] = instance
                tasks[(spec.name, index)] = runtime

        # Fault tolerance: a dedicated RNG (never the scheduling RNG, so
        # a recovery-enabled fault-free run draws the identical schedule)
        # plus the per-edge fault table and per-task crash thresholds.
        faults = self.faults
        recovery = self.recovery
        recovery_on = recovery is not None
        ft_on = faults is not None or recovery_on
        fault_rng = random.Random(faults.seed) if faults is not None else None
        stats = RecoveryStats() if ft_on else None
        edge_faults_map: Dict[Tuple[str, str], Any] = {}
        if faults is not None:
            for crash in faults.crashes:
                crash_key = (crash.component, crash.task)
                if crash_key not in tasks:
                    raise SimulationError(
                        f"fault plan names unknown task {crash_key}"
                    )
                if crash.after_executions is not None:
                    thresholds = tasks[crash_key].crash_after
                    thresholds.append(crash.after_executions)
                    thresholds.sort()
            for spec in self.topology.components.values():
                for consumer, _ in self.topology.downstream_of(spec.name):
                    edge = faults.edge_faults(spec.name, consumer)
                    if edge is not None and edge.active():
                        edge_faults_map[(spec.name, consumer)] = edge

        # Observability: precompute everything so the disabled path pays
        # exactly one `if obs_on` check per instrumentation site.
        obs = self.obs
        obs_on = obs is not None and obs.enabled
        tracer = obs.tracer if obs_on else None
        metrics = obs.metrics if obs_on else None
        tracer_on = obs_on and tracer.enabled
        metrics_on = obs_on and metrics.enabled
        # Trace/measure instrumentation (spans, frontend stats, member
        # breakdowns) is skipped wholesale when only monitors are on, so
        # a monitors-only run pays just the edge/progress taps.
        tm_on = tracer_on or metrics_on
        monitors = obs.monitors if obs_on else None
        monitors_on = monitors is not None and monitors.enabled
        # Tasks whose payload exposes merge-frontend hooks (CompiledBolt,
        # AlignedCaptureBolt) get marker-epoch alignment tracing.
        frontend_hooks: Dict[TaskKey, Any] = {}
        if obs_on:
            for key, runtime in tasks.items():
                if hasattr(runtime.payload, "frontend_merge_state"):
                    frontend_hooks[key] = runtime.payload

        # Type-licensed batching (see repro.storm.batching).  Disabled
        # wholesale under observability: the instrumentation records and
        # type-checks per-tuple executions and deliveries, which the
        # batched schedule deliberately coalesces.
        batching = self.batching if not obs_on else None
        max_batch = batching.max_batch if batching is not None else 1
        combiner_plan = batching.combiners if batching is not None else {}
        if batching is not None:
            for runtime in tasks.values():
                if batching.micro_batch and hasattr(
                    runtime.payload, "execute_batch"
                ):
                    runtime.batchable = True
                for consumer in downstream[runtime.component]:
                    if (runtime.component, consumer) in combiner_plan:
                        runtime.combiners[consumer] = {}

        # Per-machine core availability heaps (source host unbounded).
        core_free: Dict[int, List[float]] = {}
        for machine in self.cluster.machines:
            core_free[machine.machine_id] = [0.0] * machine.cores

        heap: List[Tuple[float, int, str, TaskKey, Optional[StormTuple], bool]] = []
        seq = itertools.count()

        def schedule(time: float, action: str, task: TaskKey, tup=None,
                     remote: bool = False):
            heapq.heappush(heap, (time, next(seq), action, task, tup, remote))

        # Time-triggered faults enter the heap as their own actions
        # (handled before task dispatch — a machine fault has no task).
        if faults is not None:
            for crash in faults.crashes:
                if crash.at_time is not None:
                    schedule(
                        crash.at_time, "crash", (crash.component, crash.task)
                    )
            for machine_fault in faults.machine_faults:
                schedule(
                    machine_fault.at_time, "machine-fault", None,
                    tup=machine_fault,
                )

        # Epoch-aligned checkpointing: epoch timestamps are indexed in
        # marker order as spouts first emit them; a snapshot epoch is
        # complete once every task has contributed its state at that
        # marker boundary.
        epoch_index: Dict[Any, int] = {}
        ck_every = recovery.checkpoint_every if recovery_on else 1
        store = (
            CheckpointStore(len(tasks), index_of=epoch_index.__getitem__)
            if recovery_on else None
        )

        def checkpoint_epoch(ts: Any) -> bool:
            index = epoch_index.get(ts)
            return index is not None and (index + 1) % ck_every == 0

        def record_snapshot(key: TaskKey, ts: Any, snapshot: Any) -> None:
            completed = store.add(ts, key, snapshot)
            stats.checkpoints_taken += 1
            if completed:
                stats.complete_epochs = epoch_index[ts] + 1
            if metrics_on:
                metrics.counter(
                    "checkpoints_taken", component=key[0]
                ).inc()

        def make_seal_cb(key: TaskKey, runtime: "_TaskRuntime"):
            """The epoch-seal callback armed on checkpointable bolts."""

            def on_seal(ts: Any) -> None:
                runtime.last_marker = ts
                if checkpoint_epoch(ts):
                    record_snapshot(
                        key, ts, runtime.payload.snapshot_state(runtime.state)
                    )

            return on_seal

        if recovery_on:
            for key, runtime in tasks.items():
                if runtime.is_spout:
                    runtime.emit_log = []
                    continue
                payload = runtime.payload
                if hasattr(payload, "arm_seal_hook"):
                    payload.arm_seal_hook(
                        runtime.state, make_seal_cb(key, runtime)
                    )
                    continue
                spec = self.topology.components[runtime.component]
                n_channels = sum(
                    self.topology.components[upstream].parallelism
                    for upstream in spec.inputs
                )
                if n_channels > 1:
                    raise SimulationError(
                        "recovery needs aligned epoch snapshots, but plain "
                        f"bolt {runtime.component!r} merges {n_channels} "
                        "upstream task channels without a merge frontend; "
                        "use a compiled topology or AlignedCaptureBolt"
                    )
                if isinstance(payload, CaptureBolt) and spec.parallelism > 1:
                    raise SimulationError(
                        f"recovery requires CaptureBolt {runtime.component!r} "
                        "to run with parallelism 1 (its record is shared "
                        "across tasks); use AlignedCaptureBolt"
                    )
                runtime.seal_on_marker = True

        # Kick off all spout tasks at t=0.
        for key, runtime in tasks.items():
            if runtime.is_spout:
                schedule(0.0, "spout", key)

        processed: Dict[str, int] = {name: 0 for name in self.topology.components}
        emitted: Dict[str, int] = {name: 0 for name in self.topology.components}
        sink_deliveries: Dict[str, List[Tuple[float, int, StormTuple]]] = {
            spec.name: []
            for spec in self.topology.components.values()
            if isinstance(spec.payload, CaptureBolt)
        }
        marker_emit_times: Dict[Any, float] = {}
        machine_busy: Dict[int, float] = {}
        input_data = 0
        input_all = 0
        makespan = 0.0
        events_handled = 0

        # Per-link FIFO floors, reliability-layer sequence counters, and
        # receiver-side resequencers (the latter two only under recovery).
        link_clock: Dict[Tuple[TaskKey, TaskKey], float] = {}
        link_seq: Dict[Tuple[TaskKey, TaskKey], int] = {}
        link_reseq: Dict[Tuple[TaskKey, TaskKey], Resequencer] = {}

        def build_report() -> SimulationReport:
            """The run's report so far (also attached to failures)."""
            return SimulationReport(
                makespan=makespan,
                input_data_tuples=input_data,
                input_all_tuples=input_all,
                processed=processed,
                emitted=emitted,
                sink_events={
                    name: [t.event for _, _, t in deliveries]
                    for name, deliveries in sink_deliveries.items()
                },
                sink_tuples={
                    name: [t for _, _, t in deliveries]
                    for name, deliveries in sink_deliveries.items()
                },
                sink_delivery_times={
                    name: [time for time, _, _ in deliveries]
                    for name, deliveries in sink_deliveries.items()
                },
                marker_emit_times=marker_emit_times,
                machine_busy=machine_busy,
                machine_cores={
                    m.machine_id: m.cores for m in self.cluster.machines
                },
                recovery=stats,
            )

        def task_failure(
            runtime: _TaskRuntime, exc: BaseException
        ) -> TaskFailureError:
            """Wrap a task's exception with its failure context."""
            epoch = None
            payload = runtime.payload
            if hasattr(payload, "frontend_watermark"):
                try:
                    epoch = payload.frontend_watermark(runtime.state)
                except Exception:
                    epoch = None
            if epoch is None:
                epoch = runtime.last_marker
            return TaskFailureError(
                f"task {runtime.component}[{runtime.index}] on machine "
                f"{runtime.machine} failed (last sealed epoch {epoch!r}): "
                f"{exc}",
                component=runtime.component,
                task_index=runtime.index,
                machine=runtime.machine,
                epoch=epoch,
                report=build_report(),
            )

        def fail_task(task_key: TaskKey, now: float, detail: str) -> None:
            """An injected task crash: recover, or surface with context."""
            runtime = tasks[task_key]
            if not recovery_on:
                raise task_failure(runtime, RuntimeError(detail))
            recover_all(now, detail)

        def recover_all(now: float, detail: str) -> None:
            """Global rollback to the last complete epoch snapshot.

            Every task restores its checkpoint (or re-prepares, if the
            restored epoch predates its first snapshot), all in-flight
            messages are discarded, the per-link reliability state is
            reset (numbering restarts per incarnation — consistent,
            because *all* state rolls back together), and spouts replay
            their emission logs from the snapshot's boundary.
            """
            nonlocal heap
            stats.recoveries += 1
            if stats.recoveries > recovery.max_recoveries:
                raise TaskFailureError(
                    f"gave up after {recovery.max_recoveries} recoveries "
                    f"(last cause: {detail})",
                    report=build_report(),
                )
            latest = store.latest()
            epoch, snapshots = latest if latest is not None else (None, {})
            stats.last_restored_epoch = epoch
            # Bank duplicate counts before the resequencers reset.
            for resequencer in link_reseq.values():
                stats.duplicates_filtered += resequencer.duplicates
            link_reseq.clear()
            link_seq.clear()
            link_clock.clear()
            # Purge in-flight traffic and stale task wakeups; injected
            # future faults stay armed.
            heap = [e for e in heap if e[2] in ("crash", "machine-fault")]
            heapq.heapify(heap)
            store.drop_after(epoch)
            restart = now + recovery.restart_delay
            for key, runtime in tasks.items():
                runtime.queue.clear()
                runtime.running = False
                runtime.collector.drain()
                for pending in runtime.combiners.values():
                    pending.clear()
                runtime.free_at = restart
                runtime.last_marker = epoch
                snapshot = snapshots.get(key)
                if runtime.is_spout:
                    runtime.replay_cursor = (
                        snapshot["log_pos"] if snapshot is not None else 0
                    )
                    schedule(restart, "spout", key)
                    continue
                payload = runtime.payload
                if snapshot is not None:
                    runtime.state = payload.restore_state(snapshot)
                else:
                    spec = self.topology.components[runtime.component]
                    runtime.state = payload.prepare(
                        runtime.index, spec.parallelism
                    )
                if hasattr(payload, "arm_seal_hook"):
                    payload.arm_seal_hook(
                        runtime.state, make_seal_cb(key, runtime)
                    )
            if monitors_on:
                monitors.on_rollback(epoch, now)
            if metrics_on:
                metrics.counter("recoveries").inc()
                metrics.histogram("recovery_rollback_seconds").observe(
                    max(0.0, now - marker_emit_times.get(epoch, now))
                )
            if tm_on:
                tracer.sample(
                    "recovery", "<coordinator>", 0, now, stats.recoveries
                )

        def handle_machine_fault(fault, now: float) -> None:
            """Crash every task on a machine; permanent faults also
            remove the machine and re-place its tasks on survivors."""
            if fault.permanent and fault.machine in core_free:
                core_free.pop(fault.machine)
                survivors = sorted(core_free)
                if not survivors:
                    raise SimulationError(
                        "machine fault left no worker machines"
                    )
                displaced = 0
                for runtime in tasks.values():
                    if runtime.machine == fault.machine:
                        runtime.machine = survivors[
                            displaced % len(survivors)
                        ]
                        displaced += 1
            if not recovery_on:
                raise TaskFailureError(
                    f"machine {fault.machine} failed at t={now:.6f}",
                    machine=fault.machine,
                    report=build_report(),
                )
            recover_all(now, f"machine {fault.machine} fault")

        def begin_processing(runtime: _TaskRuntime, ready_time: float) -> float:
            """Account core + task availability; return the start time.

            Used by the spout path, whose emissions are self-paced (the
            ready time *is* when the task wants the core, so reserving
            at pop time is accurate)."""
            start = max(ready_time, runtime.free_at)
            cores = core_free.get(runtime.machine)
            if cores is not None:
                earliest = heapq.heappop(cores)
                start = max(start, earliest)
            return start

        def finish_processing(runtime: _TaskRuntime, finish: float) -> None:
            runtime.free_at = finish
            cores = core_free.get(runtime.machine)
            if cores is not None:
                heapq.heappush(cores, finish)

        def execution_cost(runtime: _TaskRuntime, tup: StormTuple, remote: bool) -> float:
            cost = self.cost_model.framework_overhead
            if remote:
                cost += self.cost_model.remote_cpu
            payload = runtime.payload
            if hasattr(payload, "cost_events"):
                # Compiled bolts report per-vertex work, so cardinality
                # changes inside a fused chain are charged faithfully.
                cost += self.cost_model.glue_cost(runtime.component, tup.event)
                for vertex, events in payload.cost_events(runtime.state):
                    for event in events:
                        cost += self.cost_model.vertex_cost(
                            vertex, event, runtime.index
                        )
            else:
                cost += self.cost_model.cpu_cost(
                    runtime.component, tup.event, runtime.index
                )
            return cost

        def execution_cost_detailed(
            runtime: _TaskRuntime, tup: StormTuple, remote: bool,
            breakdown: List[Tuple[str, float, int]],
        ) -> float:
            """`execution_cost` with a per-member cost breakdown.

            Kept separate so the uninstrumented hot path stays exactly
            as cheap as before.  ``breakdown`` receives
            ``(member label, cost seconds, events consumed)`` rows."""
            cost = self.cost_model.framework_overhead
            if remote:
                cost += self.cost_model.remote_cpu
            payload = runtime.payload
            if hasattr(payload, "cost_events"):
                glue = self.cost_model.glue_cost(runtime.component, tup.event)
                cost += glue
                breakdown.append(("glue", glue, 1))
                for vertex, events in payload.cost_events(runtime.state):
                    vertex_total = 0.0
                    for event in events:
                        vertex_total += self.cost_model.vertex_cost(
                            vertex, event, runtime.index
                        )
                    cost += vertex_total
                    breakdown.append((vertex, vertex_total, len(events)))
            else:
                cpu = self.cost_model.cpu_cost(
                    runtime.component, tup.event, runtime.index
                )
                cost += cpu
                breakdown.append((runtime.component, cpu, 1))
            return cost

        def execution_cost_batch(
            runtime: _TaskRuntime, batch: List[Tuple[StormTuple, bool]]
        ) -> float:
            """Cost of one micro-batch execution.

            The per-invocation framework overhead is paid once for the
            whole batch — that is the entire point of micro-batching —
            while the per-tuple charges (remote deserialization, glue,
            per-vertex CPU) are identical to the serial path, so the
            simulated speedup comes only from amortized overhead, never
            from dropped work."""
            cost = self.cost_model.framework_overhead
            payload = runtime.payload
            if hasattr(payload, "cost_events"):
                for tup, was_remote in batch:
                    if was_remote:
                        cost += self.cost_model.remote_cpu
                    cost += self.cost_model.glue_cost(
                        runtime.component, tup.event
                    )
                for vertex, events in payload.cost_events(runtime.state):
                    for event in events:
                        cost += self.cost_model.vertex_cost(
                            vertex, event, runtime.index
                        )
            else:
                for tup, was_remote in batch:
                    if was_remote:
                        cost += self.cost_model.remote_cpu
                    cost += self.cost_model.cpu_cost(
                        runtime.component, tup.event, runtime.index
                    )
            return cost

        def record_execution(
            runtime: _TaskRuntime, tup: StormTuple, start: float,
            finish: float, cost: float,
            breakdown: List[Tuple[str, float, int]], fanout: int,
            hooks: Any, pre_markers: Optional[int],
        ) -> None:
            """Trace/measure one bolt execution (instrumented runs only)."""
            comp, idx = runtime.component, runtime.index
            if tm_on:
                tracer.sample(
                    "queue_depth", comp, idx, start, len(runtime.queue)
                )
                tracer.exec_span(
                    comp, idx, runtime.machine, start, finish,
                    {"event": type(tup.event).__name__, "fanout": fanout},
                )
                if metrics_on:
                    metrics.counter("tuples_processed", component=comp).inc()
                    metrics.counter(
                        "task_busy_seconds", component=comp, task=idx
                    ).inc(cost)
                    metrics.counter("emit_fanout", component=comp).inc(fanout)
                # Per-fused-member sub-spans tile the execution interval in
                # chain order (glue first), so chrome://tracing shows where
                # inside the chain the time went.
                if len(breakdown) > 1:
                    cursor = start
                    for vertex, vertex_cost, n_events in breakdown:
                        tracer.member_span(
                            comp, idx, runtime.machine, vertex,
                            cursor, cursor + vertex_cost, n_events,
                        )
                        cursor += vertex_cost
                        if metrics_on and vertex != "glue":
                            metrics.counter(
                                "member_events", component=comp, vertex=vertex
                            ).inc(n_events)
                            metrics.counter(
                                "member_cpu_seconds", component=comp,
                                vertex=vertex,
                            ).inc(vertex_cost)
            if hooks is None:
                return
            # Marker-epoch alignment: if this execution raised the merge
            # frontend's emitted-marker count, the delivered marker was
            # the laggard completing its epoch — close the epoch span.
            merge_state = hooks.frontend_merge_state(runtime.state)
            sealed = (
                pre_markers is not None
                and merge_state.emitted_markers > pre_markers
                and isinstance(tup.event, Marker)
            )
            if sealed and monitors_on:
                monitors.on_epoch_sealed(comp, idx, tup.event.timestamp, finish)
            if not tm_on:
                return
            if sealed:
                stats = hooks.frontend_stats(runtime.state)
                wait = tracer.epoch_release(
                    comp, idx, tup.event.timestamp, finish,
                    {"buffered_after": stats["buffered_tuples"]},
                )
                if metrics_on:
                    metrics.counter(
                        "epochs_aligned", component=comp, task=idx
                    ).inc(merge_state.emitted_markers - pre_markers)
                    if wait is not None:
                        metrics.histogram(
                            "epoch_wait_seconds", component=comp
                        ).observe(wait)
            else:
                stats = hooks.frontend_stats(runtime.state)
            if metrics_on:
                skew_gauge = metrics.gauge("merge_skew", component=comp, task=idx)
                skew_gauge.set_max(
                    stats["skew"],
                    note=str(stats["laggard"])
                    if stats["laggard"] is not None else None,
                )
                buffered = stats["buffered_tuples"]
                buffered_gauge = metrics.gauge(
                    "merge_buffered_tuples", component=comp, task=idx
                )
                new_peak = buffered > 0 and (
                    buffered_gauge.max is None or buffered > buffered_gauge.max
                )
                buffered_gauge.set_max(buffered)
                if new_peak:
                    # Sizing walks every buffered event, so only do it
                    # when the buffer hits a new high-water mark.
                    metrics.gauge(
                        "merge_buffered_bytes", component=comp, task=idx
                    ).set_max(
                        hooks.frontend_stats(runtime.state, with_bytes=True)[
                            "buffered_bytes"
                        ]
                    )

        def maybe_start(runtime: _TaskRuntime, now: float) -> None:
            """Begin the task's next queued tuple if it is idle.

            The core is reserved only when the task actually starts — a
            task waiting on its own serial stream must not hold cores
            hostage (that would serialize co-located pipeline stages)."""
            nonlocal makespan
            if runtime.running or not runtime.queue:
                return
            if ft_on:
                runtime.executions += 1
                if (
                    runtime.crash_after
                    and runtime.executions > runtime.crash_after[0]
                ):
                    runtime.crash_after.pop(0)  # each threshold fires once
                    fail_task((runtime.component, runtime.index), now,
                              "injected crash")
                    return
            if runtime.batchable:
                start_batch(runtime, now)
                return
            tup, was_remote = runtime.queue.popleft()
            start = now
            cores = core_free.get(runtime.machine)
            if cores is not None:
                earliest = heapq.heappop(cores)
                start = max(start, earliest)
            if obs_on:
                hooks = frontend_hooks.get((runtime.component, runtime.index))
                pre_markers = (
                    hooks.frontend_merge_state(runtime.state).emitted_markers
                    if hooks is not None else None
                )
            try:
                runtime.payload.execute(runtime.state, tup, runtime.collector)
            except Exception as exc:
                if cores is not None:
                    heapq.heappush(cores, start)
                runtime.collector.drain()
                if recovery_on:
                    recover_all(now, f"operator exception: {exc}")
                    return
                raise task_failure(runtime, exc) from exc
            outputs = runtime.collector.drain()
            if (
                recovery_on
                and runtime.seal_on_marker
                and isinstance(tup.event, Marker)
            ):
                # Plain single-channel bolt: every executed marker seals
                # an epoch (there is nothing to align).
                sealed_ts = tup.event.timestamp
                runtime.last_marker = sealed_ts
                if checkpoint_epoch(sealed_ts):
                    record_snapshot(
                        (runtime.component, runtime.index), sealed_ts,
                        runtime.payload.snapshot_state(runtime.state),
                    )
            if tm_on:
                breakdown: List[Tuple[str, float, int]] = []
                cost = execution_cost_detailed(runtime, tup, was_remote, breakdown)
            else:
                breakdown = _NO_BREAKDOWN
                cost = execution_cost(runtime, tup, was_remote)
            finish = start + cost
            machine_busy[runtime.machine] = (
                machine_busy.get(runtime.machine, 0.0) + cost
            )
            if cores is not None:
                heapq.heappush(cores, finish)
            runtime.free_at = finish
            runtime.running = True
            makespan = max(makespan, finish)
            processed[runtime.component] += 1
            if obs_on:
                record_execution(
                    runtime, tup, start, finish, cost, breakdown,
                    len(outputs), hooks, pre_markers,
                )
            route(runtime, outputs, finish)
            schedule(finish, "done", (runtime.component, runtime.index))

        def start_batch(runtime: _TaskRuntime, now: float) -> None:
            """Drain one epoch-capped micro-batch and execute it at once.

            The batch stops after the first marker (epoch granularity),
            so marker alignment is timed exactly as in the serial
            engine, and at ``max_batch`` tuples, so one deep queue
            cannot monopolize a core arbitrarily long."""
            nonlocal makespan
            queue = runtime.queue
            batch: List[Tuple[StormTuple, bool]] = []
            while queue and len(batch) < max_batch:
                entry = queue.popleft()
                batch.append(entry)
                if isinstance(entry[0].event, Marker):
                    break
            start = now
            cores = core_free.get(runtime.machine)
            if cores is not None:
                earliest = heapq.heappop(cores)
                start = max(start, earliest)
            try:
                runtime.payload.execute_batch(
                    runtime.state, [tup for tup, _ in batch], runtime.collector
                )
            except Exception as exc:
                if cores is not None:
                    heapq.heappush(cores, start)
                runtime.collector.drain()
                if recovery_on:
                    recover_all(now, f"operator exception: {exc}")
                    return
                raise task_failure(runtime, exc) from exc
            outputs = runtime.collector.drain()
            cost = execution_cost_batch(runtime, batch)
            finish = start + cost
            machine_busy[runtime.machine] = (
                machine_busy.get(runtime.machine, 0.0) + cost
            )
            if cores is not None:
                heapq.heappush(cores, finish)
            runtime.free_at = finish
            runtime.running = True
            makespan = max(makespan, finish)
            processed[runtime.component] += len(batch)
            route(runtime, outputs, finish)
            schedule(finish, "done", (runtime.component, runtime.index))

        # FIFO per link: Storm guarantees in-order delivery between a fixed
        # producer task and consumer task; jittered delays must never
        # reorder tuples on the same link.  (link_clock lives next to the
        # reliability-layer maps above so rollback can reset all three.)

        def send(
            runtime: _TaskRuntime, tup: StormTuple, consumer: str, at: float
        ) -> None:
            """Ship one tuple to every selected task of ``consumer``.

            Under recovery every transmission is numbered per link and
            delivered through the receiver's resequencer ("rdeliver"):
            the link is at-least-once, so an injected drop becomes a
            late retransmission, a duplicate is filtered on arrival, and
            a reorder (which deliberately bypasses the FIFO floor) is
            buffered until the gap fills.  Without recovery the faults
            are raw — drops lose the tuple outright.
            """
            grouping = runtime.groupings[consumer]
            n_tasks = self.topology.components[consumer].parallelism
            src_key = (runtime.component, runtime.index)
            edge = (
                edge_faults_map.get((runtime.component, consumer))
                if edge_faults_map else None
            )
            for target in grouping.select(tup.event, n_tasks):
                dst_key = (consumer, target)
                dst = tasks[dst_key]
                delay = self.cost_model.network_delay(
                    runtime.machine, dst.machine, rng
                )
                arrival = at + delay
                link = (src_key, dst_key)
                floor = link_clock.get(link, 0.0)
                arrival = max(arrival, floor)
                link_clock[link] = arrival
                remote = runtime.machine != dst.machine
                if recovery_on and edge is not None:
                    # Only fault-injected links pay for the reliability
                    # layer (numbering + receiver-side resequencing).  A
                    # healthy link is already exactly-once: rollback
                    # purges everything in flight and the sources replay
                    # from the checkpoint boundary, so sequence-number
                    # dedup has nothing to catch there.
                    seq_no = link_seq.get(link, 0)
                    link_seq[link] = seq_no + 1
                    actual = arrival
                    if edge is not None:
                        if edge.drop:
                            retransmits = 0
                            while (
                                retransmits < edge.max_retransmits
                                and fault_rng.random() < edge.drop
                            ):
                                retransmits += 1
                            if retransmits:
                                actual += (
                                    retransmits * recovery.retransmit_timeout
                                )
                                stats.retransmissions += retransmits
                        if edge.reorder and fault_rng.random() < edge.reorder:
                            actual += fault_rng.random() * edge.reorder_delay
                            stats.reordered += 1
                        if (
                            edge.duplicate
                            and fault_rng.random() < edge.duplicate
                        ):
                            schedule(
                                actual
                                + fault_rng.random() * edge.reorder_delay,
                                "rdeliver", dst_key, (seq_no, tup),
                                remote=remote,
                            )
                    schedule(
                        actual, "rdeliver", dst_key, (seq_no, tup),
                        remote=remote,
                    )
                    continue
                if edge is not None and not isinstance(tup.event, Marker):
                    # Raw mode perturbs only data tuples: a lost or
                    # duplicated marker kills alignment outright rather
                    # than corrupting output, and surviving marker loss
                    # is exactly what the reliability layer above is
                    # for.  (Under recovery, markers are numbered and
                    # faulted like everything else.)
                    if edge.drop and fault_rng.random() < edge.drop:
                        continue  # raw mode: the tuple is simply lost
                    if edge.reorder and fault_rng.random() < edge.reorder:
                        arrival += fault_rng.random() * edge.reorder_delay
                        stats.reordered += 1
                    if edge.duplicate and fault_rng.random() < edge.duplicate:
                        schedule(
                            arrival + fault_rng.random() * edge.reorder_delay,
                            "deliver", dst_key, tup, remote=remote,
                        )
                schedule(arrival, "deliver", dst_key, tup, remote=remote)

        def route(runtime: _TaskRuntime, events: List[Event], at: float) -> None:
            for event in events:
                emitted[runtime.component] += 1
                tup = StormTuple(event, runtime.component, runtime.index)
                for consumer in downstream[runtime.component]:
                    pending = runtime.combiners.get(consumer)
                    if pending is not None:
                        if isinstance(event, KV):
                            # Fold instead of shipping: the U(K,V) edge
                            # type makes between-marker items mutually
                            # independent, and the consumer's head
                            # operator folds them through a commutative
                            # monoid — so one pre-combined aggregate per
                            # key per epoch denotes the same trace.
                            head = combiner_plan[(runtime.component, consumer)]
                            folded = head.fold_in(event.key, event.value)
                            if event.key in pending:
                                pending[event.key] = head.combine(
                                    pending[event.key], folded
                                )
                            else:
                                pending[event.key] = folded
                            continue
                        if isinstance(event, Marker) and pending:
                            # Flush the epoch's aggregates ahead of the
                            # marker; link FIFO keeps them in its block.
                            for key, agg in pending.items():
                                send(
                                    runtime,
                                    StormTuple(
                                        KV(key, CombinedAgg(agg)),
                                        runtime.component,
                                        runtime.index,
                                    ),
                                    consumer,
                                    at,
                                )
                            pending.clear()
                    send(runtime, tup, consumer, at)

        def deliver_one(
            task_key: TaskKey, runtime: _TaskRuntime, tup: StormTuple,
            remote: bool, time_now: float,
        ) -> None:
            """Hand one arrived tuple to its task (queue + taps)."""
            if runtime.component in sink_deliveries:
                sink_deliveries[runtime.component].append(
                    (time_now, runtime.index, tup)
                )
            runtime.queue.append((tup, remote))
            if obs_on:
                depth = len(runtime.queue)
                if monitors_on:
                    monitors.on_delivery(
                        runtime.component, runtime.index, tup, time_now,
                        depth,
                    )
                if tm_on:
                    tracer.sample(
                        "queue_depth", runtime.component, runtime.index,
                        time_now, depth,
                    )
                    if metrics_on:
                        metrics.gauge(
                            "queue_depth", component=runtime.component,
                            task=runtime.index,
                        ).set_max(depth)
                    if (
                        task_key in frontend_hooks
                        and isinstance(tup.event, Marker)
                    ):
                        tracer.epoch_arrival(
                            runtime.component, runtime.index,
                            runtime.machine, tup.event.timestamp, time_now,
                        )

        while heap:
            events_handled += 1
            if events_handled > self.max_events:
                raise SimulationError("simulation exceeded max_events; runaway?")
            time_now, _, action, task_key, tup, remote = heapq.heappop(heap)

            if action == "machine-fault":
                handle_machine_fault(tup, time_now)
                continue

            runtime = tasks[task_key]

            if action == "crash":
                fail_task(task_key, time_now, "injected crash")
                continue

            if action == "spout":
                if ft_on:
                    runtime.executions += 1
                    if (
                        runtime.crash_after
                        and runtime.executions > runtime.crash_after[0]
                    ):
                        runtime.crash_after.pop(0)
                        fail_task(task_key, time_now, "injected crash")
                        continue
                replayed = False
                if runtime.replay_cursor is not None:
                    if runtime.replay_cursor < len(runtime.emit_log):
                        # Replay one logged event per wakeup; skip the
                        # input counters and frontier taps — this
                        # traffic was already accounted the first time.
                        outputs = [runtime.emit_log[runtime.replay_cursor]]
                        runtime.replay_cursor += 1
                        alive = True
                        replayed = True
                        stats.replayed_events += 1
                    else:
                        runtime.replay_cursor = None  # caught up: go live
                if not replayed:
                    try:
                        alive = runtime.payload.next_tuple(runtime.collector)
                    except Exception as exc:
                        runtime.collector.drain()
                        if recovery_on:
                            recover_all(time_now, f"spout exception: {exc}")
                            continue
                        raise task_failure(runtime, exc) from exc
                    outputs = runtime.collector.drain()
                    if recovery_on and outputs:
                        runtime.emit_log.extend(outputs)
                cost = sum(
                    self.cost_model.spout_cost(runtime.component, e) for e in outputs
                )
                start = begin_processing(runtime, time_now)
                finish = start + cost
                finish_processing(runtime, finish)
                makespan = max(makespan, finish)
                if replayed:
                    for event in outputs:
                        if isinstance(event, Marker):
                            ts = event.timestamp
                            runtime.last_marker = ts
                            if checkpoint_epoch(ts):
                                record_snapshot(
                                    task_key, ts,
                                    {"log_pos": runtime.replay_cursor},
                                )
                else:
                    emitted_before = (
                        len(runtime.emit_log) - len(outputs)
                        if recovery_on else 0
                    )
                    for position, event in enumerate(outputs):
                        input_all += 1
                        if isinstance(event, KV):
                            input_data += 1
                        elif isinstance(event, Marker):
                            ts = event.timestamp
                            marker_emit_times.setdefault(ts, finish)
                            if monitors_on:
                                monitors.on_source_marker(
                                    runtime.component, ts, finish
                                )
                            if recovery_on:
                                if ts not in epoch_index:
                                    epoch_index[ts] = len(epoch_index)
                                runtime.last_marker = ts
                                if checkpoint_epoch(ts):
                                    record_snapshot(
                                        task_key, ts,
                                        {"log_pos":
                                         emitted_before + position + 1},
                                    )
                if tm_on and outputs:
                    tracer.exec_span(
                        runtime.component, runtime.index, runtime.machine,
                        start, finish, {"fanout": len(outputs)},
                    )
                    if metrics_on:
                        metrics.counter(
                            "spout_emitted", component=runtime.component
                        ).inc(len(outputs))
                route(runtime, outputs, finish)
                if alive:
                    schedule(finish, "spout", task_key)
                continue

            if action == "rdeliver":
                # Reliability layer: resequence, filter duplicates, then
                # deliver every released tuple in order.
                assert tup is not None
                seq_no, real_tup = tup
                link = (real_tup.channel(), task_key)
                resequencer = link_reseq.get(link)
                if resequencer is None:
                    resequencer = link_reseq[link] = Resequencer()
                for released_tup, released_remote in resequencer.offer(
                    seq_no, (real_tup, remote)
                ):
                    deliver_one(
                        task_key, runtime, released_tup, released_remote,
                        time_now,
                    )
            elif action == "deliver":
                assert tup is not None
                deliver_one(task_key, runtime, tup, remote, time_now)
            else:  # "done": the running execution finished
                runtime.running = False
            maybe_start(runtime, time_now)

        if obs_on:
            tracer.finalize(makespan)
            if monitors_on:
                monitors.close(makespan)
            if metrics_on:
                for machine in self.cluster.machines:
                    metrics.gauge(
                        "machine_busy_seconds", machine=machine.machine_id
                    ).set(machine_busy.get(machine.machine_id, 0.0))

        if recovery_on:
            for resequencer in link_reseq.values():
                stats.duplicates_filtered += resequencer.duplicates
                resequencer.duplicates = 0

        return build_report()
