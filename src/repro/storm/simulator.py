"""Discrete-event simulation of a topology on a cluster.

The engine executes *real* spout/bolt code, so outputs are genuine; only
time is simulated.  The model:

- every machine has ``cores`` cores; a core executes one tuple at a time;
- every task (component instance) is single-threaded: its tuples are
  processed serially in arrival order;
- processing a tuple costs ``framework_overhead + cpu_cost(component,
  event)`` seconds on a core;
- a tuple emitted at time *t* arrives at a consumer task at
  ``t + network_delay(src_machine, dst_machine)``, with seeded jitter on
  remote hops — jitter (plus shuffle-grouping randomness) is the source
  of interleaving nondeterminism, so a seed sweep explores the
  "arbitrary interleavings imposed by the network" of Section 2;
- spout tasks and capture sinks live on an unbounded implicit host by
  default (see :mod:`repro.storm.cluster`), so the 1..N worker machines
  measure the processing stages, as in the paper's experiments.

The simulation drains the workload to completion; *makespan* is the time
the last tuple finishes anywhere, and throughput = data tuples injected /
makespan.
"""

from __future__ import annotations

import copy
import heapq
from collections import deque
import itertools
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.operators.base import Event, KV, Marker
from repro.operators.keyed_unordered import CombinedAgg
from repro.storm.batching import BatchingOptions
from repro.storm.cluster import Cluster, Placement, round_robin_placement
from repro.storm.costs import CostModel, UniformCostModel
from repro.storm.groupings import Grouping
from repro.storm.topology import CaptureBolt, OutputCollector, Spout, Topology
from repro.obs import ObsContext
from repro.storm.tuples import StormTuple

#: Shared placeholder for runs that skip the per-member cost breakdown
#: (monitors-only instrumentation); never mutated.
_NO_BREAKDOWN: List[Tuple[str, float, int]] = []

TaskKey = Tuple[str, int]


@dataclass
class SimulationReport:
    """Outcome of one simulated run."""

    makespan: float
    input_data_tuples: int
    input_all_tuples: int
    processed: Dict[str, int]
    emitted: Dict[str, int]
    #: events delivered to each CaptureBolt component, in delivery order.
    sink_events: Dict[str, List[Event]]
    #: delivered (event, src_component, src_task) per sink, for provenance checks.
    sink_tuples: Dict[str, List[StormTuple]]
    #: simulated delivery time of each sink tuple (parallel to sink_events).
    sink_delivery_times: Dict[str, List[float]]
    #: per marker timestamp: simulated time of first spout emission.
    marker_emit_times: Dict[Any, float]
    #: per machine id: total core-seconds of CPU charged.
    machine_busy: Dict[int, float]
    #: cores per machine id (for utilization).
    machine_cores: Dict[int, int]

    def throughput(self) -> float:
        """Input data tuples per simulated second.

        An empty run (nothing injected, zero makespan) reports 0.0; a
        run that injected data in zero simulated time reports ``inf``.
        """
        if self.makespan <= 0:
            return 0.0 if self.input_data_tuples == 0 else float("inf")
        return self.input_data_tuples / self.makespan

    def utilization(self, machine_id: int) -> float:
        """Fraction of the machine's core-time spent busy over the run."""
        if self.makespan <= 0:
            return 0.0
        capacity = self.machine_cores.get(machine_id, 0) * self.makespan
        if capacity <= 0:
            return 0.0
        return min(1.0, self.machine_busy.get(machine_id, 0.0) / capacity)

    def mean_utilization(self) -> float:
        """Average utilization over the worker machines."""
        machines = [m for m in self.machine_cores if m >= 0]
        if not machines:
            return 0.0
        return sum(self.utilization(m) for m in machines) / len(machines)

    def marker_latencies(self, sink: str) -> Dict[Any, float]:
        """End-to-end latency per marker timestamp at a sink.

        Latency of timestamp ``t`` = time of the *last* delivery of a
        ``t``-marker to the sink (when alignment completes) minus the
        time a spout first emitted it.  The marker traverses every stage,
        so this is the pipeline's synchronization latency.

        A sink with no deliveries — or a name that is not a capture sink
        at all — yields ``{}`` rather than raising."""
        if sink not in self.sink_delivery_times or sink not in self.sink_tuples:
            return {}
        last_arrival: Dict[Any, float] = {}
        for time, tup in zip(self.sink_delivery_times[sink], self.sink_tuples[sink]):
            if isinstance(tup.event, Marker):
                last_arrival[tup.event.timestamp] = time
        return {
            ts: arrival - self.marker_emit_times.get(ts, 0.0)
            for ts, arrival in last_arrival.items()
        }


class _TaskRuntime:
    """Mutable per-task execution state."""

    __slots__ = (
        "component",
        "index",
        "machine",
        "is_spout",
        "payload",
        "state",
        "free_at",
        "groupings",
        "collector",
        "queue",
        "running",
        "batchable",
        "combiners",
    )

    def __init__(self, component, index, machine, is_spout, payload, state):
        self.component = component
        self.index = index
        self.machine = machine
        self.is_spout = is_spout
        self.payload = payload
        self.state = state
        self.free_at = 0.0
        # downstream component -> per-sender grouping instance
        self.groupings: Dict[str, Grouping] = {}
        self.collector = OutputCollector()
        # FIFO of pending (tuple, remote) deliveries; `running` marks an
        # in-flight execution (a scheduled "done" event).
        self.queue: "deque" = deque()
        self.running = False
        # Micro-batching eligibility and sender-side combiner buffers
        # (consumer -> {key: pending monoid aggregate}); populated by
        # Simulator.run when a BatchingOptions licenses them.
        self.batchable = False
        self.combiners: Dict[str, Dict[Any, Any]] = {}


class Simulator:
    """Run a topology on a simulated cluster.

    Parameters
    ----------
    topology: the component graph.
    cluster: worker machines (see :class:`Cluster`).
    cost_model: CPU/network costs; default charges 1 us per tuple.
    placement: task->machine map; defaults to round-robin with sources
        and capture sinks offloaded.
    seed: RNG seed controlling shuffle groupings and network jitter.
    max_events: safety valve against runaway topologies.
    obs: optional :class:`~repro.obs.ObsContext`; when enabled, the run
        records per-task busy spans, queue-depth timelines, marker-epoch
        alignment spans, and merge channel-skew gauges, and feeds any
        attached :class:`~repro.obs.monitor.MonitorHub` every delivery
        (type-conformance checks), source marker (frontier), and sealed
        epoch (watermarks).  Instrumentation is read-only — it never
        touches the RNG or the schedule, so an instrumented run produces
        bit-identical results.
    batching: optional :class:`~repro.storm.batching.BatchingOptions`
        enabling the epoch-batched fast paths — receiver-side
        micro-batching through ``execute_batch`` (one framework overhead
        per batch instead of per tuple) and sender-side per-key
        combiners on type-licensed ``U(K,V)`` hash edges.  Batching
        changes the simulated *schedule* (fewer invocations, fewer
        shipped tuples) but never the canonical sink traces; it is
        disabled automatically while ``obs`` is enabled, because the
        instrumentation records per-tuple executions.
    """

    def __init__(
        self,
        topology: Topology,
        cluster: Cluster,
        cost_model: Optional[CostModel] = None,
        placement: Optional[Placement] = None,
        seed: int = 0,
        max_events: int = 50_000_000,
        obs: Optional[ObsContext] = None,
        batching: Optional[BatchingOptions] = None,
    ):
        topology.validate()
        self.topology = topology
        self.cluster = cluster
        self.cost_model = cost_model or UniformCostModel()
        self.placement = placement or round_robin_placement(topology, cluster)
        self.seed = seed
        self.max_events = max_events
        self.obs = obs
        self.batching = batching

    # ------------------------------------------------------------------

    def run(self) -> SimulationReport:
        rng = random.Random(self.seed)
        tasks: Dict[TaskKey, _TaskRuntime] = {}
        downstream: Dict[str, List[str]] = {}
        for spec in self.topology.components.values():
            downstream[spec.name] = [
                name for name, _ in self.topology.downstream_of(spec.name)
            ]

        # Instantiate tasks.
        for spec in self.topology.components.values():
            for index in range(spec.parallelism):
                machine = self.placement.machine_of(spec.name, index)
                if spec.is_spout:
                    spout: Spout = copy.copy(spec.payload)
                    spout.open(index, spec.parallelism)
                    runtime = _TaskRuntime(
                        spec.name, index, machine, True, spout, None
                    )
                else:
                    state = spec.payload.prepare(index, spec.parallelism)
                    runtime = _TaskRuntime(
                        spec.name, index, machine, False, spec.payload, state
                    )
                # Per-sender grouping instances for each downstream bolt.
                for consumer, grouping in self.topology.downstream_of(spec.name):
                    instance = copy.deepcopy(grouping)
                    instance.bind(random.Random(rng.randrange(2**62)))
                    runtime.groupings[consumer] = instance
                tasks[(spec.name, index)] = runtime

        # Observability: precompute everything so the disabled path pays
        # exactly one `if obs_on` check per instrumentation site.
        obs = self.obs
        obs_on = obs is not None and obs.enabled
        tracer = obs.tracer if obs_on else None
        metrics = obs.metrics if obs_on else None
        tracer_on = obs_on and tracer.enabled
        metrics_on = obs_on and metrics.enabled
        # Trace/measure instrumentation (spans, frontend stats, member
        # breakdowns) is skipped wholesale when only monitors are on, so
        # a monitors-only run pays just the edge/progress taps.
        tm_on = tracer_on or metrics_on
        monitors = obs.monitors if obs_on else None
        monitors_on = monitors is not None and monitors.enabled
        # Tasks whose payload exposes merge-frontend hooks (CompiledBolt,
        # AlignedCaptureBolt) get marker-epoch alignment tracing.
        frontend_hooks: Dict[TaskKey, Any] = {}
        if obs_on:
            for key, runtime in tasks.items():
                if hasattr(runtime.payload, "frontend_merge_state"):
                    frontend_hooks[key] = runtime.payload

        # Type-licensed batching (see repro.storm.batching).  Disabled
        # wholesale under observability: the instrumentation records and
        # type-checks per-tuple executions and deliveries, which the
        # batched schedule deliberately coalesces.
        batching = self.batching if not obs_on else None
        max_batch = batching.max_batch if batching is not None else 1
        combiner_plan = batching.combiners if batching is not None else {}
        if batching is not None:
            for runtime in tasks.values():
                if batching.micro_batch and hasattr(
                    runtime.payload, "execute_batch"
                ):
                    runtime.batchable = True
                for consumer in downstream[runtime.component]:
                    if (runtime.component, consumer) in combiner_plan:
                        runtime.combiners[consumer] = {}

        # Per-machine core availability heaps (source host unbounded).
        core_free: Dict[int, List[float]] = {}
        for machine in self.cluster.machines:
            core_free[machine.machine_id] = [0.0] * machine.cores

        heap: List[Tuple[float, int, str, TaskKey, Optional[StormTuple], bool]] = []
        seq = itertools.count()

        def schedule(time: float, action: str, task: TaskKey, tup=None,
                     remote: bool = False):
            heapq.heappush(heap, (time, next(seq), action, task, tup, remote))

        # Kick off all spout tasks at t=0.
        for key, runtime in tasks.items():
            if runtime.is_spout:
                schedule(0.0, "spout", key)

        processed: Dict[str, int] = {name: 0 for name in self.topology.components}
        emitted: Dict[str, int] = {name: 0 for name in self.topology.components}
        sink_deliveries: Dict[str, List[Tuple[float, int, StormTuple]]] = {
            spec.name: []
            for spec in self.topology.components.values()
            if isinstance(spec.payload, CaptureBolt)
        }
        marker_emit_times: Dict[Any, float] = {}
        machine_busy: Dict[int, float] = {}
        input_data = 0
        input_all = 0
        makespan = 0.0
        events_handled = 0

        def begin_processing(runtime: _TaskRuntime, ready_time: float) -> float:
            """Account core + task availability; return the start time.

            Used by the spout path, whose emissions are self-paced (the
            ready time *is* when the task wants the core, so reserving
            at pop time is accurate)."""
            start = max(ready_time, runtime.free_at)
            cores = core_free.get(runtime.machine)
            if cores is not None:
                earliest = heapq.heappop(cores)
                start = max(start, earliest)
            return start

        def finish_processing(runtime: _TaskRuntime, finish: float) -> None:
            runtime.free_at = finish
            cores = core_free.get(runtime.machine)
            if cores is not None:
                heapq.heappush(cores, finish)

        def execution_cost(runtime: _TaskRuntime, tup: StormTuple, remote: bool) -> float:
            cost = self.cost_model.framework_overhead
            if remote:
                cost += self.cost_model.remote_cpu
            payload = runtime.payload
            if hasattr(payload, "cost_events"):
                # Compiled bolts report per-vertex work, so cardinality
                # changes inside a fused chain are charged faithfully.
                cost += self.cost_model.glue_cost(runtime.component, tup.event)
                for vertex, events in payload.cost_events(runtime.state):
                    for event in events:
                        cost += self.cost_model.vertex_cost(
                            vertex, event, runtime.index
                        )
            else:
                cost += self.cost_model.cpu_cost(
                    runtime.component, tup.event, runtime.index
                )
            return cost

        def execution_cost_detailed(
            runtime: _TaskRuntime, tup: StormTuple, remote: bool,
            breakdown: List[Tuple[str, float, int]],
        ) -> float:
            """`execution_cost` with a per-member cost breakdown.

            Kept separate so the uninstrumented hot path stays exactly
            as cheap as before.  ``breakdown`` receives
            ``(member label, cost seconds, events consumed)`` rows."""
            cost = self.cost_model.framework_overhead
            if remote:
                cost += self.cost_model.remote_cpu
            payload = runtime.payload
            if hasattr(payload, "cost_events"):
                glue = self.cost_model.glue_cost(runtime.component, tup.event)
                cost += glue
                breakdown.append(("glue", glue, 1))
                for vertex, events in payload.cost_events(runtime.state):
                    vertex_total = 0.0
                    for event in events:
                        vertex_total += self.cost_model.vertex_cost(
                            vertex, event, runtime.index
                        )
                    cost += vertex_total
                    breakdown.append((vertex, vertex_total, len(events)))
            else:
                cpu = self.cost_model.cpu_cost(
                    runtime.component, tup.event, runtime.index
                )
                cost += cpu
                breakdown.append((runtime.component, cpu, 1))
            return cost

        def execution_cost_batch(
            runtime: _TaskRuntime, batch: List[Tuple[StormTuple, bool]]
        ) -> float:
            """Cost of one micro-batch execution.

            The per-invocation framework overhead is paid once for the
            whole batch — that is the entire point of micro-batching —
            while the per-tuple charges (remote deserialization, glue,
            per-vertex CPU) are identical to the serial path, so the
            simulated speedup comes only from amortized overhead, never
            from dropped work."""
            cost = self.cost_model.framework_overhead
            payload = runtime.payload
            if hasattr(payload, "cost_events"):
                for tup, was_remote in batch:
                    if was_remote:
                        cost += self.cost_model.remote_cpu
                    cost += self.cost_model.glue_cost(
                        runtime.component, tup.event
                    )
                for vertex, events in payload.cost_events(runtime.state):
                    for event in events:
                        cost += self.cost_model.vertex_cost(
                            vertex, event, runtime.index
                        )
            else:
                for tup, was_remote in batch:
                    if was_remote:
                        cost += self.cost_model.remote_cpu
                    cost += self.cost_model.cpu_cost(
                        runtime.component, tup.event, runtime.index
                    )
            return cost

        def record_execution(
            runtime: _TaskRuntime, tup: StormTuple, start: float,
            finish: float, cost: float,
            breakdown: List[Tuple[str, float, int]], fanout: int,
            hooks: Any, pre_markers: Optional[int],
        ) -> None:
            """Trace/measure one bolt execution (instrumented runs only)."""
            comp, idx = runtime.component, runtime.index
            if tm_on:
                tracer.sample(
                    "queue_depth", comp, idx, start, len(runtime.queue)
                )
                tracer.exec_span(
                    comp, idx, runtime.machine, start, finish,
                    {"event": type(tup.event).__name__, "fanout": fanout},
                )
                if metrics_on:
                    metrics.counter("tuples_processed", component=comp).inc()
                    metrics.counter(
                        "task_busy_seconds", component=comp, task=idx
                    ).inc(cost)
                    metrics.counter("emit_fanout", component=comp).inc(fanout)
                # Per-fused-member sub-spans tile the execution interval in
                # chain order (glue first), so chrome://tracing shows where
                # inside the chain the time went.
                if len(breakdown) > 1:
                    cursor = start
                    for vertex, vertex_cost, n_events in breakdown:
                        tracer.member_span(
                            comp, idx, runtime.machine, vertex,
                            cursor, cursor + vertex_cost, n_events,
                        )
                        cursor += vertex_cost
                        if metrics_on and vertex != "glue":
                            metrics.counter(
                                "member_events", component=comp, vertex=vertex
                            ).inc(n_events)
                            metrics.counter(
                                "member_cpu_seconds", component=comp,
                                vertex=vertex,
                            ).inc(vertex_cost)
            if hooks is None:
                return
            # Marker-epoch alignment: if this execution raised the merge
            # frontend's emitted-marker count, the delivered marker was
            # the laggard completing its epoch — close the epoch span.
            merge_state = hooks.frontend_merge_state(runtime.state)
            sealed = (
                pre_markers is not None
                and merge_state.emitted_markers > pre_markers
                and isinstance(tup.event, Marker)
            )
            if sealed and monitors_on:
                monitors.on_epoch_sealed(comp, idx, tup.event.timestamp, finish)
            if not tm_on:
                return
            if sealed:
                stats = hooks.frontend_stats(runtime.state)
                wait = tracer.epoch_release(
                    comp, idx, tup.event.timestamp, finish,
                    {"buffered_after": stats["buffered_tuples"]},
                )
                if metrics_on:
                    metrics.counter(
                        "epochs_aligned", component=comp, task=idx
                    ).inc(merge_state.emitted_markers - pre_markers)
                    if wait is not None:
                        metrics.histogram(
                            "epoch_wait_seconds", component=comp
                        ).observe(wait)
            else:
                stats = hooks.frontend_stats(runtime.state)
            if metrics_on:
                skew_gauge = metrics.gauge("merge_skew", component=comp, task=idx)
                skew_gauge.set_max(
                    stats["skew"],
                    note=str(stats["laggard"])
                    if stats["laggard"] is not None else None,
                )
                buffered = stats["buffered_tuples"]
                buffered_gauge = metrics.gauge(
                    "merge_buffered_tuples", component=comp, task=idx
                )
                new_peak = buffered > 0 and (
                    buffered_gauge.max is None or buffered > buffered_gauge.max
                )
                buffered_gauge.set_max(buffered)
                if new_peak:
                    # Sizing walks every buffered event, so only do it
                    # when the buffer hits a new high-water mark.
                    metrics.gauge(
                        "merge_buffered_bytes", component=comp, task=idx
                    ).set_max(
                        hooks.frontend_stats(runtime.state, with_bytes=True)[
                            "buffered_bytes"
                        ]
                    )

        def maybe_start(runtime: _TaskRuntime, now: float) -> None:
            """Begin the task's next queued tuple if it is idle.

            The core is reserved only when the task actually starts — a
            task waiting on its own serial stream must not hold cores
            hostage (that would serialize co-located pipeline stages)."""
            nonlocal makespan
            if runtime.running or not runtime.queue:
                return
            if runtime.batchable:
                start_batch(runtime, now)
                return
            tup, was_remote = runtime.queue.popleft()
            start = now
            cores = core_free.get(runtime.machine)
            if cores is not None:
                earliest = heapq.heappop(cores)
                start = max(start, earliest)
            if obs_on:
                hooks = frontend_hooks.get((runtime.component, runtime.index))
                pre_markers = (
                    hooks.frontend_merge_state(runtime.state).emitted_markers
                    if hooks is not None else None
                )
            runtime.payload.execute(runtime.state, tup, runtime.collector)
            outputs = runtime.collector.drain()
            if tm_on:
                breakdown: List[Tuple[str, float, int]] = []
                cost = execution_cost_detailed(runtime, tup, was_remote, breakdown)
            else:
                breakdown = _NO_BREAKDOWN
                cost = execution_cost(runtime, tup, was_remote)
            finish = start + cost
            machine_busy[runtime.machine] = (
                machine_busy.get(runtime.machine, 0.0) + cost
            )
            if cores is not None:
                heapq.heappush(cores, finish)
            runtime.free_at = finish
            runtime.running = True
            makespan = max(makespan, finish)
            processed[runtime.component] += 1
            if obs_on:
                record_execution(
                    runtime, tup, start, finish, cost, breakdown,
                    len(outputs), hooks, pre_markers,
                )
            route(runtime, outputs, finish)
            schedule(finish, "done", (runtime.component, runtime.index))

        def start_batch(runtime: _TaskRuntime, now: float) -> None:
            """Drain one epoch-capped micro-batch and execute it at once.

            The batch stops after the first marker (epoch granularity),
            so marker alignment is timed exactly as in the serial
            engine, and at ``max_batch`` tuples, so one deep queue
            cannot monopolize a core arbitrarily long."""
            nonlocal makespan
            queue = runtime.queue
            batch: List[Tuple[StormTuple, bool]] = []
            while queue and len(batch) < max_batch:
                entry = queue.popleft()
                batch.append(entry)
                if isinstance(entry[0].event, Marker):
                    break
            start = now
            cores = core_free.get(runtime.machine)
            if cores is not None:
                earliest = heapq.heappop(cores)
                start = max(start, earliest)
            runtime.payload.execute_batch(
                runtime.state, [tup for tup, _ in batch], runtime.collector
            )
            outputs = runtime.collector.drain()
            cost = execution_cost_batch(runtime, batch)
            finish = start + cost
            machine_busy[runtime.machine] = (
                machine_busy.get(runtime.machine, 0.0) + cost
            )
            if cores is not None:
                heapq.heappush(cores, finish)
            runtime.free_at = finish
            runtime.running = True
            makespan = max(makespan, finish)
            processed[runtime.component] += len(batch)
            route(runtime, outputs, finish)
            schedule(finish, "done", (runtime.component, runtime.index))

        # FIFO per link: Storm guarantees in-order delivery between a fixed
        # producer task and consumer task; jittered delays must never
        # reorder tuples on the same link.
        link_clock: Dict[Tuple[TaskKey, TaskKey], float] = {}

        def send(
            runtime: _TaskRuntime, tup: StormTuple, consumer: str, at: float
        ) -> None:
            """Ship one tuple to every selected task of ``consumer``."""
            grouping = runtime.groupings[consumer]
            n_tasks = self.topology.components[consumer].parallelism
            src_key = (runtime.component, runtime.index)
            for target in grouping.select(tup.event, n_tasks):
                dst_key = (consumer, target)
                dst = tasks[dst_key]
                delay = self.cost_model.network_delay(
                    runtime.machine, dst.machine, rng
                )
                arrival = at + delay
                link = (src_key, dst_key)
                floor = link_clock.get(link, 0.0)
                arrival = max(arrival, floor)
                link_clock[link] = arrival
                schedule(
                    arrival, "deliver", dst_key, tup,
                    remote=runtime.machine != dst.machine,
                )

        def route(runtime: _TaskRuntime, events: List[Event], at: float) -> None:
            for event in events:
                emitted[runtime.component] += 1
                tup = StormTuple(event, runtime.component, runtime.index)
                for consumer in downstream[runtime.component]:
                    pending = runtime.combiners.get(consumer)
                    if pending is not None:
                        if isinstance(event, KV):
                            # Fold instead of shipping: the U(K,V) edge
                            # type makes between-marker items mutually
                            # independent, and the consumer's head
                            # operator folds them through a commutative
                            # monoid — so one pre-combined aggregate per
                            # key per epoch denotes the same trace.
                            head = combiner_plan[(runtime.component, consumer)]
                            folded = head.fold_in(event.key, event.value)
                            if event.key in pending:
                                pending[event.key] = head.combine(
                                    pending[event.key], folded
                                )
                            else:
                                pending[event.key] = folded
                            continue
                        if isinstance(event, Marker) and pending:
                            # Flush the epoch's aggregates ahead of the
                            # marker; link FIFO keeps them in its block.
                            for key, agg in pending.items():
                                send(
                                    runtime,
                                    StormTuple(
                                        KV(key, CombinedAgg(agg)),
                                        runtime.component,
                                        runtime.index,
                                    ),
                                    consumer,
                                    at,
                                )
                            pending.clear()
                    send(runtime, tup, consumer, at)

        while heap:
            events_handled += 1
            if events_handled > self.max_events:
                raise SimulationError("simulation exceeded max_events; runaway?")
            time_now, _, action, task_key, tup, remote = heapq.heappop(heap)
            runtime = tasks[task_key]

            if action == "spout":
                alive = runtime.payload.next_tuple(runtime.collector)
                outputs = runtime.collector.drain()
                cost = sum(
                    self.cost_model.spout_cost(runtime.component, e) for e in outputs
                )
                start = begin_processing(runtime, time_now)
                finish = start + cost
                finish_processing(runtime, finish)
                makespan = max(makespan, finish)
                for event in outputs:
                    input_all += 1
                    if isinstance(event, KV):
                        input_data += 1
                    elif isinstance(event, Marker):
                        marker_emit_times.setdefault(event.timestamp, finish)
                        if monitors_on:
                            monitors.on_source_marker(
                                runtime.component, event.timestamp, finish
                            )
                if tm_on and outputs:
                    tracer.exec_span(
                        runtime.component, runtime.index, runtime.machine,
                        start, finish, {"fanout": len(outputs)},
                    )
                    if metrics_on:
                        metrics.counter(
                            "spout_emitted", component=runtime.component
                        ).inc(len(outputs))
                route(runtime, outputs, finish)
                if alive:
                    schedule(finish, "spout", task_key)
                continue

            if action == "deliver":
                assert tup is not None
                if runtime.component in sink_deliveries:
                    sink_deliveries[runtime.component].append(
                        (time_now, runtime.index, tup)
                    )
                runtime.queue.append((tup, remote))
                if obs_on:
                    depth = len(runtime.queue)
                    if monitors_on:
                        monitors.on_delivery(
                            runtime.component, runtime.index, tup, time_now,
                            depth,
                        )
                    if tm_on:
                        tracer.sample(
                            "queue_depth", runtime.component, runtime.index,
                            time_now, depth,
                        )
                        if metrics_on:
                            metrics.gauge(
                                "queue_depth", component=runtime.component,
                                task=runtime.index,
                            ).set_max(depth)
                        if (
                            task_key in frontend_hooks
                            and isinstance(tup.event, Marker)
                        ):
                            tracer.epoch_arrival(
                                runtime.component, runtime.index,
                                runtime.machine, tup.event.timestamp, time_now,
                            )
            else:  # "done": the running execution finished
                runtime.running = False
            maybe_start(runtime, time_now)

        if obs_on:
            tracer.finalize(makespan)
            if monitors_on:
                monitors.close(makespan)
            if metrics_on:
                for machine in self.cluster.machines:
                    metrics.gauge(
                        "machine_busy_seconds", machine=machine.machine_id
                    ).set(machine_busy.get(machine.machine_id, 0.0))

        sink_events = {
            name: [t.event for _, _, t in deliveries]
            for name, deliveries in sink_deliveries.items()
        }
        sink_tuples = {
            name: [t for _, _, t in deliveries]
            for name, deliveries in sink_deliveries.items()
        }
        sink_delivery_times = {
            name: [time for time, _, _ in deliveries]
            for name, deliveries in sink_deliveries.items()
        }
        return SimulationReport(
            makespan=makespan,
            input_data_tuples=input_data,
            input_all_tuples=input_all,
            processed=processed,
            emitted=emitted,
            sink_events=sink_events,
            sink_tuples=sink_tuples,
            sink_delivery_times=sink_delivery_times,
            marker_emit_times=marker_emit_times,
            machine_busy=machine_busy,
            machine_cores={
                m.machine_id: m.cores for m in self.cluster.machines
            },
        )
