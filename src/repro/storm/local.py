"""Correctness-oriented local execution of topologies.

:class:`LocalRunner` runs a topology through the discrete-event engine
with a zero cost model (free CPU, jittered-but-negligible network) on a
single big machine.  The outputs are exactly what a distributed run would
produce under one particular interleaving; sweeping ``seed`` explores
other interleavings.  This is the harness behind the Section 2
motivation experiment: an order-sensitive pipeline naively parallelized
produces seed-dependent outputs, while a compiled typed pipeline is
seed-invariant.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs import ObsContext
from repro.operators.base import Event
from repro.storm.cluster import Cluster
from repro.storm.costs import ZeroCostModel
from repro.storm.simulator import SimulationReport, Simulator
from repro.storm.topology import Topology
from repro.traces.blocks import BlockTrace


class LocalRunner:
    """Run a topology to completion in-process.

    ``obs`` (optional :class:`~repro.obs.ObsContext`) instruments the
    run; with the zero cost model the interesting signals are the
    marker-epoch spans and queue-depth timelines rather than CPU time.
    """

    def __init__(self, topology: Topology, seed: int = 0,
                 obs: Optional[ObsContext] = None):
        self.topology = topology
        self.seed = seed
        self.obs = obs

    def run(self) -> SimulationReport:
        cluster = Cluster(n_machines=1, cores_per_machine=4)
        simulator = Simulator(
            self.topology,
            cluster,
            cost_model=ZeroCostModel(),
            seed=self.seed,
            obs=self.obs,
        )
        return simulator.run()

    def sink_trace(self, sink: str, ordered: bool) -> BlockTrace:
        """Run and return the canonical trace delivered to ``sink``."""
        report = self.run()
        return events_to_trace(report.sink_events[sink], ordered)

    def sweep_seeds(
        self, sink: str, ordered: bool, seeds=range(5)
    ) -> List[BlockTrace]:
        """Canonical sink traces across interleaving seeds.

        All equal => the topology's output is interleaving-invariant on
        this workload; distinct values witness semantic nondeterminism.
        """
        traces = []
        for seed in seeds:
            report = LocalRunner(self.topology, seed=seed).run()
            traces.append(events_to_trace(report.sink_events[sink], ordered))
        return traces


def events_to_trace(events: List[Event], ordered: bool) -> BlockTrace:
    """Canonical :class:`BlockTrace` view of a delivered event sequence."""
    from repro.operators.base import Marker

    trace = BlockTrace(ordered)
    for event in events:
        if isinstance(event, Marker):
            trace.add_marker(event.timestamp)
        else:
            trace.add_pair(event.key, event.value)
    return trace
