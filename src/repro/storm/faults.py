"""Declarative fault injection for the simulated cluster.

A :class:`FaultPlan` describes *what goes wrong* during a run, separately
from the topology and the cost model, so the same pipeline can be swept
over fault scenarios exactly like it is swept over seeds:

- :class:`CrashFault` — one task loses its in-memory state, either after
  a fixed number of executions or at a simulated time;
- :class:`MachineFault` — every task on a machine crashes at once;
  ``permanent=True`` additionally removes the machine, forcing the
  recovery coordinator to re-place its tasks on the survivors;
- :class:`EdgeFaults` — per-edge message-level faults: independent
  drop / duplicate / reorder probabilities applied to every tuple
  shipped on matching ``src component -> dst component`` links.

All randomness comes from the plan's own ``seed`` (a dedicated RNG in
the simulator), never from the simulator's scheduling RNG — so a run
with recovery enabled but no faults draws exactly the same schedule as
a plain run, and the checkpointing overhead can be measured in
isolation.

The plan round-trips through JSON (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`, :func:`load_fault_plan`) for the CLI's
``repro sim --faults plan.json``.

:class:`Resequencer` is the receiver half of the reliability layer the
recovery coordinator installs on every fault-injected link: senders
number their transmissions per link, and the resequencer releases
tuples in sequence order exactly once — duplicates are filtered, gaps
(in-flight retransmissions) are held.  Healthy links stay on the plain
path: global rollback already discards their in-flight traffic, so
they are exactly-once without numbering.  See
``docs/fault_tolerance.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class EdgeFaults:
    """Message-fault probabilities for one (or every) topology edge.

    ``drop``, ``duplicate``, and ``reorder`` are independent per-tuple
    probabilities in ``[0, 1)``.  Under the recovery coordinator a
    "dropped" transmission is retransmitted after a timeout (the link is
    at-least-once, like a TCP stream or an acking Storm topology), so a
    drop manifests as delay; without recovery it is simply lost.
    ``reorder_delay`` bounds the extra delay a reordered tuple picks up
    (it bypasses the link's FIFO floor, so later tuples can overtake
    it).  ``max_retransmits`` caps consecutive drops of one tuple so a
    high drop rate cannot livelock a link.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 5e-4
    max_retransmits: int = 5

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} probability must be in [0, 1), got {p}")
        if self.reorder_delay < 0:
            raise ValueError("reorder_delay must be non-negative")
        if self.max_retransmits < 1:
            raise ValueError("max_retransmits must be >= 1")

    def active(self) -> bool:
        return self.drop > 0 or self.duplicate > 0 or self.reorder > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "reorder_delay": self.reorder_delay,
            "max_retransmits": self.max_retransmits,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EdgeFaults":
        return cls(**data)


@dataclass(frozen=True)
class CrashFault:
    """One task crash: the task loses all in-memory state.

    Fires once, either after the task's ``after_executions``-th
    execution or at simulated time ``at_time`` (exactly one must be
    set).  ``kind`` is descriptive ("transient" tasks restart in place;
    the machine-level permanent failures live in :class:`MachineFault`).
    """

    component: str
    task: int = 0
    after_executions: Optional[int] = None
    at_time: Optional[float] = None
    kind: str = "transient"

    def __post_init__(self):
        if (self.after_executions is None) == (self.at_time is None):
            raise ValueError(
                "exactly one of after_executions / at_time must be set"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "task": self.task,
            "after_executions": self.after_executions,
            "at_time": self.at_time,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CrashFault":
        return cls(**data)


@dataclass(frozen=True)
class MachineFault:
    """All tasks on ``machine`` crash at ``at_time``.

    ``permanent=True`` removes the machine from the cluster; the
    recovery coordinator re-places its tasks round-robin over the
    surviving worker machines before the global rollback.
    """

    machine: int
    at_time: float
    permanent: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "at_time": self.at_time,
            "permanent": self.permanent,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MachineFault":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong during one simulated run.

    ``edges`` maps ``(src component, dst component)`` to that edge's
    :class:`EdgeFaults`; ``default_edge`` (optional) applies to every
    edge without an explicit entry.  ``seed`` feeds the dedicated fault
    RNG.
    """

    crashes: Tuple[CrashFault, ...] = ()
    machine_faults: Tuple[MachineFault, ...] = ()
    edges: Dict[Tuple[str, str], EdgeFaults] = field(default_factory=dict)
    default_edge: Optional[EdgeFaults] = None
    seed: int = 0

    def edge_faults(self, src: str, dst: str) -> Optional[EdgeFaults]:
        """The faults configured for the ``src -> dst`` edge, if any."""
        faults = self.edges.get((src, dst))
        return faults if faults is not None else self.default_edge

    def any_faults(self) -> bool:
        return bool(
            self.crashes
            or self.machine_faults
            or any(f.active() for f in self.edges.values())
            or (self.default_edge is not None and self.default_edge.active())
        )

    # -- JSON round-trip -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "crashes": [c.to_dict() for c in self.crashes],
            "machine_faults": [m.to_dict() for m in self.machine_faults],
            "edges": [
                {"src": src, "dst": dst, **faults.to_dict()}
                for (src, dst), faults in sorted(self.edges.items())
            ],
            "default_edge": (
                None if self.default_edge is None else self.default_edge.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        edges: Dict[Tuple[str, str], EdgeFaults] = {}
        for entry in data.get("edges", ()):
            entry = dict(entry)
            src = entry.pop("src")
            dst = entry.pop("dst")
            edges[(src, dst)] = EdgeFaults.from_dict(entry)
        default = data.get("default_edge")
        return cls(
            crashes=tuple(
                CrashFault.from_dict(c) for c in data.get("crashes", ())
            ),
            machine_faults=tuple(
                MachineFault.from_dict(m) for m in data.get("machine_faults", ())
            ),
            edges=edges,
            default_edge=None if default is None else EdgeFaults.from_dict(default),
            seed=data.get("seed", 0),
        )

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")


def load_fault_plan(path: str) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SimulationError(f"fault plan {path!r} is not a JSON object")
    return FaultPlan.from_dict(data)


def demo_plan(topology, seed: int = 0) -> FaultPlan:
    """A representative plan for a topology: crash the first processing
    bolt's task 0 mid-run, plus mild drop/duplicate/reorder everywhere.

    Used by ``repro sim`` when no ``--faults`` file is given.
    """
    target = None
    for spec in topology.components.values():
        if not spec.is_spout and spec.inputs:
            # Prefer a mid-pipeline bolt (one that itself has consumers).
            if topology.downstream_of(spec.name):
                target = spec.name
                break
            if target is None:
                target = spec.name
    crashes = ()
    if target is not None:
        crashes = (CrashFault(target, task=0, after_executions=40),)
    return FaultPlan(
        crashes=crashes,
        default_edge=EdgeFaults(drop=0.02, duplicate=0.02, reorder=0.05),
        seed=seed,
    )


class Resequencer:
    """Exactly-once, in-order release of a link's numbered transmissions.

    ``offer(seq, item)`` returns the (possibly empty) run of items that
    became releasable: duplicates (a sequence number at or below the
    watermark, or already buffered) are dropped and counted; gaps are
    held until the missing transmission arrives.  On an at-least-once
    link every sequence number eventually arrives, so the resequencer
    always drains.
    """

    __slots__ = ("expected", "buffer", "duplicates")

    def __init__(self):
        self.expected = 0
        self.buffer: Dict[int, Any] = {}
        self.duplicates = 0

    def offer(self, seq: int, item: Any) -> List[Any]:
        if seq == self.expected and not self.buffer:
            # In-order arrival on a healthy link: release immediately.
            self.expected = seq + 1
            return [item]
        if seq < self.expected or seq in self.buffer:
            self.duplicates += 1
            return []
        self.buffer[seq] = item
        released: List[Any] = []
        while self.expected in self.buffer:
            released.append(self.buffer.pop(self.expected))
            self.expected += 1
        return released

    def pending(self) -> int:
        """Transmissions buffered behind a gap."""
        return len(self.buffer)


def apply_edge_faults(events, faults: EdgeFaults, rng,
                      displacement: float = 8.0) -> List[Tuple[int, Any]]:
    """Model an at-least-once faulty link over an event sequence.

    Returns the *transmission order* as ``[(seq, event), ...]``: every
    event is numbered in stream order, then drops (modelled as late
    retransmissions), duplicates, and reorders perturb the order in
    which the transmissions arrive.  Feeding the result through
    :func:`recover_stream` must reproduce the original sequence exactly
    — the in-process backend's link-recovery parity check.
    """
    transmissions: List[Tuple[float, int, int, Any]] = []
    for seq, event in enumerate(events):
        offset = 0.0
        if faults.drop and rng.random() < faults.drop:
            # Lost then retransmitted: arrives a whole window later.
            offset += displacement * (1.0 + rng.random())
        if faults.reorder and rng.random() < faults.reorder:
            offset += 1.0 + rng.random() * displacement * 0.5
        transmissions.append((seq + offset, len(transmissions), seq, event))
        if faults.duplicate and rng.random() < faults.duplicate:
            dup_offset = offset + rng.random() * displacement * 0.5
            transmissions.append(
                (seq + dup_offset, len(transmissions), seq, event)
            )
    transmissions.sort(key=lambda t: (t[0], t[1]))
    return [(seq, event) for _, _, seq, event in transmissions]


def recover_stream(transmissions) -> Tuple[List[Any], int]:
    """Run a faulty transmission order through a :class:`Resequencer`.

    Returns ``(events in original order, duplicates filtered)``.
    """
    reseq = Resequencer()
    out: List[Any] = []
    for seq, event in transmissions:
        out.extend(reseq.offer(seq, event))
    return out, reseq.duplicates
