"""Cost models for the discrete-event simulator.

The simulator charges simulated seconds for each tuple a task processes
(CPU) and each hop a tuple makes between machines (network).  Costs are
what turn real operator executions into throughput curves; they are the
substitution for the paper's physical testbed, so each experiment
documents its cost assumptions.

Defaults (order-of-magnitude realistic for JVM stream processors):

- per-tuple framework overhead: 1 us
- local (same-machine) delivery: 0.2 us
- remote (cross-machine) delivery: 10 us plus seeded jitter

Per-component CPU costs are added on top (a database lookup in a JFM
stage costs tens of microseconds; a window-count update costs well under
one microsecond).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.operators.base import Event


class CostModel:
    """Base cost model; all times in simulated seconds."""

    #: framework overhead applied to every processed tuple.
    framework_overhead = 1e-6
    local_delivery = 0.2e-6
    remote_delivery = 10e-6
    #: multiplicative jitter range applied to remote delivery.
    jitter = 0.5
    #: receiver-side CPU charged per tuple that crossed machines
    #: (serialization/deserialization); 0 by default, raised by the
    #: communication-cost ablation.
    remote_cpu = 0.0

    def cpu_cost(self, component: str, event: Event, task_index: int = 0) -> float:
        """Extra CPU seconds to process ``event`` at ``component``.

        ``task_index`` identifies the executing task instance; stateful
        cost entries (e.g. aligned-marker triggers) use it to charge
        once per task rather than once per delivery."""
        return 0.0

    def vertex_cost(self, vertex: str, event: Event, task_index: int = 0) -> float:
        """CPU seconds for one *vertex* of a fused chain to process one
        event (used by bolts exposing per-vertex work via ``cost_events``).
        Defaults to :meth:`cpu_cost` on the vertex name."""
        return self.cpu_cost(vertex, event, task_index)

    def glue_cost(self, component: str, event: Event) -> float:
        """Per-delivered-tuple charge for a compiled bolt's merge/align
        glue (charged once per delivery, on top of per-vertex costs)."""
        return 0.0

    def network_delay(
        self, src_machine: int, dst_machine: int, rng: random.Random
    ) -> float:
        """Delivery latency for one tuple between two machines."""
        if src_machine == dst_machine:
            return self.local_delivery
        base = self.remote_delivery
        return base * (1.0 + self.jitter * rng.random())

    def spout_cost(self, component: str, event: Event) -> float:
        """CPU seconds for a spout to emit one tuple."""
        return 0.5e-6


class UniformCostModel(CostModel):
    """Identical per-tuple CPU cost for every component."""

    def __init__(self, per_tuple: float = 1e-6):
        self._per_tuple = per_tuple

    def cpu_cost(self, component: str, event: Event, task_index: int = 0) -> float:
        return self._per_tuple


class PerComponentCostModel(CostModel):
    """Per-component CPU cost, by table with optional callables.

    ``costs`` maps component name to either a float (seconds per tuple)
    or a callable ``event -> seconds``; missing components cost
    ``default`` seconds.
    """

    def __init__(
        self,
        costs: Optional[Dict[str, Any]] = None,
        default: float = 0.5e-6,
    ):
        self._costs = dict(costs or {})
        self._default = default

    def set_cost(self, component: str, cost: Any) -> None:
        self._costs[component] = cost

    def cpu_cost(self, component: str, event: Event, task_index: int = 0) -> float:
        cost = self._costs.get(component, self._default)
        if callable(cost):
            return float(cost(event))
        return float(cost)


class ZeroCostModel(CostModel):
    """Everything free: used by the LocalRunner for correctness-only runs
    (seeded jitter still perturbs interleavings)."""

    framework_overhead = 0.0
    local_delivery = 0.0
    remote_delivery = 0.0

    def network_delay(self, src_machine, dst_machine, rng) -> float:
        # Tiny random delay keeps arrival interleavings nondeterministic
        # across seeds without affecting measured time materially.
        return rng.random() * 1e-9

    def spout_cost(self, component, event) -> float:
        return 0.0
