"""Epoch-aligned checkpointing and exactly-once recovery.

The paper's synchronization markers cut every stream into linearly
ordered epochs, and an epoch boundary is a *consistent cut*: when a
vertex has consumed the epoch-``ts`` markers from all of its input
channels, every tuple of that epoch (and none of a later one) has
passed through it.  Snapshotting each task's state exactly at that
point — and remembering, per source, how far into its emission log the
boundary lies — yields a Chandy-Lamport-style aligned snapshot without
any extra coordination traffic: the markers the type system already
mandates *are* the snapshot barriers.

Recovery is global rollback, Flink-style: on any task failure the
coordinator restores the last epoch whose snapshot is complete across
all tasks, discards in-flight messages, replays sources from the
snapshot's log position, and relies on two mechanisms for exactly-once
*semantics*:

- per-link sequence numbering + :class:`~repro.storm.faults.Resequencer`
  filtering turns the at-least-once links into exactly-once links;
- the data-trace types absorb the remaining nondeterminism — unordered
  (U) edges tolerate replay-induced reorder because the canonical trace
  is compared modulo the dependence relation, and ordered (O) edges are
  replayed per-key in order.

Correctness criterion (and the headline test): the recovered run's
canonical sink traces are *trace-equivalent* to the fault-free run's —
not byte-equal, which would be both unattainable and unnecessary.

This module also hosts the in-process twin: :func:`run_with_recovery`
drives a :class:`~repro.compiler.inprocess.InProcessPipeline` (serial or
batched) epoch-by-epoch with ``snapshot()`` / ``restore()`` around
injected crashes and optional link faults on the ingest streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.operators.base import Marker
from repro.storm.faults import EdgeFaults, apply_edge_faults, recover_stream


@dataclass(frozen=True)
class RecoveryOptions:
    """Knobs for the simulator's recovery coordinator.

    ``checkpoint_every`` snapshots every N-th epoch (1 = every epoch);
    ``retransmit_timeout`` is the extra delay a dropped transmission
    pays per retransmission; ``restart_delay`` models process restart
    time after a crash; ``max_recoveries`` bounds total rollbacks so a
    pathological plan fails loudly instead of looping.
    """

    checkpoint_every: int = 1
    retransmit_timeout: float = 1e-3
    restart_delay: float = 0.0
    max_recoveries: int = 25

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.retransmit_timeout < 0 or self.restart_delay < 0:
            raise ValueError("timeouts must be non-negative")
        if self.max_recoveries < 1:
            raise ValueError("max_recoveries must be >= 1")


@dataclass
class RecoveryStats:
    """What the fault-tolerance machinery actually did during a run."""

    recoveries: int = 0
    checkpoints_taken: int = 0
    complete_epochs: int = 0
    last_restored_epoch: Optional[Any] = None
    duplicates_filtered: int = 0
    retransmissions: int = 0
    reordered: int = 0
    replayed_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "recoveries": self.recoveries,
            "checkpoints_taken": self.checkpoints_taken,
            "complete_epochs": self.complete_epochs,
            "last_restored_epoch": self.last_restored_epoch,
            "duplicates_filtered": self.duplicates_filtered,
            "retransmissions": self.retransmissions,
            "reordered": self.reordered,
            "replayed_events": self.replayed_events,
        }


class CheckpointStore:
    """Aligned snapshots, keyed by epoch timestamp then task.

    An epoch's snapshot is *complete* once all ``n_tasks`` tasks have
    contributed their piece.  Markers drain past tasks in epoch order,
    so when an epoch completes every strictly older snapshot is
    superseded and pruned.  ``index_of`` maps an epoch timestamp to its
    position in the marker order (timestamps themselves may be any
    comparable or even non-comparable payload).
    """

    def __init__(self, n_tasks: int,
                 index_of: Optional[Callable[[Any], int]] = None):
        self.n_tasks = n_tasks
        self._index_of = index_of if index_of is not None else lambda ts: ts
        self._snapshots: Dict[Any, Dict[Any, Any]] = {}
        self._complete: List[Any] = []

    def add(self, ts: Any, task_key: Any, snapshot: Any) -> bool:
        """Record one task's snapshot; True when ``ts`` just completed."""
        epoch = self._snapshots.setdefault(ts, {})
        epoch[task_key] = snapshot
        if len(epoch) < self.n_tasks:
            return False
        self._complete.append(ts)
        idx = self._index_of(ts)
        for old in [t for t in self._snapshots if self._index_of(t) < idx]:
            del self._snapshots[old]
        return True

    def latest(self) -> Optional[Tuple[Any, Dict[Any, Any]]]:
        """The newest complete snapshot as ``(ts, {task: state})``."""
        if not self._complete:
            return None
        ts = self._complete[-1]
        return ts, self._snapshots[ts]

    def drop_after(self, ts: Optional[Any]) -> None:
        """Forget snapshots newer than ``ts`` (all of them if None).

        Called on rollback: partially accumulated snapshots for epochs
        past the restore point refer to a timeline that no longer
        exists.  The restored epoch's own complete snapshot is kept.
        """
        if ts is None:
            self._snapshots.clear()
            self._complete.clear()
            return
        idx = self._index_of(ts)
        for newer in [t for t in self._snapshots if self._index_of(t) > idx]:
            del self._snapshots[newer]
        self._complete = [t for t in self._complete if self._index_of(t) <= idx]

    @property
    def completed(self) -> int:
        return len(self._complete)


def split_epochs(events: Sequence[Any]) -> List[List[Any]]:
    """Cut an event stream into epoch blocks, each ending with its
    marker; a trailing marker-less partial block is kept as-is."""
    blocks: List[List[Any]] = []
    current: List[Any] = []
    for event in events:
        current.append(event)
        if isinstance(event, Marker):
            blocks.append(current)
            current = []
    if current:
        blocks.append(current)
    return blocks


@dataclass
class RecoveredRun:
    """Result of :func:`run_with_recovery`."""

    outputs: Dict[str, List[Any]]
    stats: RecoveryStats
    pipeline: Any = field(repr=False, default=None)


def run_with_recovery(dag, source_events: Dict[str, Sequence[Any]], *,
                      batched: bool = False,
                      checkpoint_every: int = 1,
                      crash_epochs: Sequence[int] = (),
                      crash_fraction: float = 0.5,
                      edge_faults: Optional[EdgeFaults] = None,
                      seed: int = 0) -> RecoveredRun:
    """Drive an in-process pipeline epoch-by-epoch with checkpointing,
    injected crashes, and optional ingest-link faults.

    ``crash_epochs`` lists epoch indices at which the pipeline "crashes"
    after consuming ``crash_fraction`` of that epoch's events: the live
    pipeline state is thrown away, the last checkpoint is restored, and
    the sources replay from the checkpoint boundary.  ``edge_faults``
    runs each source stream through the at-least-once link model
    (:func:`~repro.storm.faults.apply_edge_faults`) and the receiver-side
    :class:`~repro.storm.faults.Resequencer` before ingestion.

    The returned outputs must be canonically trace-equivalent to a plain
    ``compile_inprocess(dag, batched).run(source_events)``.
    """
    from repro.compiler.inprocess import compile_inprocess

    stats = RecoveryStats()
    rng = random.Random(seed)

    streams: Dict[str, Sequence[Any]] = {}
    for name, events in source_events.items():
        events = list(events)
        if edge_faults is not None and edge_faults.active():
            transmissions = apply_edge_faults(events, edge_faults, rng)
            recovered, dups = recover_stream(transmissions)
            stats.duplicates_filtered += dups
            if recovered != events:
                raise SimulationError(
                    f"link recovery failed to reproduce source {name!r}"
                )
            events = recovered
        streams[name] = events

    blocks = {name: split_epochs(events) for name, events in streams.items()}
    n_epochs = max((len(b) for b in blocks.values()), default=0)

    pipe = compile_inprocess(dag, batched=batched)
    pending_crashes = sorted(set(crash_epochs))
    checkpoint = pipe.snapshot()  # epoch -1: the initial state
    ck_epoch = -1
    stats.checkpoints_taken += 1
    furthest = -1  # highest epoch index ever fully pushed

    def push_block(name: str, block: List[Any]) -> None:
        if batched:
            pipe.push_batch(name, block)
        else:
            for event in block:
                pipe.push(name, event)

    epoch = 0
    while epoch < n_epochs:
        if pending_crashes and pending_crashes[0] == epoch:
            pending_crashes.pop(0)
            for name, source_blocks in blocks.items():
                if epoch < len(source_blocks):
                    block = source_blocks[epoch]
                    prefix = block[: int(len(block) * crash_fraction)]
                    push_block(name, prefix)
                    # The prefix is thrown away with the rollback and
                    # delivered again when this epoch re-runs.
                    stats.replayed_events += len(prefix)
            pipe.restore(checkpoint)
            stats.recoveries += 1
            stats.last_restored_epoch = ck_epoch
            epoch = ck_epoch + 1
            continue
        for name, source_blocks in blocks.items():
            if epoch < len(source_blocks):
                block = source_blocks[epoch]
                if epoch <= furthest:
                    stats.replayed_events += len(block)
                push_block(name, block)
        furthest = max(furthest, epoch)
        if (epoch + 1) % checkpoint_every == 0:
            checkpoint = pipe.snapshot()
            ck_epoch = epoch
            stats.checkpoints_taken += 1
            stats.complete_epochs = epoch + 1
        epoch += 1

    outputs = {name: pipe.outputs(name) for name in pipe.sink_names()}
    return RecoveredRun(outputs=outputs, stats=stats, pipeline=pipe)
