"""Type-licensed execution batching for the simulated cluster.

Two independent fast paths, both justified by the data-trace types of
the compiled DAG rather than by luck:

- **Micro-batching** — a task that has several tuples queued executes
  them as one batch through the bolt's ``execute_batch`` entry point,
  paying the per-invocation framework overhead once per batch instead of
  once per tuple.  Batches never run past a synchronization marker
  (epoch granularity), so marker alignment — the one ordering constraint
  every edge type shares — is timed exactly as in the serial engine.

- **Shuffle combiners** — on a ``U(K, V)`` hash-partitioned edge whose
  consumer's chain head is an :class:`OpKeyedUnordered` with the default
  (no-op) ``on_item``, the *sender* folds each epoch's items per key
  into one monoid aggregate and ships a single
  :class:`~repro.operators.keyed_unordered.CombinedAgg` tuple per
  distinct key per epoch.  This is the MapReduce-combiner move, but here
  it is *provably* invisible: the ``U`` edge type says between-marker
  items are mutually independent, and the Table 1 template says the only
  thing the consumer does with them is fold them through a commutative
  monoid — so pre-folding at the sender denotes the identical trace
  (Theorem 4.2's consistency argument, applied at the edge).

:func:`plan_combiners` derives the eligible edges mechanically from
``CompiledTopology.edge_kinds`` (the type checker's verdict projected
onto topology edges) — the type system, not a heuristic, decides where
the engine may batch and pre-aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.operators.keyed_unordered import OpKeyedUnordered
from repro.storm.groupings import MarkerAwareGrouping


@dataclass
class BatchingOptions:
    """Switches for the simulator's epoch-batched fast path.

    ``micro_batch`` — drain queued tuples into per-epoch batches through
    ``execute_batch`` (bolts without that entry point keep running
    tuple-at-a-time).
    ``max_batch`` — upper bound on tuples per batch, so one deep queue
    cannot monopolize a core for arbitrarily long.
    ``combiners`` — sender-side pre-aggregation plan: ``(src component,
    dst component) -> the consumer's head OpKeyedUnordered`` (whose
    ``fold_in``/``combine`` the combiner reuses).  Build it with
    :func:`plan_combiners`; an empty dict disables combining.
    """

    micro_batch: bool = True
    max_batch: int = 512
    combiners: Dict[Tuple[str, str], OpKeyedUnordered] = field(
        default_factory=dict
    )

    @classmethod
    def for_compiled(
        cls,
        compiled,
        micro_batch: bool = True,
        combine: bool = True,
        max_batch: int = 512,
    ) -> "BatchingOptions":
        """Options for a :class:`~repro.compiler.compile.CompiledTopology`,
        with the combiner plan derived from its typed edges."""
        return cls(
            micro_batch=micro_batch,
            max_batch=max_batch,
            combiners=plan_combiners(compiled) if combine else {},
        )


def plan_combiners(compiled) -> Dict[Tuple[str, str], OpKeyedUnordered]:
    """Edges where a sender-side combiner is licensed by the types.

    An edge ``(src, dst)`` qualifies iff *all* of:

    - the type checker assigned it kind ``U`` (between-marker items are
      unordered, hence mutually independent);
    - the consumer is a compiled bolt whose chain head is an
      :class:`OpKeyedUnordered` — the only template whose per-item
      consumption is a commutative-monoid fold;
    - that head's ``on_item`` is the template default (no per-item
      output, so collapsing items is observationally invisible);
    - routing is the marker-aware ``hash`` policy, so every item of a
      key reaches the same task whether or not it was pre-folded.

    ``compiled`` is a :class:`~repro.compiler.compile.CompiledTopology`;
    the import is deferred to keep this module free of a compiler
    dependency cycle.
    """
    from repro.compiler.glue import CompiledBolt

    plan: Dict[Tuple[str, str], OpKeyedUnordered] = {}
    for spec in compiled.topology.components.values():
        payload = spec.payload
        if not isinstance(payload, CompiledBolt) or not payload.operators:
            continue
        head = payload.operators[0]
        if not isinstance(head, OpKeyedUnordered):
            continue
        if type(head).on_item is not OpKeyedUnordered.on_item:
            continue
        for upstream, grouping in spec.inputs.items():
            if not isinstance(grouping, MarkerAwareGrouping):
                continue
            if grouping.policy != "hash":
                continue
            if compiled.edge_kinds.get((upstream, spec.name)) != "U":
                continue
            plan[(upstream, spec.name)] = head
    return plan
