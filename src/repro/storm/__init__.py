"""A Storm-like distributed stream processing platform (Section 5 substrate).

This package substitutes for Apache Storm: topologies of spouts and bolts
with groupings, executed on a simulated cluster.  The simulator executes
*real* operator code — outputs are genuine — while time (CPU cost per
tuple, network transfer between machines, queueing) is modelled by a
discrete-event engine, so throughput experiments are reproducible on a
laptop and interleaving nondeterminism is seeded.

- :mod:`repro.storm.tuples` — tuples in flight.
- :mod:`repro.storm.topology` — ``TopologyBuilder``, spouts, bolts.
- :mod:`repro.storm.groupings` — shuffle / fields / global / broadcast /
  custom groupings.
- :mod:`repro.storm.cluster` — machines and task placement.
- :mod:`repro.storm.costs` — cost models (per-tuple CPU, network).
- :mod:`repro.storm.simulator` — the discrete-event engine.
- :mod:`repro.storm.local` — convenience runner for correctness-only
  executions.
- :mod:`repro.storm.faults` — declarative fault plans (task crashes,
  machine failures, lossy/duplicating/reordering edges).
- :mod:`repro.storm.recovery` — epoch-aligned checkpointing and
  exactly-once recovery (see ``docs/fault_tolerance.md``).
"""

from repro.storm.tuples import StormTuple
from repro.storm.topology import (
    Topology,
    TopologyBuilder,
    Spout,
    IteratorSpout,
    Bolt,
    CaptureBolt,
    OutputCollector,
)
from repro.storm.groupings import (
    Grouping,
    ShuffleGrouping,
    FieldsGrouping,
    GlobalGrouping,
    BroadcastGrouping,
    MarkerAwareGrouping,
)
from repro.storm.cluster import (
    Cluster,
    Machine,
    Placement,
    round_robin_placement,
    packed_placement,
    aligned_placement,
)
from repro.storm.costs import CostModel, UniformCostModel, PerComponentCostModel
from repro.storm.faults import (
    CrashFault,
    EdgeFaults,
    FaultPlan,
    MachineFault,
    Resequencer,
    demo_plan,
    load_fault_plan,
)
from repro.storm.recovery import (
    CheckpointStore,
    RecoveryOptions,
    RecoveryStats,
    run_with_recovery,
)
from repro.storm.simulator import Simulator, SimulationReport
from repro.storm.local import LocalRunner

__all__ = [
    "StormTuple",
    "Topology",
    "TopologyBuilder",
    "Spout",
    "IteratorSpout",
    "Bolt",
    "CaptureBolt",
    "OutputCollector",
    "Grouping",
    "ShuffleGrouping",
    "FieldsGrouping",
    "GlobalGrouping",
    "BroadcastGrouping",
    "MarkerAwareGrouping",
    "Cluster",
    "Machine",
    "Placement",
    "round_robin_placement",
    "packed_placement",
    "aligned_placement",
    "CostModel",
    "UniformCostModel",
    "PerComponentCostModel",
    "CrashFault",
    "EdgeFaults",
    "FaultPlan",
    "MachineFault",
    "Resequencer",
    "demo_plan",
    "load_fault_plan",
    "CheckpointStore",
    "RecoveryOptions",
    "RecoveryStats",
    "run_with_recovery",
    "Simulator",
    "SimulationReport",
    "LocalRunner",
]
