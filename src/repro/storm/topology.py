"""Topologies: spouts, bolts, and the builder API (Section 5).

Mirrors Storm's programming model: a :class:`TopologyBuilder` declares
spouts and bolts with parallelism hints and input groupings, producing an
immutable :class:`Topology` that the simulator instantiates into tasks.

Bolts receive :class:`~repro.storm.tuples.StormTuple` values and emit
events through an :class:`OutputCollector`.  :class:`CaptureBolt` is the
standard sink — it records everything it receives so experiments can
compare delivered traces.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import TopologyError
from repro.operators.base import Event
from repro.storm.groupings import Grouping, ShuffleGrouping
from repro.storm.tuples import StormTuple


class OutputCollector:
    """Collects the events a spout/bolt emits during one invocation."""

    def __init__(self):
        self._buffer: List[Event] = []

    def emit(self, event: Event) -> None:
        self._buffer.append(event)

    def drain(self) -> List[Event]:
        out, self._buffer = self._buffer, []
        return out


class Spout:
    """A stream source.  Subclasses override :meth:`next_tuple`.

    ``next_tuple`` emits zero or more events via the collector and
    returns ``False`` when the source is exhausted (simulation drains all
    spouts to completion — experiments run a finite workload).
    """

    def open(self, task_index: int, n_tasks: int) -> None:
        """Per-task initialization (partitioning state etc.)."""

    def next_tuple(self, collector: OutputCollector) -> bool:
        raise NotImplementedError


class IteratorSpout(Spout):
    """A spout fed by a factory of per-task event iterators.

    ``make_iterator(task_index, n_tasks)`` returns this task's partition
    of the source stream (markers included — every partition carries the
    full marker sequence, as the compiled sources require).
    """

    def __init__(self, make_iterator: Callable[[int, int], Iterator[Event]]):
        self._make_iterator = make_iterator
        self._iterator: Optional[Iterator[Event]] = None

    def open(self, task_index: int, n_tasks: int) -> None:
        self._iterator = self._make_iterator(task_index, n_tasks)

    def next_tuple(self, collector: OutputCollector) -> bool:
        assert self._iterator is not None, "open() must run before next_tuple()"
        try:
            event = next(self._iterator)
        except StopIteration:
            return False
        collector.emit(event)
        return True


class Bolt:
    """A processing vertex.  Subclasses override :meth:`execute`.

    Bolts are *factories*: per-task state is created by :meth:`prepare`
    (returning the state object) and threaded through :meth:`execute`,
    so one Bolt object can back many task instances.
    """

    def prepare(self, task_index: int, n_tasks: int) -> Any:
        """Create per-task state."""
        return None

    def execute(self, state: Any, tup: StormTuple, collector: OutputCollector) -> None:
        raise NotImplementedError

    def snapshot_state(self, state: Any) -> Any:
        """Capture per-task state for an epoch-aligned checkpoint.

        The default deep copy is always correct; bolts with structured
        state override it (see :class:`~repro.compiler.glue.CompiledBolt`).
        """
        return copy.deepcopy(state)

    def restore_state(self, snapshot: Any) -> Any:
        """Rebuild per-task state from a :meth:`snapshot_state` result;
        the snapshot must survive for possible later restores."""
        return copy.deepcopy(snapshot)


class CaptureBolt(Bolt):
    """Sink bolt recording every received event (and its provenance).

    The simulator also reports sink deliveries in its
    :class:`~repro.storm.simulator.SimulationReport` (in global delivery
    order), which is the preferred way to read results; the bolt-local
    record is reset at the start of each run by :meth:`prepare`.
    """

    def __init__(self):
        self.received: List[StormTuple] = []

    def prepare(self, task_index: int, n_tasks: int) -> Any:
        if task_index == 0:
            self.received.clear()
        return None

    def execute(self, state, tup: StormTuple, collector: OutputCollector) -> None:
        self.received.append(tup)

    def snapshot_state(self, state: Any) -> Any:
        # The capture list lives on the instance (there is one task); a
        # checkpoint is just its length, and restore truncates back.
        return {"received": len(self.received)}

    def restore_state(self, snapshot: Any) -> Any:
        del self.received[snapshot["received"]:]
        return None

    def events(self) -> List[Event]:
        """The received events, in arrival order."""
        return [t.event for t in self.received]


@dataclass
class ComponentSpec:
    """Declaration of one spout or bolt."""

    name: str
    payload: Any  # Spout or Bolt
    parallelism: int
    is_spout: bool
    #: upstream component name -> grouping, in declaration order.
    inputs: Dict[str, Grouping] = field(default_factory=dict)


@dataclass
class Topology:
    """An immutable component graph ready for execution."""

    name: str
    components: Dict[str, ComponentSpec]

    def spouts(self) -> List[ComponentSpec]:
        return [c for c in self.components.values() if c.is_spout]

    def bolts(self) -> List[ComponentSpec]:
        return [c for c in self.components.values() if not c.is_spout]

    def downstream_of(self, component: str) -> List[Tuple[str, Grouping]]:
        """Consumers of ``component`` with their groupings."""
        result = []
        for spec in self.components.values():
            if component in spec.inputs:
                result.append((spec.name, spec.inputs[component]))
        return result

    def validate(self) -> None:
        for spec in self.components.values():
            if spec.parallelism < 1:
                raise TopologyError(f"{spec.name}: parallelism must be >= 1")
            for upstream in spec.inputs:
                if upstream not in self.components:
                    raise TopologyError(
                        f"{spec.name} consumes unknown component {upstream!r}"
                    )
                if self.components[upstream] is spec:
                    raise TopologyError(f"{spec.name} cannot consume itself")
        # Reject cycles (Storm allows them; our semantics does not).
        order: List[str] = []
        marks: Dict[str, int] = {}

        def visit(name: str) -> None:
            mark = marks.get(name, 0)
            if mark == 1:
                raise TopologyError("topology contains a cycle")
            if mark == 2:
                return
            marks[name] = 1
            for upstream in self.components[name].inputs:
                visit(upstream)
            marks[name] = 2
            order.append(name)

        for name in self.components:
            visit(name)


class _BoltDeclarer:
    """Fluent input declaration, as in Storm's API."""

    def __init__(self, spec: ComponentSpec, builder: "TopologyBuilder"):
        self._spec = spec
        self._builder = builder

    def shuffle_grouping(self, upstream: str) -> "_BoltDeclarer":
        return self.grouping(upstream, ShuffleGrouping())

    def fields_grouping(self, upstream: str, key_fn=None) -> "_BoltDeclarer":
        from repro.storm.groupings import FieldsGrouping

        return self.grouping(upstream, FieldsGrouping(key_fn))

    def global_grouping(self, upstream: str) -> "_BoltDeclarer":
        from repro.storm.groupings import GlobalGrouping

        return self.grouping(upstream, GlobalGrouping())

    def broadcast_grouping(self, upstream: str) -> "_BoltDeclarer":
        from repro.storm.groupings import BroadcastGrouping

        return self.grouping(upstream, BroadcastGrouping())

    def grouping(self, upstream: str, grouping: Grouping) -> "_BoltDeclarer":
        if upstream in self._spec.inputs:
            raise TopologyError(
                f"{self._spec.name} already consumes {upstream!r}"
            )
        self._spec.inputs[upstream] = grouping
        return self


class TopologyBuilder:
    """Builder mirroring ``org.apache.storm.topology.TopologyBuilder``."""

    def __init__(self, name: str = "topology"):
        self._name = name
        self._components: Dict[str, ComponentSpec] = {}

    def set_spout(self, name: str, spout: Spout, parallelism: int = 1) -> None:
        self._add(ComponentSpec(name, spout, parallelism, is_spout=True))

    def set_bolt(
        self, name: str, bolt: Bolt, parallelism: int = 1
    ) -> _BoltDeclarer:
        spec = ComponentSpec(name, bolt, parallelism, is_spout=False)
        self._add(spec)
        return _BoltDeclarer(spec, self)

    def _add(self, spec: ComponentSpec) -> None:
        if spec.name in self._components:
            raise TopologyError(f"duplicate component name {spec.name!r}")
        self._components[spec.name] = spec

    def build(self) -> Topology:
        topology = Topology(self._name, dict(self._components))
        topology.validate()
        return topology
