"""Tuples in flight between topology components.

A :class:`StormTuple` wraps one runtime event (a
:class:`~repro.operators.base.KV` or :class:`~repro.operators.base.Marker`)
with its provenance: which component and which task instance emitted it.
Provenance is what lets a receiving bolt treat each upstream task as a
separate logical channel — the basis of marker-aligned merging in the
compiled topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.operators.base import Event


@dataclass(frozen=True)
class StormTuple:
    """One tuple on the wire."""

    event: Event
    src_component: str
    src_task: int

    def channel(self) -> Any:
        """The logical upstream channel this tuple belongs to."""
        return (self.src_component, self.src_task)

    def __repr__(self):
        return f"Tuple({self.event!r} from {self.src_component}[{self.src_task}])"
