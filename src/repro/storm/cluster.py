"""Cluster model: machines, cores, and task placement.

The evaluation's unit of scaling is the virtual machine (2 CPUs each in
the paper).  A :class:`Machine` has a number of cores; each core executes
one tuple at a time.  A :class:`Placement` pins every task (component
instance) to a machine; :func:`round_robin_placement` reproduces the
default even spreading a Storm scheduler would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.storm.topology import Topology


@dataclass(frozen=True)
class Machine:
    """One worker machine."""

    machine_id: int
    cores: int = 2

    def __repr__(self):
        return f"Machine({self.machine_id}, cores={self.cores})"


class Cluster:
    """A set of worker machines, plus an implicit source/sink host.

    Spout and capture-sink tasks run on the implicit host (id ``-1``,
    unbounded cores) by default: the paper's sources (Kafka/generators)
    are not part of the 1..8 machines "assigned to the computation".
    """

    SOURCE_HOST = -1

    def __init__(self, n_machines: int, cores_per_machine: int = 2):
        if n_machines < 1:
            raise SimulationError("cluster needs at least one machine")
        self.machines: List[Machine] = [
            Machine(i, cores_per_machine) for i in range(n_machines)
        ]

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    def total_cores(self) -> int:
        return sum(m.cores for m in self.machines)


TaskId = Tuple[str, int]  # (component name, task index)


class Placement:
    """Assignment of tasks to machines."""

    def __init__(self):
        self._assignment: Dict[TaskId, int] = {}

    def assign(self, component: str, task_index: int, machine_id: int) -> None:
        self._assignment[(component, task_index)] = machine_id

    def machine_of(self, component: str, task_index: int) -> int:
        try:
            return self._assignment[(component, task_index)]
        except KeyError:
            raise SimulationError(
                f"task {component}[{task_index}] has no machine assignment"
            )

    def tasks_on(self, machine_id: int) -> List[TaskId]:
        return [t for t, m in self._assignment.items() if m == machine_id]

    def items(self):
        return self._assignment.items()


def _is_offloaded(spec, offload_sources: bool) -> bool:
    from repro.storm.topology import CaptureBolt

    return offload_sources and (
        spec.is_spout or isinstance(spec.payload, CaptureBolt)
    )


def round_robin_placement(
    topology: Topology, cluster: Cluster, offload_sources: bool = True
) -> Placement:
    """Spread bolt tasks across machines round-robin, component-major.

    With ``offload_sources`` (default) spout tasks and any
    :class:`~repro.storm.topology.CaptureBolt` sink tasks are placed on
    the implicit source host so that scaling experiments measure the
    processing stages only (matching the paper's setup).
    """
    placement = Placement()
    next_machine = 0
    for spec in topology.components.values():
        offloaded = _is_offloaded(spec, offload_sources)
        for task_index in range(spec.parallelism):
            if offloaded:
                placement.assign(spec.name, task_index, Cluster.SOURCE_HOST)
            else:
                placement.assign(spec.name, task_index, next_machine)
                next_machine = (next_machine + 1) % cluster.n_machines
    return placement


def packed_placement(
    topology: Topology, cluster: Cluster, offload_sources: bool = True
) -> Placement:
    """Fill machines one at a time (the anti-pattern baseline).

    Packs each component's tasks densely onto the lowest-numbered
    machines instead of spreading them.  A topology whose stage
    parallelism is below the machine count then leaves machines idle —
    useful as the negative control in placement experiments.
    """
    placement = Placement()
    for spec in topology.components.values():
        offloaded = _is_offloaded(spec, offload_sources)
        for task_index in range(spec.parallelism):
            if offloaded:
                placement.assign(spec.name, task_index, Cluster.SOURCE_HOST)
            else:
                machine = min(task_index // max(1, cluster.machines[0].cores),
                              cluster.n_machines - 1)
                placement.assign(spec.name, task_index, machine)
    return placement


def aligned_placement(
    topology: Topology, cluster: Cluster, offload_sources: bool = True
) -> Placement:
    """Co-locate equal task indexes of every component.

    Task ``i`` of every stage lands on machine ``i mod n``: when
    consecutive stages are hash-partitioned on the same key space with
    the same parallelism, task ``i`` tends to feed task ``i``, turning
    inter-stage hops into local deliveries (lower latency; lower remote
    CPU when the cost model charges it).
    """
    placement = Placement()
    for spec in topology.components.values():
        offloaded = _is_offloaded(spec, offload_sources)
        for task_index in range(spec.parallelism):
            if offloaded:
                placement.assign(spec.name, task_index, Cluster.SOURCE_HOST)
            else:
                placement.assign(
                    spec.name, task_index, task_index % cluster.n_machines
                )
    return placement
