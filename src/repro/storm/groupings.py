"""Stream groupings: how emitted tuples are partitioned across the tasks
of a consuming component.

Storm's built-in groupings (shuffle, fields, global, broadcast — see
Section 5) are provided, plus the :class:`MarkerAwareGrouping` family the
compiler substitutes for them: the paper notes that Storm's own groupings
"inhibit the propagation of the synchronization markers", so compiled
topologies use groupings that *broadcast every marker to all tasks* while
routing key-value pairs by hash, round-robin, or to a single task.

A grouping maps one emitted event to the list of destination task indexes
(within the consuming component).
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional

from repro.operators.base import Event, KV, Marker
from repro.operators.split import default_key_hash


class Grouping:
    """Base class.  ``select(event, n_tasks) -> [task indexes]``."""

    def bind(self, rng: random.Random) -> None:
        """Supply the seeded RNG (called once at topology start)."""
        self._rng = rng

    def select(self, event: Event, n_tasks: int) -> List[int]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class ShuffleGrouping(Grouping):
    """Storm's shuffle grouping: route each tuple to a random task.

    Markers are routed like any tuple — this is exactly why naive Storm
    parallelization loses marker alignment and ordering (Section 2).
    """

    def select(self, event: Event, n_tasks: int) -> List[int]:
        return [self._rng.randrange(n_tasks)]


class FieldsGrouping(Grouping):
    """Storm's fields grouping: partition by a key extracted per tuple."""

    def __init__(self, key_fn: Optional[Callable[[Event], Any]] = None):
        self._key_fn = key_fn or _default_key

    def select(self, event: Event, n_tasks: int) -> List[int]:
        return [default_key_hash(self._key_fn(event)) % n_tasks]


class GlobalGrouping(Grouping):
    """Storm's global grouping: the entire stream goes to task 0."""

    def select(self, event: Event, n_tasks: int) -> List[int]:
        return [0]


class BroadcastGrouping(Grouping):
    """Every tuple is replicated to all tasks."""

    def select(self, event: Event, n_tasks: int) -> List[int]:
        return list(range(n_tasks))


class MarkerAwareGrouping(Grouping):
    """Compiler grouping: markers broadcast, data routed by a policy.

    ``policy`` is one of:

    - ``"hash"`` — route ``KV`` by key hash (the ``HASH`` splitter);
    - ``"rr"`` — route ``KV`` round-robin (the ``RR`` splitter);
    - ``"global"`` — route all ``KV`` to task 0 (the ``UNQ`` splitter);
    - ``"affinity"`` — like ``rr`` but sticky per emitting task: each
      sender keeps a stable preferred target, minimizing cross-machine
      traffic (the load-routing optimization credited for Query I's
      slight edge over hand-written Storm in Section 6).
    """

    def __init__(self, policy: str = "hash",
                 key_hash: Optional[Callable[[Any], int]] = None):
        if policy not in ("hash", "rr", "global", "affinity"):
            raise ValueError(f"unknown marker-aware policy {policy!r}")
        self.policy = policy
        self._key_hash = key_hash or default_key_hash
        self._rr_next = 0
        self._affinity: Optional[int] = None

    def select(self, event: Event, n_tasks: int) -> List[int]:
        if isinstance(event, Marker):
            return list(range(n_tasks))
        if self.policy == "hash":
            return [self._key_hash(event.key) % n_tasks]
        if self.policy == "rr":
            target = self._rr_next
            self._rr_next = (target + 1) % n_tasks
            return [target]
        if self.policy == "affinity":
            if self._affinity is None:
                self._affinity = self._rng.randrange(n_tasks)
            return [self._affinity]
        return [0]  # "global"

    def describe(self) -> str:
        return f"MarkerAware({self.policy})"


def _default_key(event: Event) -> Any:
    if isinstance(event, KV):
        return event.key
    return "#"
