"""Throughput measurement on the simulated cluster.

Cost assembly: experiments declare per-*vertex* CPU costs; compiled
topologies fuse vertices into components named ``"A;B;C"``, so
:func:`fused_cost_model` resolves a component's cost as the sum of its
members' costs (a fused chain does all its members' work in one task).
Compiled components additionally pay a small per-tuple *glue* charge for
the merge-frontend bookkeeping the compiler generates; hand-crafted
bolts pay a slightly smaller charge for their manual marker tracking.
These charges (defaults below) are the substitution for the framework
overhead measured on the paper's testbed and are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import ObsContext
from repro.operators.base import Event
from repro.storm.batching import BatchingOptions
from repro.storm.cluster import Cluster
from repro.storm.costs import PerComponentCostModel
from repro.storm.simulator import SimulationReport, Simulator
from repro.storm.topology import Topology

#: Per-tuple charge for compiler-generated merge/alignment glue.
GENERATED_GLUE_COST = 0.25e-6
#: Per-tuple charge for hand-rolled marker tracking.
HANDCRAFTED_GLUE_COST = 0.15e-6
#: Default per-tuple cost for components without a declared cost.
DEFAULT_VERTEX_COST = 0.5e-6


def _resolve_vertex(name: str, vertex_costs: Dict[str, Any]) -> Optional[Any]:
    """Vertex cost by name, tolerating the compiler's ``.1`` dedup suffix."""
    if name in vertex_costs:
        return vertex_costs[name]
    base = name.rsplit(".", 1)[0]
    return vertex_costs.get(base)


class MarkerTriggerCost:
    """Cost entry for operators whose heavy work fires once per *aligned*
    marker.

    A task receives every marker timestamp once per upstream channel, but
    the blocking computation (window flush, k-means run, batch persist)
    triggers only when the timestamp completes across all channels —
    i.e. once per task per timestamp.  This entry charges ``trigger_cost``
    on the first delivery of a timestamp to a task and ``forward_cost``
    on repeats; key-value tuples cost ``item_cost``.

    Instances are stateful (they remember seen timestamps per task), so
    build a fresh instance per simulation (see the bench modules'
    ``vertex_costs_for`` factories).
    """

    def __init__(
        self,
        item_cost: float,
        trigger_cost: float,
        forward_cost: float = 0.5e-6,
    ):
        self.item_cost = item_cost
        self.trigger_cost = trigger_cost
        self.forward_cost = forward_cost
        self._seen: set = set()

    def cost(self, event: Event, task_index: int) -> float:
        from repro.operators.base import Marker

        if not isinstance(event, Marker):
            return self.item_cost
        key = (task_index, event.timestamp)
        if key in self._seen:
            return self.forward_cost
        self._seen.add(key)
        return self.trigger_cost

    def __call__(self, event: Event) -> float:  # plain-callable fallback
        return self.cost(event, 0)


class FusedCostModel(PerComponentCostModel):
    """Resolves fused component names ``"A;B;C"`` as sums of vertex costs."""

    def __init__(
        self,
        vertex_costs: Dict[str, Any],
        glue_cost: float = GENERATED_GLUE_COST,
        default: float = DEFAULT_VERTEX_COST,
    ):
        super().__init__({}, default=default)
        self._vertex_costs = dict(vertex_costs)
        self._glue = glue_cost
        self._resolved: Dict[str, Callable[[Event, int], float]] = {}

    def cpu_cost(self, component: str, event: Event, task_index: int = 0) -> float:
        fn = self._resolved.get(component)
        if fn is None:
            fn = self._build(component)
            self._resolved[component] = fn
        return fn(event, task_index)

    def vertex_cost(self, vertex: str, event: Event, task_index: int = 0) -> float:
        """Cost of one chain member processing one event (no glue)."""
        entry = _resolve_vertex(vertex, self._vertex_costs)
        if entry is None:
            entry = self._default
        if isinstance(entry, MarkerTriggerCost):
            return entry.cost(event, task_index)
        if callable(entry):
            return entry(event)
        return entry

    def glue_cost(self, component: str, event: Event) -> float:
        return self._glue

    def _build(self, component: str) -> Callable[[Event, int], float]:
        parts = component.split(";")
        entries = []
        for part in parts:
            cost = _resolve_vertex(part, self._vertex_costs)
            entries.append(self._default if cost is None else cost)
        glue = self._glue

        def total(event: Event, task_index: int) -> float:
            acc = glue
            for entry in entries:
                if isinstance(entry, MarkerTriggerCost):
                    acc += entry.cost(event, task_index)
                elif callable(entry):
                    acc += entry(event)
                else:
                    acc += entry
            return acc

        return total


def fused_cost_model(
    vertex_costs: Dict[str, Any],
    generated: bool = True,
    default: float = DEFAULT_VERTEX_COST,
) -> FusedCostModel:
    """Cost model for a compiled (``generated=True``) or hand-crafted
    topology over the same per-vertex cost table."""
    glue = GENERATED_GLUE_COST if generated else HANDCRAFTED_GLUE_COST
    return FusedCostModel(vertex_costs, glue_cost=glue, default=default)


@dataclass
class ScalingPoint:
    """One point of a throughput-vs-machines curve."""

    machines: int
    throughput: float
    makespan: float
    report: SimulationReport

    def __repr__(self):
        return f"ScalingPoint({self.machines} -> {self.throughput:,.0f} tup/s)"


def measure_throughput(
    topology: Topology,
    n_machines: int,
    cost_model,
    seed: int = 1,
    cores_per_machine: int = 2,
    obs: Optional[ObsContext] = None,
    batching: Optional[BatchingOptions] = None,
) -> SimulationReport:
    """Run one simulated execution and return its report.

    Pass an enabled ``obs`` context to collect the run's metrics and
    marker-epoch trace alongside the report (see :mod:`repro.obs`);
    pass ``batching`` to run the epoch-batched engine (see
    :mod:`repro.storm.batching`)."""
    cluster = Cluster(n_machines, cores_per_machine=cores_per_machine)
    simulator = Simulator(
        topology, cluster, cost_model=cost_model, seed=seed, obs=obs,
        batching=batching,
    )
    return simulator.run()


def sweep_machines(
    build: Callable[[int], Topology],
    cost_model_for: Callable[[int], Any],
    machines: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    seed: int = 1,
    cores_per_machine: int = 2,
) -> List[ScalingPoint]:
    """Throughput-vs-machines sweep.

    ``build(n)`` constructs the topology configured for ``n`` machines
    (parallelism hints scaled with the cluster, as the paper's
    experiments do); ``cost_model_for(n)`` supplies the cost model.
    """
    points: List[ScalingPoint] = []
    for n in machines:
        report = measure_throughput(
            build(n), n, cost_model_for(n), seed=seed,
            cores_per_machine=cores_per_machine,
        )
        points.append(
            ScalingPoint(n, report.throughput(), report.makespan, report)
        )
    return points
