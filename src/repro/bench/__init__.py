"""Shared experiment harness for the Section 6 reproductions.

- :mod:`repro.bench.harness` — cost-model assembly for compiled (fused)
  and hand-crafted topologies, throughput measurement on the simulated
  cluster, machine-count sweeps.
- :mod:`repro.bench.reporting` — renders the measured series as the
  rows/curves the paper's figures report.
"""

from repro.bench.harness import (
    fused_cost_model,
    measure_throughput,
    sweep_machines,
    MarkerTriggerCost,
    ScalingPoint,
)
from repro.bench.reporting import (
    ascii_chart,
    curve_summary,
    emit_bench_json,
    format_comparison_table,
    format_scaling_table,
    point_summary,
)

__all__ = [
    "fused_cost_model",
    "measure_throughput",
    "sweep_machines",
    "MarkerTriggerCost",
    "ScalingPoint",
    "format_scaling_table",
    "format_comparison_table",
    "ascii_chart",
    "curve_summary",
    "point_summary",
    "emit_bench_json",
]
