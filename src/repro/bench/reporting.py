"""Rendering of experiment results in the paper's figure shapes.

The paper's Figure 4 plots throughput (million tuples/sec) against
machines (1..8) with two curves — hand-crafted (blue) and
transduction-based (orange).  :func:`format_comparison_table` prints the
same series as rows; :func:`format_scaling_table` prints a single curve
(Figure 6).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.harness import ScalingPoint
from repro.obs.metrics import percentile


def _mtps(throughput: float) -> str:
    """Throughput in million tuples/sec, 3 decimals (the figure axis)."""
    return f"{throughput / 1e6:.3f}"


def format_scaling_table(title: str, points: Sequence[ScalingPoint]) -> str:
    """One-curve table: machines vs throughput (Figure 6 shape)."""
    lines = [title, "machines  throughput(Mtuples/s)"]
    for point in points:
        lines.append(f"{point.machines:>8}  {_mtps(point.throughput):>21}")
    return "\n".join(lines)


def format_comparison_table(
    title: str,
    handcrafted: Sequence[ScalingPoint],
    generated: Sequence[ScalingPoint],
) -> str:
    """Two-curve table: the Figure 4 shape, plus the generated/hand ratio."""
    lines = [
        title,
        "machines  handcrafted(M/s)  generated(M/s)  generated/handcrafted",
    ]
    for hand, gen in zip(handcrafted, generated):
        assert hand.machines == gen.machines
        ratio = gen.throughput / hand.throughput if hand.throughput else float("nan")
        lines.append(
            f"{hand.machines:>8}  {_mtps(hand.throughput):>16}  "
            f"{_mtps(gen.throughput):>14}  {ratio:>21.3f}"
        )
    return "\n".join(lines)


def scaling_factor(points: Sequence[ScalingPoint]) -> float:
    """Throughput gain from the first to the last machine count."""
    if not points or points[0].throughput == 0:
        return float("nan")
    return points[-1].throughput / points[0].throughput


def ratios(
    handcrafted: Sequence[ScalingPoint], generated: Sequence[ScalingPoint]
) -> List[float]:
    """Per-machine-count generated/hand-crafted throughput ratios."""
    return [
        g.throughput / h.throughput
        for h, g in zip(handcrafted, generated)
        if h.throughput
    ]


def ascii_chart(
    points: Sequence[ScalingPoint], width: int = 40, title: str = ""
) -> str:
    """A terminal bar chart of a scaling curve (one bar per machine
    count, length proportional to throughput) — the CLI's stand-in for
    the paper's line plots."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max((p.throughput for p in points), default=0.0)
    if peak <= 0:
        return "\n".join(lines + ["(no data)"])
    for point in points:
        bar = "#" * max(1, int(round(width * point.throughput / peak)))
        lines.append(
            f"{point.machines:>3} | {bar:<{width}} {_mtps(point.throughput)} M/s"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Machine-readable benchmark emission (BENCH_*.json)
#
# Every figure benchmark writes its measured series through here so the
# perf trajectory is tracked across PRs.  Files are merge-updated: the
# per-query Figure 4 tests each contribute their own top-level key to
# one BENCH_fig4.json.

#: Format marker for downstream tooling.
BENCH_SCHEMA = "repro-bench-v1"


def point_summary(
    point: ScalingPoint, sinks: Optional[Sequence[str]] = None
) -> Dict[str, Any]:
    """One scaling point as JSON-clean numbers.

    Marker latency percentiles pool every sink's per-timestamp
    end-to-end latencies (see ``SimulationReport.marker_latencies``)."""
    report = point.report
    latencies: List[float] = []
    for sink in (sinks if sinks is not None else sorted(report.sink_events)):
        latencies.extend(report.marker_latencies(sink).values())
    return {
        "machines": point.machines,
        "throughput_tps": point.throughput,
        "makespan_s": point.makespan,
        "mean_utilization": report.mean_utilization(),
        "marker_latency_p50_s": percentile(latencies, 50),
        "marker_latency_p99_s": percentile(latencies, 99),
        "marker_epochs": len(latencies),
    }


def curve_summary(
    points: Sequence[ScalingPoint], sinks: Optional[Sequence[str]] = None
) -> List[Dict[str, Any]]:
    """A whole throughput-vs-machines curve as point summaries."""
    return [point_summary(point, sinks) for point in points]


def bench_output_dir() -> Path:
    """Where BENCH_*.json land: ``$REPRO_BENCH_DIR`` or the cwd."""
    return Path(os.environ.get("REPRO_BENCH_DIR", "."))


def emit_bench_json(
    filename: str,
    entries: Dict[str, Any],
    out_dir: Optional[Path] = None,
) -> Path:
    """Merge ``entries`` into ``filename`` (read-modify-write).

    Merging lets parametrized benchmarks (one pytest case per query)
    accumulate into a single file; an unparsable existing file is
    replaced rather than crashing the benchmark."""
    directory = Path(out_dir) if out_dir is not None else bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / filename
    data: Dict[str, Any] = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                data = loaded
        except ValueError:
            data = {}
    data.update(entries)
    data["schema"] = BENCH_SCHEMA
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
