"""Rendering of experiment results in the paper's figure shapes.

The paper's Figure 4 plots throughput (million tuples/sec) against
machines (1..8) with two curves — hand-crafted (blue) and
transduction-based (orange).  :func:`format_comparison_table` prints the
same series as rows; :func:`format_scaling_table` prints a single curve
(Figure 6).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bench.harness import ScalingPoint


def _mtps(throughput: float) -> str:
    """Throughput in million tuples/sec, 3 decimals (the figure axis)."""
    return f"{throughput / 1e6:.3f}"


def format_scaling_table(title: str, points: Sequence[ScalingPoint]) -> str:
    """One-curve table: machines vs throughput (Figure 6 shape)."""
    lines = [title, "machines  throughput(Mtuples/s)"]
    for point in points:
        lines.append(f"{point.machines:>8}  {_mtps(point.throughput):>21}")
    return "\n".join(lines)


def format_comparison_table(
    title: str,
    handcrafted: Sequence[ScalingPoint],
    generated: Sequence[ScalingPoint],
) -> str:
    """Two-curve table: the Figure 4 shape, plus the generated/hand ratio."""
    lines = [
        title,
        "machines  handcrafted(M/s)  generated(M/s)  generated/handcrafted",
    ]
    for hand, gen in zip(handcrafted, generated):
        assert hand.machines == gen.machines
        ratio = gen.throughput / hand.throughput if hand.throughput else float("nan")
        lines.append(
            f"{hand.machines:>8}  {_mtps(hand.throughput):>16}  "
            f"{_mtps(gen.throughput):>14}  {ratio:>21.3f}"
        )
    return "\n".join(lines)


def scaling_factor(points: Sequence[ScalingPoint]) -> float:
    """Throughput gain from the first to the last machine count."""
    if not points or points[0].throughput == 0:
        return float("nan")
    return points[-1].throughput / points[0].throughput


def ratios(
    handcrafted: Sequence[ScalingPoint], generated: Sequence[ScalingPoint]
) -> List[float]:
    """Per-machine-count generated/hand-crafted throughput ratios."""
    return [
        g.throughput / h.throughput
        for h, g in zip(handcrafted, generated)
        if h.throughput
    ]


def ascii_chart(
    points: Sequence[ScalingPoint], width: int = 40, title: str = ""
) -> str:
    """A terminal bar chart of a scaling curve (one bar per machine
    count, length proportional to throughput) — the CLI's stand-in for
    the paper's line plots."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max((p.throughput for p in points), default=0.0)
    if peak <= 0:
        return "\n".join(lines + ["(no data)"])
    for point in points:
        bar = "#" * max(1, int(round(width * point.throughput / peak)))
        lines.append(
            f"{point.machines:>3} | {bar:<{width}} {_mtps(point.throughput)} M/s"
        )
    return "\n".join(lines)
