"""A persisted key-value store (Query II's aggregate persistence)."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple


class KeyValueStore:
    """Key-value persistence with read/write accounting.

    The store is the substitution for "intermediate results are persisted
    in a database" (Query II): per-key aggregates are written here on
    every marker, and the experiment's cost model charges each write.
    """

    def __init__(self, name: str = "store"):
        self.name = name
        self._data: Dict[Any, Any] = {}
        self.write_count = 0
        self.read_count = 0

    def put(self, key: Any, value: Any) -> None:
        self.write_count += 1
        self._data[key] = value

    def get(self, key: Any, default: Any = None) -> Any:
        self.read_count += 1
        return self._data.get(key, default)

    def delete(self, key: Any) -> None:
        self.write_count += 1
        self._data.pop(key, None)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(dict(self._data).items())

    def snapshot(self) -> Dict[Any, Any]:
        """A copy of the current contents (for assertions in tests)."""
        return dict(self._data)

    def __len__(self):
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data
