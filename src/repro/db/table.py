"""Schema-checked in-memory tables with hash indexes.

Minimal but honest relational pieces: enough to express the evaluation's
enrichment joins (ad -> campaign, sensor -> location, plug -> device
type) with per-lookup accounting, without pretending to be a full DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """One column: a name and an optional type constraint."""

    name: str
    type: Optional[type] = None

    def check(self, value: Any) -> None:
        if self.type is not None and not isinstance(value, self.type):
            raise SchemaError(
                f"column {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__}"
            )


class Schema:
    """An ordered set of columns."""

    def __init__(self, columns: Sequence[Column]):
        self.columns = list(columns)
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise SchemaError("duplicate column names")

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}")

    def check_row(self, row: Tuple[Any, ...]) -> None:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} does not match schema "
                f"arity {len(self.columns)}"
            )
        for column, value in zip(self.columns, row):
            column.check(value)

    def names(self) -> List[str]:
        return [c.name for c in self.columns]


class Table:
    """Rows plus hash indexes; all reads are counted for cost accounting."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.rows: List[Tuple[Any, ...]] = []
        self._indexes: Dict[str, Dict[Any, List[int]]] = {}
        self.lookup_count = 0
        self.scan_count = 0

    def insert(self, row: Sequence[Any]) -> None:
        row = tuple(row)
        self.schema.check_row(row)
        position = len(self.rows)
        self.rows.append(row)
        for column, index in self._indexes.items():
            index.setdefault(row[self.schema.position(column)], []).append(position)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def create_index(self, column: str) -> None:
        """Build (or rebuild) a hash index on one column."""
        position = self.schema.position(column)
        index: Dict[Any, List[int]] = {}
        for i, row in enumerate(self.rows):
            index.setdefault(row[position], []).append(i)
        self._indexes[column] = index

    def lookup(self, column: str, value: Any) -> List[Tuple[Any, ...]]:
        """Indexed point lookup; falls back to a scan without an index."""
        if column in self._indexes:
            self.lookup_count += 1
            return [self.rows[i] for i in self._indexes[column].get(value, [])]
        self.scan_count += 1
        position = self.schema.position(column)
        return [row for row in self.rows if row[position] == value]

    def lookup_one(self, column: str, value: Any) -> Optional[Tuple[Any, ...]]:
        """First matching row or ``None``."""
        index = self._indexes.get(column)
        if index is not None:
            # Indexed fast path: skip materializing the full match list
            # (point lookups dominate the stream-table join hot loop).
            self.lookup_count += 1
            positions = index.get(value)
            return self.rows[positions[0]] if positions else None
        rows = self.lookup(column, value)
        return rows[0] if rows else None

    def select(self, predicate: Callable[[Tuple[Any, ...]], bool]) -> List[Tuple[Any, ...]]:
        self.scan_count += 1
        return [row for row in self.rows if predicate(row)]

    def project(self, row: Tuple[Any, ...], columns: Sequence[str]) -> Tuple[Any, ...]:
        return tuple(row[self.schema.position(c)] for c in columns)

    def join(
        self, other: "Table", self_column: str, other_column: str
    ) -> List[Tuple[Any, ...]]:
        """Hash join (for completeness and tests; streams use lookups)."""
        other_pos = other.schema.position(other_column)
        self_pos = self.schema.position(self_column)
        build: Dict[Any, List[Tuple[Any, ...]]] = {}
        for row in other.rows:
            build.setdefault(row[other_pos], []).append(row)
        self.scan_count += 1
        result: List[Tuple[Any, ...]] = []
        for row in self.rows:
            for match in build.get(row[self_pos], []):
                result.append(row + match)
        return result

    def __len__(self):
        return len(self.rows)
