"""The "Derby" facade: the database the evaluation queries talk to.

Bundles named tables and key-value stores and exposes the two operations
the queries perform — point lookups for enrichment and keyed persists —
with total operation counts.  Experiments attach a per-operation cost in
their :class:`~repro.storm.costs.PerComponentCostModel`; the counts here
let tests assert that the expensive path really ran.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.db.store import KeyValueStore
from repro.db.table import Column, Schema, Table


class Derby:
    """An in-memory stand-in for the Apache Derby instance of Section 6."""

    def __init__(self):
        self.tables: Dict[str, Table] = {}
        self.stores: Dict[str, KeyValueStore] = {}

    # ------------------------------------------------------------------
    # DDL.
    # ------------------------------------------------------------------

    def create_table(
        self, name: str, columns: Sequence[Tuple[str, Optional[type]]]
    ) -> Table:
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, Schema([Column(n, t) for n, t in columns]))
        self.tables[name] = table
        return table

    def create_store(self, name: str) -> KeyValueStore:
        if name in self.stores:
            raise SchemaError(f"store {name!r} already exists")
        store = KeyValueStore(name)
        self.stores[name] = store
        return store

    # ------------------------------------------------------------------
    # The operations streams perform.
    # ------------------------------------------------------------------

    def lookup(self, table: str, column: str, value: Any) -> Optional[Tuple[Any, ...]]:
        """Indexed point lookup returning the first match (or None)."""
        return self.tables[table].lookup_one(column, value)

    def persist(self, store: str, key: Any, value: Any) -> None:
        """Persist one keyed aggregate (Query II's write path)."""
        self.stores[store].put(key, value)

    def total_lookups(self) -> int:
        return sum(t.lookup_count + t.scan_count for t in self.tables.values())

    def total_writes(self) -> int:
        return sum(s.write_count for s in self.stores.values())
