"""An in-memory relational substrate (the Apache Derby substitution).

The evaluation queries use a database in two roles: enrichment lookups
(ads -> campaigns, sensors -> locations) inside stateless stages, and
persistence of intermediate aggregates (Query II).  This package provides
exactly those capabilities:

- :class:`Table` — schema-checked rows with hash indexes and simple
  select/join operations;
- :class:`KeyValueStore` — a persisted key-value map with write counts;
- :class:`Derby` — a facade bundling tables and stores behind lookup /
  persist methods whose invocation counts feed the cost models (the
  simulated time a lookup costs is charged by the experiment's
  :class:`~repro.storm.costs.PerComponentCostModel`).
"""

from repro.db.table import Table, Schema, Column
from repro.db.store import KeyValueStore
from repro.db.derby import Derby

__all__ = ["Table", "Schema", "Column", "KeyValueStore", "Derby"]
