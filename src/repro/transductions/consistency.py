"""(X, Y)-consistency of data-string transductions (Definition 3.5).

``f : A* -> B*`` is (X, Y)-consistent when ``u =_D v`` implies
``lift(f)(u) =_E lift(f)(v)``.  Consistency over all inputs is undecidable
for arbitrary code, so the checker here is a *refuter*: it samples random
dependence-respecting shuffles of given (or generated) inputs and compares
the cumulative outputs as traces.  A found violation is definitive (with a
concrete witness); absence of violations over many trials is evidence, and
for the Section 4 templates Theorem 4.2 supplies the actual proof.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.errors import ConsistencyError
from repro.traces.normal_form import random_equivalent_shuffle
from repro.traces.trace import DataTrace
from repro.traces.trace_type import DataTraceType
from repro.transductions.string_transduction import StringTransduction


@dataclass
class ConsistencyViolation:
    """A concrete Definition 3.5 counterexample.

    Carries the trace types and the checker seed alongside the witness
    streams, so a violation pasted from a CI log identifies the exact
    (X, Y)-consistency instance and reproduces without rerunning blind.
    """

    input_a: List[Any]
    input_b: List[Any]
    output_a: List[Any]
    output_b: List[Any]
    input_type: Optional[DataTraceType] = None
    output_type: Optional[DataTraceType] = None
    seed: Optional[int] = None

    def __str__(self):
        header = "consistency violation"
        if self.input_type is not None or self.output_type is not None:
            header += (
                f" of ({self.input_type!r}, {self.output_type!r})-consistency"
            )
        if self.seed is not None:
            header += f" [seed={self.seed}]"
        return (
            f"{header}:\n"
            f"  input A : {self.input_a}\n"
            f"  input B : {self.input_b}\n"
            f"  output A: {self.output_a}\n"
            f"  output B: {self.output_b}"
        )


class ConsistencyChecker:
    """Randomized refuter for (X, Y)-consistency.

    Parameters
    ----------
    input_type, output_type:
        The trace types ``X`` and ``Y``.  Items flowing through the
        transduction must be :class:`~repro.traces.items.Item` values of
        these types.
    seed:
        RNG seed; runs are deterministic given the seed.
    """

    def __init__(
        self,
        input_type: DataTraceType,
        output_type: DataTraceType,
        seed: int = 0,
    ):
        self.input_type = input_type
        self.output_type = output_type
        self.seed = seed
        self._rng = random.Random(seed)

    def check_on_input(
        self,
        transduction: StringTransduction,
        items: Sequence[Any],
        shuffles: int = 10,
    ) -> Optional[ConsistencyViolation]:
        """Compare outputs across random equivalent shuffles of ``items``.

        Returns a violation witness or ``None`` when all sampled shuffles
        produced trace-equivalent cumulative outputs.
        """
        base = list(items)
        base_out = transduction.run(base)
        base_trace = DataTrace(self.output_type, base_out)
        for _ in range(shuffles):
            variant = random_equivalent_shuffle(self.input_type, base, self._rng)
            variant_out = transduction.run(variant)
            if DataTrace(self.output_type, variant_out) != base_trace:
                return ConsistencyViolation(
                    base, variant, base_out, variant_out,
                    input_type=self.input_type,
                    output_type=self.output_type,
                    seed=self.seed,
                )
        return None

    def check(
        self,
        transduction: StringTransduction,
        inputs: Iterable[Sequence[Any]],
        shuffles: int = 10,
    ) -> Optional[ConsistencyViolation]:
        """Run :meth:`check_on_input` over a suite of inputs."""
        for items in inputs:
            violation = self.check_on_input(transduction, items, shuffles)
            if violation is not None:
                return violation
        return None

    def check_generated(
        self,
        transduction: StringTransduction,
        n_inputs: int = 5,
        shuffles: int = 10,
        blocks: int = 3,
        max_block_size: int = 6,
    ) -> Optional[ConsistencyViolation]:
        """:meth:`check` over seeded random keyed sample streams.

        Inputs come from the same generator the operator validator uses
        (:mod:`repro.operators.sampling`), drawn from this checker's RNG
        so the whole session is reproducible from its seed.
        """
        from repro.operators.sampling import random_sample_items

        inputs = [
            random_sample_items(
                self._rng, blocks=blocks, max_block_size=max_block_size
            )
            for _ in range(n_inputs)
        ]
        return self.check(transduction, inputs, shuffles=shuffles)


def check_consistency(
    transduction: StringTransduction,
    input_type: DataTraceType,
    output_type: DataTraceType,
    inputs: Iterable[Sequence[Any]],
    shuffles: int = 10,
    seed: int = 0,
    raise_on_violation: bool = True,
) -> Optional[ConsistencyViolation]:
    """Convenience wrapper around :class:`ConsistencyChecker`.

    With ``raise_on_violation`` (the default) a found counterexample is
    raised as :class:`~repro.errors.ConsistencyError` carrying the
    witness; otherwise it is returned.
    """
    checker = ConsistencyChecker(input_type, output_type, seed=seed)
    violation = checker.check(transduction, inputs, shuffles=shuffles)
    if violation is not None and raise_on_violation:
        raise ConsistencyError(str(violation), witness=violation)
    return violation
