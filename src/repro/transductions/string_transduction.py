"""Data-string transductions (Section 3.2).

A data-string transduction with input type ``A`` and output type ``B`` is
a function ``f : A* -> B*`` where ``f(u)`` is the output increment emitted
right after consuming the last item of ``u`` (the paper's "one-step
description").  The lifting ``lift(f)(a1..an) = f(eps) . f(a1) . ... .
f(a1..an)`` is the cumulative output and is monotone w.r.t. prefixes.

Implementations subclass :class:`StringTransduction` and define either

- :meth:`StringTransduction.step` — stateful one-step processing over an
  instance-local state created by :meth:`initial` (the natural style for
  streaming code); or
- a pure ``f`` via :class:`FunctionTransduction` wrapping an explicit
  ``f : sequence -> sequence`` (the natural style for specifications,
  e.g. Example 3.4).

Both expose the same interface: :meth:`on_prefix` (``f``),
:meth:`cumulative` (``lift(f)``), and :meth:`run` (stream evaluation).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence, Tuple


class StringTransduction:
    """Base class: a stateful sequential stream processor.

    Subclasses override :meth:`initial` to create per-run state and
    :meth:`step` to consume one item and return the output increment.
    ``f(eps)`` is modelled by :meth:`on_start`, which defaults to no
    output (the common case; Example 3.4 has ``f(eps) = eps``).
    """

    #: Optional trace types used by consistency checking; subclasses or
    #: callers may set these.
    input_type = None
    output_type = None

    def initial(self) -> Any:
        """Create the state used by a fresh run."""
        return None

    def on_start(self, state: Any) -> Sequence[Any]:
        """The output ``f(eps)`` emitted before any input arrives."""
        return ()

    def step(self, state: Any, item: Any) -> Sequence[Any]:
        """Consume ``item``, mutate/replace state via return convention.

        The default convention is *mutable state*: implementations mutate
        ``state`` in place and return the output increment.  (Immutable
        state can be modelled by storing a one-element list.)
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------

    def run(self, items: Iterable[Any]) -> List[Any]:
        """The cumulative output ``lift(f)(items)`` of a complete run."""
        state = self.initial()
        out: List[Any] = list(self.on_start(state))
        for item in items:
            out.extend(self.step(state, item))
        return out

    def increments(self, items: Iterable[Any]) -> List[Tuple[Any, List[Any]]]:
        """Pairs ``(item, f(prefix ending at item))`` — the one-step view.

        The leading ``f(eps)`` increment is reported with item ``None``.
        """
        state = self.initial()
        result: List[Tuple[Any, List[Any]]] = [(None, list(self.on_start(state)))]
        for item in items:
            result.append((item, list(self.step(state, item))))
        return result

    def on_prefix(self, items: Sequence[Any]) -> List[Any]:
        """``f(items)``: the increment emitted on the *last* item of
        ``items`` (``f(eps)`` when empty)."""
        state = self.initial()
        out = list(self.on_start(state))
        if not items:
            return out
        for item in items[:-1]:
            self.step(state, item)
        return list(self.step(state, items[-1]))

    def cumulative(self, items: Sequence[Any]) -> List[Any]:
        """``lift(f)(items)`` — alias of :meth:`run` for sequences."""
        return self.run(items)


class FunctionTransduction(StringTransduction):
    """A string transduction given by an explicit pure ``f : A* -> B*``.

    ``f`` receives the whole input prefix (a tuple) and returns the output
    increment for its last item.  This matches the paper's mathematical
    presentation directly (Example 3.4) at the cost of re-reading the
    prefix on every step, so it is intended for specifications and tests.
    """

    def __init__(self, f: Callable[[Tuple[Any, ...]], Sequence[Any]],
                 input_type=None, output_type=None):
        self._f = f
        self.input_type = input_type
        self.output_type = output_type

    def initial(self) -> List[Any]:
        return []

    def on_start(self, state: List[Any]) -> Sequence[Any]:
        return tuple(self._f(()))

    def step(self, state: List[Any], item: Any) -> Sequence[Any]:
        state.append(item)
        return tuple(self._f(tuple(state)))


def lift(transduction: StringTransduction) -> Callable[[Sequence[Any]], List[Any]]:
    """The lifting ``lift(f)``: map an input sequence to cumulative output.

    ``lift(f)`` is monotone w.r.t. the prefix order (the paper's key
    observation enabling the trace denotation).
    """
    return transduction.cumulative
