"""The converse direction of the denotation theorem.

Section 3.3 cites [13] for the fact that the data-trace transductions
``X -> Y`` are *exactly* the (X,Y)-denotations of consistent data-string
transductions.  The forward direction (consistent f => trace function)
is :mod:`repro.transductions.trace_transduction`; this module makes the
converse executable:

Given any monotone trace function ``beta`` (as an oracle on
:class:`~repro.traces.trace.DataTrace` values), :func:`implement`
constructs a string transduction ``f`` whose lifting realizes ``beta``:
after consuming a prefix ``u``, the cumulative output of ``f`` is a
representative of ``beta([u])``.  The construction is the canonical one:

    lift(f)(u a)  =  lift(f)(u) . w      where  [lift(f)(u)] . [w] = beta([u a])

— the increment is the *residual* of the new output trace after the
output already emitted.  Monotonicity of ``beta`` guarantees the
residual exists; consistency of ``f`` follows because cumulative outputs
only depend on ``beta([u])`` up to the already-emitted representative.

The construction evaluates ``beta`` once per input item on the whole
prefix, so it is a specification-to-implementation bridge for tests and
small models, not a production operator.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.errors import ConsistencyError
from repro.traces.trace import DataTrace
from repro.traces.trace_type import DataTraceType
from repro.transductions.string_transduction import StringTransduction


class ImplementedTransduction(StringTransduction):
    """The canonical sequential implementation of a trace function."""

    def __init__(
        self,
        beta: Callable[[DataTrace], DataTrace],
        input_type: DataTraceType,
        output_type: DataTraceType,
    ):
        self.beta = beta
        self.input_type = input_type
        self.output_type = output_type

    def initial(self):
        return {
            "consumed": [],          # raw input items so far
            "emitted": DataTrace(self.output_type, ()),
        }

    def on_start(self, state):
        target = self.beta(DataTrace(self.input_type, ()))
        return self._advance_to(state, target)

    def step(self, state, item):
        state["consumed"].append(item)
        target = self.beta(DataTrace(self.input_type, state["consumed"]))
        return self._advance_to(state, target)

    def _advance_to(self, state, target: DataTrace) -> List[Any]:
        residual = state["emitted"].residual_in(target)
        if residual is None:
            raise ConsistencyError(
                "the supplied trace function is not monotone: "
                f"{state['emitted']!r} is not a prefix of {target!r}"
            )
        increment = list(residual.canonical)
        state["emitted"] = state["emitted"] + residual
        return increment


def implement(
    beta: Callable[[DataTrace], DataTrace],
    input_type: DataTraceType,
    output_type: DataTraceType,
) -> ImplementedTransduction:
    """Construct a consistent string transduction realizing ``beta``.

    ``beta`` must be a monotone function on traces (a data-trace
    transduction); non-monotonicity is detected at the first offending
    step and raised as :class:`~repro.errors.ConsistencyError`.
    """
    return ImplementedTransduction(beta, input_type, output_type)
