"""Streaming and parallel composition of transductions (Theorem 4.3).

``compose(f, g)`` is the streaming composition ``f >> g``: every output
increment of ``f`` is fed to ``g`` immediately, so the composite is again
a string transduction.  ``parallel(f, g)`` is ``f || g`` over disjointly
tagged inputs: items are routed to the operand whose input type admits
their tag, and outputs are interleaved as they are produced.

Composition preserves consistency: if ``f`` is (X, Y)-consistent and
``g`` is (Y, Z)-consistent then ``f >> g`` is (X, Z)-consistent, which is
what lets the DAG semantics compose vertex denotations edge by edge.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.transductions.string_transduction import StringTransduction


class ComposedTransduction(StringTransduction):
    """Streaming composition ``first >> second``."""

    def __init__(self, first: StringTransduction, second: StringTransduction):
        self.first = first
        self.second = second
        self.input_type = first.input_type
        self.output_type = second.output_type

    def initial(self):
        return (self.first.initial(), self.second.initial())

    def on_start(self, state):
        first_state, second_state = state
        out: List[Any] = list(self.second.on_start(second_state))
        for intermediate in self.first.on_start(first_state):
            out.extend(self.second.step(second_state, intermediate))
        return out

    def step(self, state, item):
        first_state, second_state = state
        out: List[Any] = []
        for intermediate in self.first.step(first_state, item):
            out.extend(self.second.step(second_state, intermediate))
        return out


class ParallelTransduction(StringTransduction):
    """Parallel composition ``left || right`` with a routing predicate.

    ``route_left(item)`` decides which operand consumes each input item.
    Output increments are concatenated left-then-right per step; under the
    intended output types (disjoint tags, cross-independent) the
    concatenation order is immaterial at the trace level.
    """

    def __init__(
        self,
        left: StringTransduction,
        right: StringTransduction,
        route_left: Callable[[Any], bool],
        broadcast: Optional[Callable[[Any], bool]] = None,
    ):
        self.left = left
        self.right = right
        self.route_left = route_left
        self.broadcast = broadcast or (lambda item: False)

    def initial(self):
        return (self.left.initial(), self.right.initial())

    def on_start(self, state):
        left_state, right_state = state
        return list(self.left.on_start(left_state)) + list(
            self.right.on_start(right_state)
        )

    def step(self, state, item):
        left_state, right_state = state
        out: List[Any] = []
        if self.broadcast(item):
            out.extend(self.left.step(left_state, item))
            out.extend(self.right.step(right_state, item))
        elif self.route_left(item):
            out.extend(self.left.step(left_state, item))
        else:
            out.extend(self.right.step(right_state, item))
        return out


def compose(*stages: StringTransduction) -> StringTransduction:
    """Streaming composition of one or more stages, left to right."""
    if not stages:
        raise ValueError("compose requires at least one stage")
    result = stages[0]
    for stage in stages[1:]:
        result = ComposedTransduction(result, stage)
    return result


def parallel(
    left: StringTransduction,
    right: StringTransduction,
    route_left: Callable[[Any], bool],
    broadcast: Optional[Callable[[Any], bool]] = None,
) -> ParallelTransduction:
    """Parallel composition with explicit routing (see class docs)."""
    return ParallelTransduction(left, right, route_left, broadcast)
