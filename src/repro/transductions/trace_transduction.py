"""Data-trace transductions (Section 3.3).

A data-trace transduction ``beta : X -> Y`` is a monotone function from
input traces to output traces; it is the denotational semantics of a
stream processing system.  Every (X, Y)-consistent string transduction
``f`` has a denotation ``beta([u]) = [lift(f)(u)]``, and conversely every
trace transduction arises this way ([13], cited in the paper).

:class:`TraceTransduction` packages a string transduction with its trace
types and exposes the trace-level function, plus empirical monotonicity
checking used by property tests.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Optional, Sequence

from repro.errors import ConsistencyError
from repro.traces.trace import DataTrace
from repro.traces.trace_type import DataTraceType
from repro.transductions.consistency import ConsistencyChecker
from repro.transductions.string_transduction import StringTransduction


class TraceTransduction:
    """The (X, Y)-denotation of a consistent string transduction.

    Parameters
    ----------
    transduction:
        The sequential implementation ``f``.
    input_type, output_type:
        The trace types ``X`` and ``Y``.
    verify_on:
        Optional suite of input sequences; when given, consistency is
        spot-checked at construction (Definition 3.5) and a violation
        raises :class:`~repro.errors.ConsistencyError`.
    """

    def __init__(
        self,
        transduction: StringTransduction,
        input_type: DataTraceType,
        output_type: DataTraceType,
        verify_on: Optional[Iterable[Sequence[Any]]] = None,
        seed: int = 0,
    ):
        self.transduction = transduction
        self.input_type = input_type
        self.output_type = output_type
        if verify_on is not None:
            checker = ConsistencyChecker(input_type, output_type, seed=seed)
            violation = checker.check(transduction, verify_on)
            if violation is not None:
                raise ConsistencyError(str(violation), witness=violation)

    def apply(self, trace: DataTrace) -> DataTrace:
        """``beta([u]) = [lift(f)(u)]`` on any representative of ``[u]``."""
        output_items = self.transduction.run(trace.canonical)
        return DataTrace(self.output_type, output_items)

    def apply_sequence(self, items: Sequence[Any]) -> DataTrace:
        """Apply to a raw representative sequence."""
        return self.apply(DataTrace(self.input_type, items))

    def __call__(self, trace: DataTrace) -> DataTrace:
        return self.apply(trace)

    # ------------------------------------------------------------------
    # Property checks.
    # ------------------------------------------------------------------

    def check_monotone_on(
        self, items: Sequence[Any], samples: int = 5, seed: int = 0
    ) -> bool:
        """Spot-check monotonicity: for random prefix splits ``u <= uv``,
        verify ``beta(u) <= beta(uv)`` in the trace prefix order."""
        rng = random.Random(seed)
        full = DataTrace(self.input_type, items)
        full_out = self.apply(full)
        for _ in range(samples):
            cut = rng.randint(0, len(items))
            prefix = DataTrace(self.input_type, items[:cut])
            if not self.apply(prefix).is_prefix_of(full_out):
                return False
        return True
