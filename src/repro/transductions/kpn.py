"""Acyclic Kahn Process Networks, and their data-trace-type encoding.

Section 3.3 (Example 3.3) and the related-work discussion position the
data-trace transduction model as a *generalization* of acyclic Kahn
process networks [Kahn 1974]: a KPN has finitely many independent
linearly ordered input/output channels — exactly the traces of
:func:`repro.traces.trace_type.channels_type` — and each KPN denotes a
monotone (indeed continuous) function from input channel histories to
output channel histories, i.e. a data-trace transduction of that type.

This module makes the claim executable:

- :class:`KahnNetwork` — processes are Python generators that ``yield``
  :func:`read` / :func:`write` commands; channels are unbounded FIFOs;
  blocking reads are modelled by suspending the generator until a token
  arrives.  Scheduling is cooperative and *seeded*, so tests can verify
  the Kahn determinism property (outputs independent of scheduling).
- :func:`network_transduction` — wraps a network as a function from
  per-channel input sequences to per-channel output sequences, the
  representation of a ``channels_type`` trace transduction.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import DagError


@dataclass(frozen=True)
class Read:
    """Command: block until a token is available on ``channel``."""

    channel: str


@dataclass(frozen=True)
class Write:
    """Command: append ``value`` to ``channel``."""

    channel: str
    value: Any


def read(channel: str) -> Read:
    """Request the next token of ``channel`` (yield this from a program)."""
    return Read(channel)


def write(channel: str, value: Any) -> Write:
    """Emit ``value`` on ``channel`` (yield this from a program)."""
    return Write(channel, value)


class _ProcessRuntime:
    __slots__ = ("name", "generator", "waiting_on", "done", "pending_send")

    def __init__(self, name, generator):
        self.name = name
        self.generator = generator
        self.waiting_on: Optional[str] = None
        self.done = False
        self.pending_send: Any = None


class KahnNetwork:
    """An acyclic network of deterministic sequential processes.

    Programs are generator functions; yielding :class:`Read` suspends
    until a token is available (the yield expression evaluates to the
    token), yielding :class:`Write` appends a token.  Example — the
    deterministic merge of Example 3.7::

        def merge_program():
            while True:
                x = yield read("in0")
                yield write("out", x)
                y = yield read("in1")
                yield write("out", y)

    Channels are declared implicitly by use; :meth:`add_input` /
    :meth:`add_output` mark the external ones.
    """

    def __init__(self):
        self._programs: Dict[str, Callable[[], Any]] = {}
        self._inputs: List[str] = []
        self._outputs: List[str] = []

    def add_process(self, name: str, program: Callable[[], Any]) -> None:
        if name in self._programs:
            raise DagError(f"duplicate process name {name!r}")
        self._programs[name] = program

    def add_input(self, channel: str) -> None:
        self._inputs.append(channel)

    def add_output(self, channel: str) -> None:
        self._outputs.append(channel)

    @property
    def input_channels(self) -> Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def output_channels(self) -> Tuple[str, ...]:
        return tuple(self._outputs)

    # ------------------------------------------------------------------

    def run(
        self,
        inputs: Dict[str, Iterable[Any]],
        seed: int = 0,
        max_steps: int = 1_000_000,
    ) -> Dict[str, List[Any]]:
        """Execute to quiescence on finite inputs; return output histories.

        ``seed`` randomizes the scheduling order of runnable processes —
        by the Kahn principle the result is independent of it (tests
        sweep seeds to check exactly this).
        """
        rng = random.Random(seed)
        channels: Dict[str, Deque[Any]] = {}
        for name, tokens in inputs.items():
            channels[name] = deque(tokens)
        outputs: Dict[str, List[Any]] = {name: [] for name in self._outputs}

        processes = [
            _ProcessRuntime(name, program())
            for name, program in self._programs.items()
        ]
        # Prime every generator to its first command.
        for process in processes:
            self._advance(process, None, channels, outputs)

        steps = 0
        while True:
            runnable = [
                p
                for p in processes
                if not p.done
                and p.waiting_on is not None
                and channels.get(p.waiting_on)
            ]
            if not runnable:
                break
            steps += 1
            if steps > max_steps:
                raise DagError("KPN exceeded max_steps; livelock?")
            process = rng.choice(runnable)
            token = channels[process.waiting_on].popleft()
            self._advance(process, token, channels, outputs)
        return outputs

    def _advance(self, process: _ProcessRuntime, send_value, channels, outputs):
        """Resume a process until it blocks on a Read or finishes."""
        if process.done:
            return
        try:
            command = process.generator.send(send_value)
            while True:
                if isinstance(command, Write):
                    if command.channel in outputs:
                        outputs[command.channel].append(command.value)
                    else:
                        channels.setdefault(command.channel, deque()).append(
                            command.value
                        )
                    command = process.generator.send(None)
                elif isinstance(command, Read):
                    process.waiting_on = command.channel
                    return
                else:
                    raise DagError(
                        f"process {process.name} yielded {command!r}; "
                        "expected read(...) or write(...)"
                    )
        except StopIteration:
            process.done = True
            process.waiting_on = None


def network_transduction(
    network: KahnNetwork,
) -> Callable[[Dict[str, List[Any]]], Dict[str, List[Any]]]:
    """The network as a channels-type trace transduction.

    The returned function maps input channel histories to output channel
    histories.  It is monotone w.r.t. the per-channel prefix order
    (Kahn's continuity), which makes it a data-trace transduction of the
    Example 3.3 type — verified property-style in the tests.
    """

    def apply(inputs: Dict[str, List[Any]]) -> Dict[str, List[Any]]:
        return network.run(inputs)

    return apply


def merge_network() -> KahnNetwork:
    """Example 3.7's deterministic merge, as a KPN."""

    def program():
        while True:
            x = yield read("in0")
            yield write("out", x)
            y = yield read("in1")
            yield write("out", y)

    network = KahnNetwork()
    network.add_input("in0")
    network.add_input("in1")
    network.add_output("out")
    network.add_process("merge", program)
    return network
