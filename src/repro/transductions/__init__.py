"""Data-string and data-trace transductions (Sections 3.2–3.3).

A *data-string transduction* ``f : A* -> B*`` gives, for each input
prefix, the output increment emitted on the arrival of its last item; its
*lifting* accumulates increments over all prefixes.  A string transduction
is *(X, Y)-consistent* (Definition 3.5) when equivalent inputs yield
equivalent cumulative outputs, in which case it *denotes* a monotone
function on traces — a *data-trace transduction* (Definition 3.6).

Public surface:

- :class:`StringTransduction` — base class with :meth:`step` semantics,
  lifting, and streaming evaluation.
- :func:`lift` — the cumulative-output view.
- :class:`ConsistencyChecker` — randomized search for Definition 3.5
  violations (used to *refute* consistency; the templates of Section 4
  are consistent by construction, Theorem 4.2).
- :class:`TraceTransduction` — the denotation ``beta([u]) = [lift(f)(u)]``.
- Combinators: :func:`compose` (``>>``) and :func:`parallel` (``||``).
- The worked examples of Section 3: deterministic merge, key-based
  partitioning, streaming max over bags, running max filter.
"""

from repro.transductions.string_transduction import (
    StringTransduction,
    FunctionTransduction,
    lift,
)
from repro.transductions.consistency import ConsistencyChecker, check_consistency
from repro.transductions.trace_transduction import TraceTransduction
from repro.transductions.combinators import compose, parallel, ComposedTransduction
from repro.transductions.completeness import implement, ImplementedTransduction
from repro.transductions.kpn import KahnNetwork, merge_network, network_transduction
from repro.transductions import examples

__all__ = [
    "StringTransduction",
    "FunctionTransduction",
    "lift",
    "ConsistencyChecker",
    "check_consistency",
    "TraceTransduction",
    "compose",
    "parallel",
    "ComposedTransduction",
    "implement",
    "ImplementedTransduction",
    "KahnNetwork",
    "merge_network",
    "network_transduction",
    "examples",
]
