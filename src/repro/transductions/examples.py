"""The worked transduction examples of Section 3.

- :class:`RunningMaxFilter` — Example 3.4: emit the current item iff it
  strictly exceeds everything seen so far.
- :class:`DeterministicMerge` — Example 3.7: merge two linearly ordered
  channels by reading cyclically.
- :class:`KeyPartition` — Example 3.8: map a linear stream to per-key
  sub-streams; implemented as the string transduction
  ``f(w x) = (key(x), x)``.
- :class:`StreamingMax` — Example 3.9: over unordered numbers with
  linearly ordered ``#`` markers, emit at each marker the max so far.

Each example also provides its *specification-level* trace function where
the paper gives one (e.g. ``merge(x, y)`` on pairs of sequences), so tests
can compare implementation denotations against specifications.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from repro.traces.items import Item, is_marker
from repro.traces.tags import Tag
from repro.transductions.string_transduction import StringTransduction


class RunningMaxFilter(StringTransduction):
    """Example 3.4: pass items strictly greater than all previous items.

    Input and output are plain comparable values (the paper's
    ``f : Nat* -> Nat*``).
    """

    def initial(self):
        return {"max": None}

    def step(self, state, item):
        if state["max"] is None or item > state["max"]:
            state["max"] = item
            return (item,)
        return ()


class DeterministicMerge(StringTransduction):
    """Example 3.7: cyclic merge of two independent ordered channels.

    Items are :class:`Item` values whose tags name the channel
    (``Tag(0)`` / ``Tag(1)``).  The merge emits alternating pairs
    ``x1 y1 x2 y2 ...`` as soon as both components are available, which is
    exactly the paper's ``merge`` on the consumed prefixes.
    """

    def __init__(self, left_tag: Tag = Tag(0), right_tag: Tag = Tag(1)):
        self.left_tag = left_tag
        self.right_tag = right_tag

    def initial(self):
        return {"left": [], "right": [], "turn": 0}

    def step(self, state, item: Item):
        if item.tag == self.left_tag:
            state["left"].append(item.value)
        elif item.tag == self.right_tag:
            state["right"].append(item.value)
        else:
            raise ValueError(f"unexpected channel tag {item.tag}")
        out: List[Any] = []
        # turn 0 -> next emission comes from the left channel.
        while (state["turn"] == 0 and state["left"]) or (
            state["turn"] == 1 and state["right"]
        ):
            source = "left" if state["turn"] == 0 else "right"
            out.append(state[source].pop(0))
            state["turn"] ^= 1
        return out

    @staticmethod
    def specification(
        xs: Sequence[Any], ys: Sequence[Any]
    ) -> Tuple[Any, ...]:
        """The paper's ``merge(x1..xm, y1..yn)`` on whole prefixes."""
        n = min(len(xs), len(ys))
        out: List[Any] = []
        for i in range(n):
            out.append(xs[i])
            out.append(ys[i])
        if len(xs) > n:
            out.append(xs[n])
        return tuple(out)


class KeyPartition(StringTransduction):
    """Example 3.8: key-based partitioning ``f(w x) = (key(x), x)``.

    Input items are raw values; outputs are :class:`Item` values tagged by
    the extracted key, so the output trace type is the keyed-channels type
    of Example 3.8.
    """

    def __init__(self, key: Callable[[Any], Any]):
        self.key = key

    def initial(self):
        return None

    def step(self, state, item):
        return (Item(Tag(self.key(item)), item),)

    @staticmethod
    def specification(
        items: Sequence[Any], key: Callable[[Any], Any]
    ) -> dict:
        """``partition_key(u)(k) = u|k`` as a key-indexed dict."""
        result: dict = {}
        for item in items:
            result.setdefault(key(item), []).append(item)
        return result


class StreamingMax(StringTransduction):
    """Example 3.9: emit at every ``#`` the maximum of all numbers so far.

    Input items are :class:`Item` values: numbers under a data tag plus
    marker items.  Output items are plain numbers (a linearly ordered
    output channel).  Markers with no preceding number emit nothing
    (``max`` of the empty bag is undefined).
    """

    def initial(self):
        return {"max": None}

    def step(self, state, item: Item):
        if is_marker(item):
            if state["max"] is None:
                return ()
            return (state["max"],)
        if state["max"] is None or item.value > state["max"]:
            state["max"] = item.value
        return ()

    @staticmethod
    def specification(bags: Sequence[Sequence[Any]]) -> Tuple[Any, ...]:
        """``smax(B1..Bn) = max(B1) max(B1+B2) ... max(B1+..+B_{n-1})``.

        The trailing open bag ``Bn`` contributes nothing, matching the
        paper: output happens only at marker occurrences.
        """
        out: List[Any] = []
        seen: List[Any] = []
        for bag in bags[:-1]:
            seen.extend(bag)
            if seen:
                out.append(max(seen))
        return tuple(out)
