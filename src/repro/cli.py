"""Command-line experiment runner: ``python -m repro <command>``.

Commands regenerate the paper's evaluation artifacts without pytest:

- ``fig4 [QUERY]`` — the Figure 4 throughput comparison (all queries or
  one of I/II/III/IV/V/VI); ``--trace-out`` additionally captures a
  marker-epoch trace of one instrumented run;
- ``fig6`` — the Figure 6 Smart-Homes scaling curve (same
  ``--trace-out`` support);
- ``obs {fig6|fig4|iot}`` — run one instrumented simulation and print
  the stall-diagnostics report (alignment-stall vs. CPU ranking, skewed
  channels); ``--trace-out`` writes a Chrome-trace JSON for
  ``chrome://tracing``, ``--jsonl-out`` the raw span/sample records.
  ``--monitor`` attaches online invariant monitors (data-trace type
  conformance + watermark/backpressure progress) with ``--sampling``
  control; ``--telemetry-out`` writes monitor telemetry JSONL,
  ``--prom-out`` a Prometheus text snapshot, and
  ``--fail-on-violation`` makes the exit code reflect conformance
  (the CI monitor job);
- ``obs watch [TARGET]`` — same run with a live dashboard line per
  source epoch (frontier, worst watermark lag, queue peaks, violations);
- ``sim {iot|fig6}`` — fault-injection and recovery demo: run a
  fault-free baseline, then the same workload under a fault plan
  (``--faults PLAN.json``, default: a built-in demo plan) with
  epoch-aligned checkpointing and rollback recovery, and verify the
  recovered canonical sink traces equal the baseline across
  ``--seeds``; ``--no-recovery`` shows the raw corruption instead;
- ``lint [PATHS...]`` — the static consistency analyzer
  (:mod:`repro.analysis`): Theorem 4.2 side conditions, determinism
  hazards, snapshot aliasing.  ``--strict`` fails on warnings too,
  ``--format {text,json,github}`` picks the output, ``--dynamic`` adds
  sampled-shuffle validation (DT9xx), ``--explain DT203`` prints one
  rule's catalog entry;
- ``motivation`` — the Section 2 naive-vs-typed soundness experiment;
- ``bench [NAME]`` — run a ``benchmarks/bench_*.py`` module under pytest
  (``bench batching`` is the CI perf-smoke suite; omit NAME to list);
- ``show-dag {quickstart|yahoo|smarthomes|iot}`` — print a DAG (add
  ``--dot`` for Graphviz output).
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _instrumented_run(
    topology, machines: int, cost_model, trace_out=None, jsonl_out=None,
    report_json=None, monitors=None, prom_out=None, telemetry_out=None,
    fail_on_violation=False, watch=False,
) -> int:
    """One observed simulation: print the stall report, write traces."""
    from repro.bench import measure_throughput
    from repro.obs import ObsContext, stall_report
    from repro.obs.export import render_watch_line, write_prometheus

    if monitors is not None and watch:
        def _print_row(row):
            line = render_watch_line(row)
            if line:
                print(line)

        monitors.on_telemetry = _print_row
        print("live monitor telemetry (one line per source epoch):")
    obs = ObsContext.collecting(monitors=monitors)
    report = measure_throughput(topology, machines, cost_model, obs=obs)
    if watch:
        print()
    diagnostics = stall_report(obs.tracer, obs.metrics, report.makespan,
                               monitors=monitors)
    print(diagnostics.format())
    print()
    print(f"throughput: {report.throughput():,.0f} tuples/s over "
          f"{machines} machines; mean utilization "
          f"{report.mean_utilization():.2%}")
    if trace_out:
        obs.tracer.write_chrome_trace(trace_out)
        print(f"Chrome trace written to {trace_out} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    if jsonl_out:
        obs.tracer.write_jsonl(jsonl_out)
        print(f"JSONL trace written to {jsonl_out}")
    if report_json:
        parent = os.path.dirname(report_json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(report_json, "w", encoding="utf-8") as fh:
            json.dump(diagnostics.to_dict(), fh, indent=2)
        print(f"stall report written to {report_json}")
    if prom_out:
        write_prometheus(prom_out, obs.metrics, monitors)
        print(f"Prometheus snapshot written to {prom_out}")
    if monitors is not None:
        if telemetry_out:
            monitors.write_telemetry_jsonl(telemetry_out)
            print(f"monitor telemetry written to {telemetry_out}")
        n_violations = monitors.violation_count()
        if n_violations:
            print()
            print(f"INVARIANT VIOLATIONS: {n_violations}")
            for violation in monitors.violations[:10]:
                print(f"  {violation}")
            if n_violations > 10:
                print(f"  ... and {n_violations - 10} more")
            if fail_on_violation:
                return 1
    return 0


def _fig4_workload():
    from repro.apps.yahoo.events import YahooWorkload

    return YahooWorkload(
        seconds=5, events_per_second=800, n_campaigns=20, ads_per_campaign=10,
        n_users=200, n_locations=8, seed=7,
    )


def _fig4(args) -> int:
    sys.path.insert(0, "benchmarks")
    from repro.apps.yahoo.queries import QUERY_BUILDERS
    from repro.bench import format_comparison_table

    from bench_fig4_yahoo import run_query_sweep  # type: ignore

    workload = _fig4_workload()
    events = workload.events()
    queries = [args.query] if args.query else list(QUERY_BUILDERS)
    for query in queries:
        handcrafted, generated = run_query_sweep(query, workload, events)
        print(format_comparison_table(
            f"Figure 4 / Query {query}: throughput vs machines",
            handcrafted, generated,
        ))
        print()
    if args.trace_out:
        query = queries[-1]
        print(f"Instrumented run (query {query}, 8 machines):")
        compiled, cost_model = _fig4_compiled(workload, events, query, 8)
        return _instrumented_run(
            compiled.topology, 8, cost_model, trace_out=args.trace_out,
        )
    return 0


def _fig4_compiled(workload, events, query: str, machines: int):
    """The generated Figure 4 compiled topology + cost model for a query.

    Returns the full :class:`~repro.compiler.compile.CompiledTopology`
    (not just ``.topology``) so callers can attach edge-typed monitors.
    """
    sys.path.insert(0, "benchmarks")
    from repro.apps.yahoo.queries import QUERY_BUILDERS
    from repro.bench import fused_cost_model
    from repro.compiler import compile_dag
    from repro.compiler.compile import source_from_events

    from bench_fig4_yahoo import vertex_costs_for  # type: ignore
    from conftest import SPOUTS, TASKS_PER_MACHINE  # type: ignore

    builder, _ = QUERY_BUILDERS[query]
    dag = builder(
        workload.make_database(), parallelism=machines * TASKS_PER_MACHINE
    )
    compiled = compile_dag(dag, {"events": source_from_events(events, SPOUTS)})
    return compiled, fused_cost_model(vertex_costs_for(query))


def _smarthomes_setup(small: bool = False):
    """Workload, topology builder, and cost-model factory for Figure 6.

    ``small`` shrinks the workload for quick diagnostics runs
    (``repro obs fig6``) while keeping the full pipeline shape."""
    from repro.apps.smarthomes import (
        SmartHomesWorkload,
        smart_homes_dag,
        train_predictor,
    )
    from repro.bench import MarkerTriggerCost, fused_cost_model
    from repro.compiler import compile_dag
    from repro.compiler.compile import source_from_events

    if small:
        workload = SmartHomesWorkload(
            n_buildings=6, units_per_building=4, plugs_per_unit=3, duration=60,
        )
        models = train_predictor(horizon=120, train_seconds=400, past=60)
    else:
        workload = SmartHomesWorkload(
            n_buildings=12, units_per_building=5, plugs_per_unit=4,
            duration=120,
        )
        models = train_predictor(horizon=120, train_seconds=800, past=60)
    events = workload.events()

    def vertex_costs():
        return {
            "JFM": 30e-6,
            "SORT1": MarkerTriggerCost(1.5e-6, 20e-6),
            "LI": 1e-6,
            "Map": 0.5e-6,
            "SORT2": MarkerTriggerCost(1.5e-6, 20e-6),
            "Avg": 1e-6,
            "Predict": 5e-6,
        }

    def build(n):
        """Compile the pipeline for ``n`` machines (a CompiledTopology)."""
        dag = smart_homes_dag(workload.make_database(), models, parallelism=2 * n)
        return compile_dag(dag, {"hub": source_from_events(events, 2)})

    return build, lambda: fused_cost_model(vertex_costs())


def _fig6(args) -> int:
    from repro.bench import format_scaling_table, sweep_machines
    from repro.bench.reporting import ascii_chart

    build, cost_model_for = _smarthomes_setup()
    points = sweep_machines(
        lambda n: build(n).topology, lambda n: cost_model_for(),
        machines=range(1, 9),
    )
    print(format_scaling_table("Figure 6 / Smart Homes:", points))
    print()
    print(ascii_chart(points, title="throughput vs machines"))
    if args.trace_out:
        print()
        print("Instrumented run (8 machines):")
        return _instrumented_run(
            build(8).topology, 8, cost_model_for(), trace_out=args.trace_out,
        )
    return 0


def _obs(args) -> int:
    """Run one instrumented topology and print stall diagnostics."""
    watch = args.target == "watch"
    target = (args.watch_target or "fig6") if watch else args.target
    if watch and args.watch_target is None and args.query:
        target = "fig4"
    if target == "fig6":
        machines = args.machines or 4
        build, cost_model_for = _smarthomes_setup(small=True)
        compiled, cost_model = build(machines), cost_model_for()
    elif target == "fig4":
        machines = args.machines or 4
        workload = _fig4_workload()
        compiled, cost_model = _fig4_compiled(
            workload, workload.events(), args.query or "IV", machines,
        )
    else:  # iot: tiny topology, the CI smoke target
        from repro.apps.iot import SensorWorkload, iot_typed_dag
        from repro.bench import fused_cost_model
        from repro.compiler import compile_dag
        from repro.compiler.compile import source_from_events

        machines = args.machines or 2
        events = SensorWorkload().events()
        compiled = compile_dag(
            iot_typed_dag(parallelism=2),
            {"SENSOR": source_from_events(events, 2)},
        )
        cost_model = fused_cost_model({})
    monitors = None
    if (args.monitor or watch or args.telemetry_out
            or args.fail_on_violation):
        from repro.obs import MonitorConfig, MonitorHub
        from repro.obs.monitor import default_order_token

        order_key = None
        if args.order_key == "trailing-ts":
            order_key = lambda kv: default_order_token(kv.value)  # noqa: E731
        config = MonitorConfig(
            sampling=args.sampling,
            nth=args.sample_every,
            order_key=order_key,
            queue_depth_alert=args.queue_alert,
            watermark_lag_alert=args.lag_alert,
        )
        monitors = MonitorHub.for_compiled(compiled, config)
        kinds = ", ".join(
            f"{src}->{dst}:{kind}"
            for (src, dst), kind in sorted(compiled.edge_kinds.items())
        )
        print(f"monitoring {len(monitors.edges)} edges "
              f"(sampling={config.sampling}): {kinds}")
    return _instrumented_run(
        compiled.topology, machines, cost_model, trace_out=args.trace_out,
        jsonl_out=args.jsonl_out, report_json=args.report_json,
        monitors=monitors, prom_out=args.prom_out,
        telemetry_out=args.telemetry_out,
        fail_on_violation=args.fail_on_violation, watch=watch,
    )


def _sim(args) -> int:
    """Fault-injection demo: recovered runs must match the baseline."""
    from repro.bench import fused_cost_model
    from repro.compiler import compile_dag
    from repro.compiler.compile import source_from_events
    from repro.storm import Cluster, Simulator
    from repro.storm.faults import demo_plan, load_fault_plan
    from repro.storm.local import events_to_trace
    from repro.storm.recovery import RecoveryOptions

    if args.target == "fig6":
        machines = args.machines or 4
        build, cost_model_for = _smarthomes_setup(small=True)
        build_compiled = build
    else:  # iot
        from repro.apps.iot import SensorWorkload, iot_typed_dag

        machines = args.machines or 2
        events = SensorWorkload().events()

        def build_compiled(n):
            return compile_dag(
                iot_typed_dag(parallelism=2),
                {"SENSOR": source_from_events(events, 2)},
            )

        def cost_model_for():
            return fused_cost_model({})

    def run_once(seed, faults=None, recovery=None):
        compiled = build_compiled(machines)
        simulator = Simulator(
            compiled.topology, Cluster(machines, cores_per_machine=2),
            seed=seed, cost_model=cost_model_for(),
            faults=faults, recovery=recovery,
        )
        report = simulator.run()
        traces = {}
        for name, bolt in compiled.sinks.items():
            ordered = any(
                kind == "O"
                for (_, dst), kind in compiled.edge_kinds.items()
                if dst == name
            )
            traces[name] = events_to_trace(bolt.aligned_events, ordered)
        return traces, report

    if args.faults:
        plan = load_fault_plan(args.faults)
        print(f"fault plan loaded from {args.faults}")
    else:
        plan = demo_plan(build_compiled(machines).topology, seed=args.seed)
        print("using the built-in demo fault plan")
    print(json.dumps(plan.to_dict(), indent=2))
    print()

    seeds = list(range(args.seed, args.seed + args.seeds))
    failures = 0
    results = []
    for seed in seeds:
        baseline, _ = run_once(seed)
        if args.no_recovery:
            from repro.errors import TaskFailureError

            try:
                faulted, _ = run_once(seed, faults=plan)
            except TaskFailureError as exc:
                print(f"seed {seed}: no recovery; run DIED: {exc}")
                results.append({"seed": seed, "recovered": False,
                                "died": str(exc)})
                continue
            corrupted = faulted != baseline
            print(f"seed {seed}: no recovery; output corrupted: {corrupted}")
            results.append({"seed": seed, "recovered": False,
                            "corrupted": corrupted})
            continue
        recovery = RecoveryOptions(checkpoint_every=args.checkpoint_every)
        faulted, report = run_once(seed, faults=plan, recovery=recovery)
        stats = report.recovery
        ok = faulted == baseline
        failures += not ok
        print(
            f"seed {seed}: {'PARITY OK' if ok else 'PARITY FAILED'} — "
            f"recoveries={stats.recoveries} "
            f"checkpoints={stats.checkpoints_taken} "
            f"retransmissions={stats.retransmissions} "
            f"duplicates_filtered={stats.duplicates_filtered} "
            f"reordered={stats.reordered} "
            f"replayed={stats.replayed_events}"
        )
        results.append({"seed": seed, "recovered": True, "parity": ok,
                        **stats.to_dict()})
    if args.report_json:
        parent = os.path.dirname(args.report_json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump({"target": args.target, "plan": plan.to_dict(),
                       "runs": results}, fh, indent=2)
        print(f"recovery report written to {args.report_json}")
    if not args.no_recovery:
        verdict = ("every faulted run recovered to the fault-free trace"
                   if not failures else
                   f"{failures}/{len(seeds)} runs FAILED recovery parity")
        print()
        print(verdict)
    return 1 if failures else 0


def _lint(args) -> int:
    """Run the static consistency analyzer (``repro.analysis``)."""
    from repro.analysis import explain
    from repro.analysis.driver import analyze_paths

    if args.explain:
        try:
            print(explain(args.explain.upper()))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0

    paths = args.paths or ["src", "examples"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        report = analyze_paths(
            paths,
            dynamic=args.dynamic,
            select=tuple(args.select or ()),
            ignore=tuple(args.ignore or ()),
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    output = report.render(args.format)
    if output:
        print(output)
    return report.exit_code(strict=args.strict)


def _motivation(args) -> int:
    from repro.apps.iot import SensorWorkload, build_naive_topology, iot_typed_dag
    from repro.compiler import compile_dag
    from repro.compiler.compile import source_from_events
    from repro.dag import evaluate_dag
    from repro.operators.base import KV
    from repro.storm import LocalRunner
    from repro.storm.local import events_to_trace

    events = SensorWorkload().events()
    naive = set()
    for seed in range(args.seeds):
        topology, _ = build_naive_topology(events, map_parallelism=2)
        report = LocalRunner(topology, seed=seed).run()
        naive.add(tuple(sorted(
            (e.key, e.value) for e in report.sink_events["SINK"]
            if isinstance(e, KV)
        )))
    dag = iot_typed_dag(parallelism=2)
    denotation = evaluate_dag(dag, {"SENSOR": events}).sink_trace("SINK", False)
    compiled = compile_dag(dag, {"SENSOR": source_from_events(events, 1)})
    typed = set()
    for seed in range(args.seeds):
        LocalRunner(compiled.topology, seed=seed).run()
        typed.add(events_to_trace(compiled.sinks["SINK"].aligned_events, False))
    print(f"naive Map x2: {len(naive)} distinct outputs over {args.seeds} seeds")
    print(f"typed Map x2: {len(typed)} distinct outputs; equals denotation: "
          f"{typed == {denotation}}")
    return 0


def _bench(args) -> int:
    """Run a benchmark module from ``benchmarks/`` under pytest.

    ``repro bench`` lists the available modules; ``repro bench batching``
    runs ``benchmarks/bench_batching.py`` (the perf-smoke suite) and
    leaves its ``BENCH_*.json`` artifacts in ``--out-dir``.
    """
    import pytest

    bench_dir = _bench_dir()
    available = sorted(
        path.stem[len("bench_"):]
        for path in bench_dir.glob("bench_*.py")
    )
    if not args.name or args.name not in available:
        if args.name:
            print(f"unknown benchmark {args.name!r}", file=sys.stderr)
        print("available benchmarks:", file=sys.stderr)
        for name in available:
            print(f"  {name}", file=sys.stderr)
        return 0 if not args.name else 2
    os.environ["REPRO_BENCH_DIR"] = args.out_dir
    os.makedirs(args.out_dir, exist_ok=True)
    target = bench_dir / f"bench_{args.name}.py"
    return pytest.main(["-q", "-s", str(target)])


def _bench_dir():
    from pathlib import Path

    return Path(__file__).resolve().parents[2] / "benchmarks"


def _show_dag(args) -> int:
    from repro.dag.viz import dag_to_dot, render_dag

    if args.name == "quickstart":
        from repro.operators.library import filter_items, tumbling_count
        from repro.dag import TransductionDAG
        from repro.traces.trace_type import unordered_type

        U = unordered_type("Int", "Float")
        dag = TransductionDAG("quickstart")
        src = dag.add_source("source", output_type=U)
        f = dag.add_op(filter_items(lambda k, v: k % 2 == 0, name="filterOp"),
                       parallelism=2, upstream=[src], edge_types=[U])
        c = dag.add_op(tumbling_count("sumOp"), parallelism=3, upstream=[f],
                       edge_types=[U])
        dag.add_sink("printer", upstream=c, input_type=U)
    elif args.name == "yahoo":
        from repro.apps.yahoo.events import YahooWorkload
        from repro.apps.yahoo.queries import query4

        workload = YahooWorkload(seconds=1, events_per_second=1)
        dag = query4(workload.make_database(), parallelism=2)
    elif args.name == "smarthomes":
        from repro.apps.smarthomes import (
            SmartHomesWorkload,
            smart_homes_dag,
            train_predictor,
        )

        workload = SmartHomesWorkload(n_buildings=1, units_per_building=1,
                                      plugs_per_unit=1, duration=10)
        models = train_predictor(horizon=60, train_seconds=200, past=30)
        dag = smart_homes_dag(workload.make_database(), models, parallelism=2)
    elif args.name == "iot":
        from repro.apps.iot import iot_typed_dag

        dag = iot_typed_dag(parallelism=2)
    else:
        print(f"unknown DAG {args.name!r}", file=sys.stderr)
        return 2
    print(dag_to_dot(dag) if args.dot else render_dag(dag))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="PLDI'19 data-trace types: experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig4 = sub.add_parser("fig4", help="Figure 4 throughput comparison")
    p_fig4.add_argument("query", nargs="?", choices=["I", "II", "III", "IV", "V", "VI"])
    p_fig4.add_argument("--trace-out", metavar="PATH",
                        help="also capture a Chrome trace of one "
                             "instrumented 8-machine run")
    p_fig4.set_defaults(func=_fig4)

    p_fig6 = sub.add_parser("fig6", help="Figure 6 Smart-Homes scaling")
    p_fig6.add_argument("--trace-out", metavar="PATH",
                        help="also capture a Chrome trace of one "
                             "instrumented 8-machine run")
    p_fig6.set_defaults(func=_fig6)

    p_obs = sub.add_parser(
        "obs", help="instrumented run + stall diagnostics report"
    )
    p_obs.add_argument("target", choices=["fig6", "fig4", "iot", "watch"],
                       help="which topology to observe, or 'watch' for a "
                            "live monitor view")
    p_obs.add_argument("watch_target", nargs="?",
                       choices=["fig6", "fig4", "iot"],
                       help="topology for 'obs watch' (default fig6)")
    p_obs.add_argument("--machines", type=int, default=None,
                       help="cluster size (default: 4, iot: 2)")
    p_obs.add_argument("--query", choices=["I", "II", "III", "IV", "V", "VI"],
                       help="fig4 query to observe (default IV)")
    p_obs.add_argument("--trace-out", metavar="PATH",
                       help="write Chrome-trace JSON (chrome://tracing)")
    p_obs.add_argument("--jsonl-out", metavar="PATH",
                       help="write raw span/sample records as JSONL")
    p_obs.add_argument("--report-json", metavar="PATH",
                       help="write the stall report as JSON")
    p_obs.add_argument("--monitor", action="store_true",
                       help="attach online invariant monitors (data-trace "
                            "type conformance + progress)")
    p_obs.add_argument("--sampling", choices=["all", "nth", "epoch"],
                       default="all",
                       help="monitor sampling mode (default: all)")
    p_obs.add_argument("--sample-every", type=int, default=10, metavar="N",
                       help="check every Nth item with --sampling nth")
    p_obs.add_argument("--order-key", choices=["none", "trailing-ts"],
                       default="none",
                       help="enable the per-key order check on O edges "
                            "with the named order token (trailing-ts: "
                            "trailing numeric tuple element, the repo's "
                            "(value, timestamp) event-time idiom)")
    p_obs.add_argument("--queue-alert", type=float, default=None, metavar="D",
                       help="alert when a task queue reaches depth D")
    p_obs.add_argument("--lag-alert", type=int, default=None, metavar="E",
                       help="alert when a watermark lags the source "
                            "frontier by E epochs")
    p_obs.add_argument("--telemetry-out", metavar="PATH",
                       help="write monitor telemetry (violations, alerts, "
                            "watermark snapshots) as JSONL")
    p_obs.add_argument("--prom-out", metavar="PATH",
                       help="write a Prometheus text-format snapshot of "
                            "metrics + monitor state")
    p_obs.add_argument("--fail-on-violation", action="store_true",
                       help="exit non-zero if any invariant violation was "
                            "observed (implies --monitor)")
    p_obs.set_defaults(func=_obs)

    p_sim = sub.add_parser(
        "sim", help="fault-injection + exactly-once recovery demo"
    )
    p_sim.add_argument("target", nargs="?", choices=["iot", "fig6"],
                       default="iot",
                       help="workload to fault (default: iot)")
    p_sim.add_argument("--faults", metavar="PLAN.json",
                       help="fault plan file (default: built-in demo plan)")
    p_sim.add_argument("--seed", type=int, default=0,
                       help="first scheduler seed (default: 0)")
    p_sim.add_argument("--seeds", type=int, default=3, metavar="N",
                       help="number of consecutive seeds to sweep "
                            "(default: 3)")
    p_sim.add_argument("--checkpoint-every", type=int, default=1, metavar="K",
                       help="checkpoint every K epochs (default: 1)")
    p_sim.add_argument("--machines", type=int, default=None,
                       help="cluster size (default: iot 2, fig6 4)")
    p_sim.add_argument("--no-recovery", action="store_true",
                       help="inject faults raw, without the recovery "
                            "layer, to show the corruption it prevents")
    p_sim.add_argument("--report-json", metavar="PATH",
                       help="write per-seed recovery stats as JSON")
    p_sim.set_defaults(func=_sim)

    p_lint = sub.add_parser(
        "lint", help="static consistency analyzer (Theorem 4.2 side "
                     "conditions, determinism hazards, snapshot aliasing)"
    )
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to analyze "
                             "(default: src examples)")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings as well as errors")
    p_lint.add_argument("--format", choices=["text", "json", "github"],
                        default="text",
                        help="output format (github = workflow-command "
                             "annotations)")
    p_lint.add_argument("--dynamic", action="store_true",
                        help="also run sampled monoid-law and "
                             "Definition 3.5 shuffle validation on every "
                             "template operator (DT9xx findings)")
    p_lint.add_argument("--select", action="append", metavar="PREFIX",
                        help="only report codes matching PREFIX "
                             "(repeatable; e.g. --select DT2)")
    p_lint.add_argument("--ignore", action="append", metavar="PREFIX",
                        help="drop codes matching PREFIX (repeatable)")
    p_lint.add_argument("--explain", metavar="CODE",
                        help="print one rule's rationale, example, and "
                             "suppression syntax, then exit")
    p_lint.set_defaults(func=_lint)

    p_mot = sub.add_parser("motivation", help="Section 2 soundness experiment")
    p_mot.add_argument("--seeds", type=int, default=10)
    p_mot.set_defaults(func=_motivation)

    p_bench = sub.add_parser(
        "bench", help="run a benchmarks/bench_*.py module under pytest"
    )
    p_bench.add_argument("name", nargs="?",
                         help="benchmark name (e.g. 'batching' for "
                              "benchmarks/bench_batching.py); omit to list")
    p_bench.add_argument("--out-dir", default=".", metavar="DIR",
                         help="directory for BENCH_*.json artifacts "
                              "(default: current directory)")
    p_bench.set_defaults(func=_bench)

    p_show = sub.add_parser("show-dag", help="print one of the paper's DAGs")
    p_show.add_argument("name", choices=["quickstart", "yahoo", "smarthomes", "iot"])
    p_show.add_argument("--dot", action="store_true", help="Graphviz output")
    p_show.set_defaults(func=_show_dag)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
