"""Compilation of transduction DAGs to Storm topologies (Section 5).

:func:`compile_dag` turns a typed transduction DAG into a
:class:`~repro.storm.topology.Topology`:

- type consistency is checked first (the ``getStormTopology()`` check);
- each maximal fusable chain of operators becomes one bolt (the paper
  fuses ``MRG`` and ``SORT`` with the operator that follows them to
  eliminate communication delays — Figure 1 bottom, Figure 5 bottom);
- every bolt gets a *merge frontend* that re-aligns the streams arriving
  from all upstream task instances on their synchronization markers;
- connections use marker-aware groupings (markers broadcast; data routed
  round-robin for stateless consumers, by key hash for keyed consumers,
  and to a single task in front of sinks) in place of Storm's built-in
  groupings, which would inhibit marker propagation.
"""

from repro.compiler.compile import compile_dag, CompilerOptions
from repro.compiler.glue import CompiledBolt, AlignedCaptureBolt, MergeFrontend
from repro.compiler.inprocess import compile_inprocess, InProcessPipeline

__all__ = [
    "compile_dag",
    "CompilerOptions",
    "CompiledBolt",
    "AlignedCaptureBolt",
    "MergeFrontend",
    "compile_inprocess",
    "InProcessPipeline",
]
