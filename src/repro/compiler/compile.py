"""The DAG-to-topology compiler (Section 5).

``compile_dag(dag, sources)`` produces a runnable topology:

1. the DAG is validated and type-checked (Figure 2's
   ``getStormTopology()`` behaviour — type errors abort compilation);
2. explicit ``MRG`` vertices are inlined into their consumer's merge
   frontend (every compiled bolt re-aligns all upstream substreams);
3. operators are grouped into *fusion chains* — maximal sequences that
   can run inside one task without repartitioning (``SORT;LI;Map`` in
   Figure 5).  A chain boundary is placed exactly where the next operator
   needs its input re-routed (a keyed operator after a key-changing one,
   or any parallelism change);
4. each chain becomes one bolt wrapped in a
   :class:`~repro.compiler.glue.CompiledBolt`; connections get
   marker-aware groupings chosen from the chain-head operator:
   round-robin (or sender-affinity) for stateless heads, key hash for
   keyed/sorting heads, single-task for sinks.

Sinks compile to :class:`~repro.compiler.glue.AlignedCaptureBolt`
instances returned in the result for reading output traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CompilationError
from repro.compiler.glue import AlignedCaptureBolt, CompiledBolt
from repro.dag.graph import TransductionDAG, Vertex, VertexKind
from repro.dag.typecheck import typecheck_dag
from repro.operators.base import Event, KV, Marker, Operator
from repro.operators.identity import IdentityOp
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.keyed_unordered import OpKeyedUnordered
from repro.operators.sort import SortOp
from repro.operators.stateless import OpStateless
from repro.storm.groupings import MarkerAwareGrouping
from repro.storm.topology import IteratorSpout, Topology, TopologyBuilder


@dataclass
class CompilerOptions:
    """Compilation switches.

    ``fusion`` — fuse chains into single bolts (disable for the ablation).
    ``stateless_policy`` — routing into stateless chain heads: ``"rr"``
    (even balancing) or ``"affinity"`` (sticky senders, minimizing
    cross-machine traffic; the optimization noted for Query I).
    """

    fusion: bool = True
    stateless_policy: str = "rr"


@dataclass
class SourceSpec:
    """How a DAG source vertex materializes as a spout.

    ``make_iterator(task_index, n_tasks)`` yields this task's partition
    of the stream (each partition must carry the full marker sequence).
    """

    make_iterator: Callable[[int, int], Iterator[Event]]
    parallelism: int = 1


def source_from_events(events: Sequence[Event], parallelism: int = 1) -> SourceSpec:
    """A source spec that partitions a concrete event list round-robin
    across spout tasks, broadcasting every marker to each task."""

    def make_iterator(task_index: int, n_tasks: int) -> Iterator[Event]:
        data_seen = 0
        for event in events:
            if isinstance(event, Marker):
                yield event
            else:
                if data_seen % n_tasks == task_index:
                    yield event
                data_seen += 1

    return SourceSpec(make_iterator, parallelism)


@dataclass
class CompiledTopology:
    """Compilation result: the topology plus handles into it."""

    topology: Topology
    #: sink vertex name -> its AlignedCaptureBolt (read outputs here).
    sinks: Dict[str, AlignedCaptureBolt]
    #: DAG vertex id -> topology component name.
    component_of: Dict[int, str]
    #: (src component, dst component) -> stream kind ("U"/"O") of the
    #: traffic on that topology edge, from the DAG type checker.  Online
    #: monitors (:meth:`repro.obs.monitor.MonitorHub.for_compiled`) use
    #: this to decide which invariants each edge must satisfy.
    edge_kinds: Dict[Tuple[str, str], str] = field(default_factory=dict)


def compile_dag(
    dag: TransductionDAG,
    sources: Dict[str, SourceSpec],
    options: Optional[CompilerOptions] = None,
) -> CompiledTopology:
    """Compile a typed transduction DAG into a topology (see module doc)."""
    options = options or CompilerOptions()
    kinds_by_edge_id = typecheck_dag(dag)

    producers, consumers = _wiring_without_merges(dag)

    for vertex in dag.vertices.values():
        if vertex.kind == VertexKind.SPLIT:
            raise CompilationError(
                "explicit splitter vertices are not compiled; express data "
                "parallelism with parallelism hints instead"
            )
    for source in dag.sources():
        if source.name not in sources:
            raise CompilationError(f"no SourceSpec supplied for {source.name!r}")

    chains = _fusion_chains(dag, producers, consumers, options)
    chain_of: Dict[int, List[int]] = {}
    for chain in chains:
        for vid in chain:
            chain_of[vid] = chain

    builder = TopologyBuilder(dag.name)
    component_of: Dict[int, str] = {}
    used_names: Dict[str, int] = {}

    def unique_name(base: str) -> str:
        count = used_names.get(base, 0)
        used_names[base] = count + 1
        return base if count == 0 else f"{base}.{count}"

    # Spouts.
    for source in dag.sources():
        spec = sources[source.name]
        name = unique_name(source.name)
        component_of[source.vertex_id] = name
        builder.set_spout(name, IteratorSpout(spec.make_iterator), spec.parallelism)

    # Upstream parallelism lookup (component-level) is needed for merge
    # frontends; compute lazily after all names are assigned, so collect
    # bolt declarations first.
    chain_names: Dict[int, str] = {}
    for chain in chains:
        ops = [dag.vertices[vid].payload for vid in chain]
        base = ";".join(dag.vertices[vid].name for vid in chain)
        name = unique_name(base)
        for vid in chain:
            component_of[vid] = name
        chain_names[id(chain)] = name

    sink_bolts: Dict[str, AlignedCaptureBolt] = {}

    # Declare bolts with their inputs.
    parallelism_of: Dict[str, int] = {}
    for source in dag.sources():
        parallelism_of[component_of[source.vertex_id]] = sources[source.name].parallelism
    for chain in chains:
        parallelism_of[chain_names[id(chain)]] = dag.vertices[chain[0]].parallelism

    for chain in chains:
        head = dag.vertices[chain[0]]
        name = chain_names[id(chain)]
        upstream_vertices = producers[head.vertex_id]
        upstream_components = sorted(
            {component_of[u] for u in upstream_vertices}
        )
        n_channels = sum(parallelism_of[c] for c in upstream_components)
        bolt = CompiledBolt(
            [dag.vertices[vid].payload for vid in chain],
            n_channels=n_channels,
            name=name,
        )
        declarer = builder.set_bolt(name, bolt, head.parallelism)
        policy = _routing_policy(head.payload, options)
        for upstream in upstream_components:
            declarer.grouping(upstream, MarkerAwareGrouping(policy))

    # Sinks.
    for sink in dag.sinks():
        name = unique_name(sink.name)
        component_of[sink.vertex_id] = name
        upstream_vertices = producers[sink.vertex_id]
        upstream_components = sorted({component_of[u] for u in upstream_vertices})
        n_channels = sum(parallelism_of[c] for c in upstream_components)
        bolt = AlignedCaptureBolt(n_channels=n_channels)
        sink_bolts[sink.name] = bolt
        declarer = builder.set_bolt(name, bolt, 1)
        for upstream in upstream_components:
            declarer.grouping(upstream, MarkerAwareGrouping("global"))

    topology = builder.build()
    edge_kinds = _component_edge_kinds(dag, kinds_by_edge_id, component_of)
    return CompiledTopology(topology, sink_bolts, component_of, edge_kinds)


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------


def _component_edge_kinds(
    dag: TransductionDAG,
    kinds_by_edge_id: Dict[int, str],
    component_of: Dict[int, str],
) -> Dict[Tuple[str, str], str]:
    """Project DAG edge kinds onto topology component edges.

    MERGE vertices dissolve into their consumer's frontend, so the kind
    of traffic a producer component puts on the wire is the kind of its
    DAG out-edge (possibly routed through merges).  Edges internal to a
    fusion chain never hit the wire and are skipped.  If two DAG edges
    map onto one component edge with different kinds, the weaker ``U``
    wins — monitors must never demand more order than the type grants.
    """

    def producer_edges(edge) -> List[Tuple[int, int]]:
        """(producer vertex id, wire edge id) pairs behind ``edge``."""
        src = dag.vertices[edge.src]
        if src.kind == VertexKind.MERGE:
            pairs: List[Tuple[int, int]] = []
            for upstream in dag.in_edges(src):
                pairs.extend(producer_edges(upstream))
            return pairs
        return [(src.vertex_id, edge.edge_id)]

    edge_kinds: Dict[Tuple[str, str], str] = {}
    for vertex in dag.vertices.values():
        if vertex.kind == VertexKind.MERGE:
            continue
        dst = component_of.get(vertex.vertex_id)
        if dst is None:
            continue
        for edge in dag.in_edges(vertex):
            for producer_id, edge_id in producer_edges(edge):
                src = component_of.get(producer_id)
                if src is None or src == dst:
                    continue
                kind = kinds_by_edge_id.get(edge_id, "U")
                existing = edge_kinds.get((src, dst))
                if existing is not None and existing != kind:
                    kind = "U"
                edge_kinds[(src, dst)] = kind
    return edge_kinds


def _wiring_without_merges(dag: TransductionDAG):
    """Producer/consumer vertex-id maps with MERGE vertices inlined.

    ``producers[v]`` lists the non-merge vertices feeding ``v`` (merges
    replaced by their own producers, transitively); ``consumers[v]``
    symmetric.
    """
    producers: Dict[int, List[int]] = {}
    consumers: Dict[int, List[int]] = {}

    def resolve_up(vid: int) -> List[int]:
        vertex = dag.vertices[vid]
        result: List[int] = []
        for edge in dag.in_edges(vertex):
            up = dag.vertices[edge.src]
            if up.kind == VertexKind.MERGE:
                result.extend(resolve_up(up.vertex_id))
            else:
                result.append(up.vertex_id)
        return result

    def resolve_down(vid: int) -> List[int]:
        vertex = dag.vertices[vid]
        result: List[int] = []
        for edge in dag.out_edges(vertex):
            down = dag.vertices[edge.dst]
            if down.kind == VertexKind.MERGE:
                result.extend(resolve_down(down.vertex_id))
            else:
                result.append(down.vertex_id)
        return result

    for vertex in dag.vertices.values():
        if vertex.kind == VertexKind.MERGE:
            continue
        producers[vertex.vertex_id] = resolve_up(vertex.vertex_id)
        consumers[vertex.vertex_id] = resolve_down(vertex.vertex_id)
    return producers, consumers


def _preserves_keys(operator: Operator) -> bool:
    """Whether the operator is guaranteed to emit under its input key."""
    return isinstance(operator, (SortOp, OpKeyedOrdered, IdentityOp))


def _needs_hash(operator: Operator) -> bool:
    """Whether the operator requires all items of a key in one task."""
    return isinstance(operator, (SortOp, OpKeyedOrdered, OpKeyedUnordered))


def _routing_policy(operator: Operator, options: CompilerOptions) -> str:
    if _needs_hash(operator):
        return "hash"
    if isinstance(operator, OpStateless):
        return options.stateless_policy
    # Kind-polymorphic (identity-like): hash is always sound.
    return "hash"


def _fusion_chains(
    dag: TransductionDAG,
    producers: Dict[int, List[int]],
    consumers: Dict[int, List[int]],
    options: CompilerOptions,
) -> List[List[int]]:
    """Group OP vertices into maximal fusable chains (topological order)."""
    op_ids = [
        v.vertex_id for v in dag.topological_order() if v.kind == VertexKind.OP
    ]

    def fusable(up_id: int, down_id: int) -> bool:
        if not options.fusion:
            return False
        up, down = dag.vertices[up_id], dag.vertices[down_id]
        if up.kind != VertexKind.OP or down.kind != VertexKind.OP:
            return False
        if consumers[up_id] != [down_id] or producers[down_id] != [up_id]:
            return False
        if up.parallelism != down.parallelism:
            return False
        if isinstance(down.payload, OpStateless) or isinstance(
            down.payload, IdentityOp
        ):
            return True
        if _needs_hash(down.payload) and _preserves_keys(up.payload):
            return True
        return False

    chain_of: Dict[int, List[int]] = {}
    chains: List[List[int]] = []
    for vid in op_ids:
        ups = producers[vid]
        if (
            len(ups) == 1
            and ups[0] in chain_of
            and fusable(ups[0], vid)
        ):
            chain = chain_of[ups[0]]
            # Only extend if the upstream is the current chain tail.
            if chain[-1] == ups[0]:
                chain.append(vid)
                chain_of[vid] = chain
                continue
        chain = [vid]
        chains.append(chain)
        chain_of[vid] = chain
    return chains
