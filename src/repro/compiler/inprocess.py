"""A second compilation target: the in-process pipeline backend.

The paper's conclusion lists "extend the compilation procedure to target
streaming frameworks other than Storm" as future work.  This backend is
the smallest instance of that claim: the same typed DAG, the same type
checking, compiled not to a distributed topology but to a single-process
*push pipeline* — an object consuming events and returning output
events, suitable for embedding the computation in another program (or
another engine's operator slot).

The compilation reuses the DAG's topological structure directly: every
vertex becomes a node holding its operator state; events are pushed
through edges with an iterative worklist (no recursion, so deep chains
and high-fan-out DAGs cannot hit the interpreter's recursion limit).

Two execution granularities share that worklist:

- **event-at-a-time** (:meth:`InProcessPipeline.push`) moves one event
  per worklist entry through ``Operator.handle``;
- **epoch-batched** (:meth:`InProcessPipeline.push_batch`, the default
  for :meth:`InProcessPipeline.run` when compiled with ``batched=True``)
  moves whole ``List[Event]`` blocks through ``Operator.handle_batch``
  and ``Merge.handle_batch``, paying the per-edge plumbing once per
  block instead of once per event.

The batched path is licensed by the edge types: the type checker has
already established what order each edge's consumers may rely on, and
the batch kernels (see :mod:`repro.operators`) reorder only what the
edge type declares invisible — so both granularities denote the same
trace transduction and their canonical sink traces coincide (asserted by
the parity suite).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Sequence, Tuple

from repro.errors import CompilationError
from repro.dag.graph import TransductionDAG, VertexKind
from repro.dag.typecheck import typecheck_dag
from repro.operators.base import Event
from repro.operators.merge import Merge


class InProcessPipeline:
    """A compiled single-process executor for a transduction DAG.

    Feed events per source with :meth:`push` (one at a time) or
    :meth:`push_batch` (a block at once); outputs accumulate per sink
    and are retrieved with :meth:`outputs`.  :meth:`run` is the batch
    convenience over whole streams — epoch-batched when the pipeline was
    compiled with ``batched=True``, event-at-a-time otherwise.  Both
    entry points thread the same operator states, so they can be mixed
    freely on one pipeline instance.
    """

    def __init__(self, dag: TransductionDAG, batched: bool = False):
        typecheck_dag(dag)
        self._dag = dag
        self._batched = batched
        self._order = dag.topological_order()
        self._op_state: Dict[int, Any] = {}
        self._merge_state: Dict[int, Any] = {}
        # Implicit merges for multi-input OP vertices.
        self._implicit_merge: Dict[int, Merge] = {}
        self._outputs: Dict[str, List[Event]] = {
            sink.name: [] for sink in dag.sinks()
        }
        self._source_edges: Dict[str, int] = {}
        for vertex in self._order:
            if vertex.kind == VertexKind.SOURCE:
                (edge,) = dag.out_edges(vertex)
                self._source_edges[vertex.name] = edge.edge_id
            elif vertex.kind == VertexKind.OP:
                self._op_state[vertex.vertex_id] = vertex.payload.initial_state()
                ins = dag.in_edges(vertex)
                if len(ins) > 1:
                    merge = Merge(len(ins))
                    self._implicit_merge[vertex.vertex_id] = merge
                    self._merge_state[vertex.vertex_id] = merge.initial_state()
            elif vertex.kind == VertexKind.MERGE:
                self._op_state[vertex.vertex_id] = vertex.payload.initial_state()
            elif vertex.kind == VertexKind.SPLIT:
                raise CompilationError(
                    "the in-process backend compiles logical DAGs; express "
                    "parallelism with hints (they are ignored here)"
                )

    # ------------------------------------------------------------------

    def push(self, source: str, event: Event) -> None:
        """Consume one event from the named source."""
        self._push_edge(self._resolve_source(source), event)

    def push_batch(self, source: str, events: Sequence[Event]) -> None:
        """Consume a block of events from the named source at once.

        The block travels the DAG as a unit: each vertex consumes the
        whole block through its batch kernel and forwards one output
        block per out-edge.
        """
        if events:
            self._push_edge_batch(self._resolve_source(source), list(events))

    def outputs(self, sink: str) -> List[Event]:
        """Everything delivered to ``sink`` so far."""
        return list(self._outputs[sink])

    def sink_names(self) -> List[str]:
        """The DAG's sink names, in declaration order."""
        return list(self._outputs)

    # -- fault tolerance (see repro.storm.recovery) --------------------

    def snapshot(self) -> Any:
        """Checkpoint the whole pipeline: every vertex state plus the
        sink output lengths.

        Meaningful at epoch boundaries — after pushing whole marker-
        terminated blocks through every source — where the DAG is fully
        drained (the push worklists run to completion), so there is no
        in-flight data to capture.
        """
        vertices = self._dag.vertices
        return {
            "ops": {
                vertex_id: vertices[vertex_id].payload.snapshot_state(state)
                for vertex_id, state in self._op_state.items()
            },
            "merges": {
                vertex_id: self._implicit_merge[vertex_id].snapshot_state(state)
                for vertex_id, state in self._merge_state.items()
            },
            "outputs": {
                name: len(events) for name, events in self._outputs.items()
            },
        }

    def restore(self, snapshot: Any) -> None:
        """Roll the pipeline back to a :meth:`snapshot` checkpoint.

        The snapshot survives intact, so it can be restored again after
        another failure.
        """
        vertices = self._dag.vertices
        for vertex_id, snap in snapshot["ops"].items():
            self._op_state[vertex_id] = (
                vertices[vertex_id].payload.restore_state(snap)
            )
        for vertex_id, snap in snapshot["merges"].items():
            self._merge_state[vertex_id] = (
                self._implicit_merge[vertex_id].restore_state(snap)
            )
        for name, length in snapshot["outputs"].items():
            del self._outputs[name][length:]

    def run(
        self, source_events: Dict[str, Sequence[Event]]
    ) -> Dict[str, List[Event]]:
        """Batch evaluation over whole streams, draining fully.

        Batched pipelines move each source's stream as one block;
        event-at-a-time pipelines interleave the sources round-robin,
        dropping a source from the rotation once its stream is
        exhausted.
        """
        if self._batched:
            for name, events in source_events.items():
                self.push_batch(name, events)
            return {name: self.outputs(name) for name in self._outputs}
        cursors = [(name, iter(events)) for name, events in source_events.items()]
        while cursors:
            alive = []
            for name, iterator in cursors:
                event = next(iterator, _EXHAUSTED)
                if event is _EXHAUSTED:
                    continue
                self.push(name, event)
                alive.append((name, iterator))
            cursors = alive
        return {name: self.outputs(name) for name in self._outputs}

    # ------------------------------------------------------------------

    def _resolve_source(self, source: str) -> int:
        try:
            return self._source_edges[source]
        except KeyError:
            raise CompilationError(f"unknown source {source!r}")

    def _push_edge(self, edge_id: int, event: Event) -> None:
        """Move one event through the DAG with an iterative worklist.

        Entries are ``(edge_id, event)``; FIFO processing preserves
        per-edge delivery order, which is the only order the operators
        rely on.
        """
        edges = self._dag.edges
        vertices = self._dag.vertices
        work: Deque[Tuple[int, Event]] = deque()
        work.append((edge_id, event))
        while work:
            edge_id, event = work.popleft()
            edge = edges[edge_id]
            vertex = vertices[edge.dst]
            if vertex.kind == VertexKind.SINK:
                self._outputs[vertex.name].append(event)
                continue
            if vertex.kind == VertexKind.MERGE:
                outputs = vertex.payload.handle(
                    self._op_state[vertex.vertex_id], edge.dst_port, event
                )
                (out_edge,) = self._dag.out_edges(vertex)
                for out in outputs:
                    work.append((out_edge.edge_id, out))
                continue
            # OP vertex, possibly with an implicit merge frontend.
            merge = self._implicit_merge.get(vertex.vertex_id)
            events: List[Event]
            if merge is not None:
                events = merge.handle(
                    self._merge_state[vertex.vertex_id], edge.dst_port, event
                )
            else:
                events = [event]
            state = self._op_state[vertex.vertex_id]
            out_edges = self._dag.out_edges(vertex)
            handle = vertex.payload.handle
            for incoming in events:
                for out in handle(state, incoming):
                    for out_edge in out_edges:
                        work.append((out_edge.edge_id, out))

    def _push_edge_batch(self, edge_id: int, events: List[Event]) -> None:
        """Move a whole block of events through the DAG at once.

        The worklist carries ``(edge_id, List[Event])`` blocks; each
        vertex consumes its block through the batch kernels, so the
        per-edge bookkeeping is paid once per block rather than once per
        event.
        """
        edges = self._dag.edges
        vertices = self._dag.vertices
        work: Deque[Tuple[int, List[Event]]] = deque()
        work.append((edge_id, events))
        while work:
            edge_id, block = work.popleft()
            if not block:
                continue
            edge = edges[edge_id]
            vertex = vertices[edge.dst]
            if vertex.kind == VertexKind.SINK:
                self._outputs[vertex.name].extend(block)
                continue
            if vertex.kind == VertexKind.MERGE:
                outputs = vertex.payload.handle_batch(
                    self._op_state[vertex.vertex_id], edge.dst_port, block
                )
                (out_edge,) = self._dag.out_edges(vertex)
                work.append((out_edge.edge_id, outputs))
                continue
            merge = self._implicit_merge.get(vertex.vertex_id)
            if merge is not None:
                block = merge.handle_batch(
                    self._merge_state[vertex.vertex_id], edge.dst_port, block
                )
                if not block:
                    continue
            outputs = vertex.payload.handle_batch(
                self._op_state[vertex.vertex_id], block
            )
            for out_edge in self._dag.out_edges(vertex):
                work.append((out_edge.edge_id, outputs))


class _Exhausted:
    """Sentinel marking a drained source iterator in ``run``."""


_EXHAUSTED = _Exhausted()


def compile_inprocess(
    dag: TransductionDAG, batched: bool = False
) -> InProcessPipeline:
    """Compile a typed DAG to the in-process backend (see module doc).

    ``batched=True`` selects the epoch-batched fast path for
    :meth:`InProcessPipeline.run` — same canonical sink traces, paid for
    with one batch-kernel invocation per block instead of one ``handle``
    per event.
    """
    return InProcessPipeline(dag, batched=batched)
