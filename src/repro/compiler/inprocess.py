"""A second compilation target: the in-process pipeline backend.

The paper's conclusion lists "extend the compilation procedure to target
streaming frameworks other than Storm" as future work.  This backend is
the smallest instance of that claim: the same typed DAG, the same type
checking, compiled not to a distributed topology but to a single-process
*push pipeline* — an object consuming one event at a time and returning
output events, suitable for embedding the computation in another program
(or another engine's operator slot).

The compilation reuses the DAG's topological structure directly: every
vertex becomes a node holding its operator state; events are pushed
through edges depth-first.  Because the pipeline consumes a single
linear input per source, multi-input vertices use the same
marker-aligned merge the distributed backend uses, so the output traces
coincide with the topology's (tested against both the denotational
semantics and the simulated cluster).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import CompilationError
from repro.dag.graph import TransductionDAG, VertexKind
from repro.dag.typecheck import typecheck_dag
from repro.operators.base import Event
from repro.operators.merge import Merge


class InProcessPipeline:
    """A compiled single-process executor for a transduction DAG.

    Feed events per source with :meth:`push`; outputs accumulate per
    sink and are retrieved with :meth:`outputs`.  :meth:`run` is the
    batch convenience over whole streams.
    """

    def __init__(self, dag: TransductionDAG):
        typecheck_dag(dag)
        self._dag = dag
        self._order = dag.topological_order()
        self._op_state: Dict[int, Any] = {}
        self._merge_state: Dict[int, Any] = {}
        # Implicit merges for multi-input OP vertices.
        self._implicit_merge: Dict[int, Merge] = {}
        self._outputs: Dict[str, List[Event]] = {
            sink.name: [] for sink in dag.sinks()
        }
        self._source_edges: Dict[str, int] = {}
        for vertex in self._order:
            if vertex.kind == VertexKind.SOURCE:
                (edge,) = dag.out_edges(vertex)
                self._source_edges[vertex.name] = edge.edge_id
            elif vertex.kind == VertexKind.OP:
                self._op_state[vertex.vertex_id] = vertex.payload.initial_state()
                ins = dag.in_edges(vertex)
                if len(ins) > 1:
                    merge = Merge(len(ins))
                    self._implicit_merge[vertex.vertex_id] = merge
                    self._merge_state[vertex.vertex_id] = merge.initial_state()
            elif vertex.kind == VertexKind.MERGE:
                self._op_state[vertex.vertex_id] = vertex.payload.initial_state()
            elif vertex.kind == VertexKind.SPLIT:
                raise CompilationError(
                    "the in-process backend compiles logical DAGs; express "
                    "parallelism with hints (they are ignored here)"
                )

    # ------------------------------------------------------------------

    def push(self, source: str, event: Event) -> None:
        """Consume one event from the named source."""
        try:
            edge_id = self._source_edges[source]
        except KeyError:
            raise CompilationError(f"unknown source {source!r}")
        self._push_edge(edge_id, event)

    def outputs(self, sink: str) -> List[Event]:
        """Everything delivered to ``sink`` so far."""
        return list(self._outputs[sink])

    def run(
        self, source_events: Dict[str, Sequence[Event]]
    ) -> Dict[str, List[Event]]:
        """Batch evaluation: interleave sources round-robin, drain fully."""
        cursors = {name: 0 for name in source_events}
        remaining = sum(len(v) for v in source_events.values())
        while remaining:
            for name, events in source_events.items():
                if cursors[name] < len(events):
                    self.push(name, events[cursors[name]])
                    cursors[name] += 1
                    remaining -= 1
        return {name: self.outputs(name) for name in self._outputs}

    # ------------------------------------------------------------------

    def _push_edge(self, edge_id: int, event: Event) -> None:
        edge = self._dag.edges[edge_id]
        vertex = self._dag.vertices[edge.dst]
        if vertex.kind == VertexKind.SINK:
            self._outputs[vertex.name].append(event)
            return
        if vertex.kind == VertexKind.MERGE:
            outputs = vertex.payload.handle(
                self._op_state[vertex.vertex_id], edge.dst_port, event
            )
            (out_edge,) = self._dag.out_edges(vertex)
            for out in outputs:
                self._push_edge(out_edge.edge_id, out)
            return
        # OP vertex, possibly with an implicit merge frontend.
        merge = self._implicit_merge.get(vertex.vertex_id)
        events: List[Event]
        if merge is not None:
            events = merge.handle(
                self._merge_state[vertex.vertex_id], edge.dst_port, event
            )
        else:
            events = [event]
        state = self._op_state[vertex.vertex_id]
        out_edges = self._dag.out_edges(vertex)
        for incoming in events:
            for out in vertex.payload.handle(state, incoming):
                for out_edge in out_edges:
                    self._push_edge(out_edge.edge_id, out)


def compile_inprocess(dag: TransductionDAG) -> InProcessPipeline:
    """Compile a typed DAG to the in-process backend (see module doc)."""
    return InProcessPipeline(dag)
