"""repro — a reproduction of *Data-Trace Types for Distributed Stream
Processing Systems* (Mamouras, Stanford, Alur, Ives, Tannen; PLDI 2019).

Layers, bottom-up:

- :mod:`repro.traces` — the formal model: data-trace types, traces as
  equivalence classes, pomsets (Section 3.1).
- :mod:`repro.transductions` — data-string/data-trace transductions,
  consistency, composition (Sections 3.2–3.3).
- :mod:`repro.operators` — the Table 1 operator templates plus the
  structural operators MRG / RR / HASH / UNQ / SORT (Section 4).
- :mod:`repro.dag` — typed transduction DAGs: type checking, denotational
  evaluation, semantics-preserving parallelization (Theorems 4.2–4.3,
  Corollary 4.4).
- :mod:`repro.storm` — the Storm-like execution substrate: topologies,
  groupings, and a discrete-event cluster simulator (Section 5).
- :mod:`repro.compiler` — DAG-to-topology compilation with marker glue
  and fusion (Section 5).
- :mod:`repro.db`, :mod:`repro.ml` — the database and machine-learning
  substrates the evaluation workloads need.
- :mod:`repro.apps` — the Section 6 applications (Yahoo benchmark
  queries I–VI, DEBS'14 Smart Homes, the Section 2 IoT pipeline).
- :mod:`repro.bench` — the experiment harness regenerating Figures 4/6
  and the motivation results.

Quickstart: see ``examples/quickstart.py`` — build a DAG from the
templates, compile it, and run it on the simulated cluster.
"""

from repro.errors import (
    ReproError,
    TraceTypeError,
    ConsistencyError,
    DagError,
    CompilationError,
    TopologyError,
    SimulationError,
)
from repro.traces import (
    DataTraceType,
    DataTrace,
    unordered_type,
    ordered_type,
    Item,
    marker,
)
from repro.operators import (
    OpStateless,
    OpKeyedOrdered,
    OpKeyedUnordered,
    Merge,
    RoundRobinSplit,
    HashSplit,
    SortOp,
)
from repro.operators.base import KV, Marker
from repro.dag import TransductionDAG, evaluate_dag, deploy, typecheck_dag
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events, CompilerOptions
from repro.storm import Cluster, Simulator, LocalRunner

__version__ = "0.1.0"

__all__ = [
    "ReproError",
    "TraceTypeError",
    "ConsistencyError",
    "DagError",
    "CompilationError",
    "TopologyError",
    "SimulationError",
    "DataTraceType",
    "DataTrace",
    "unordered_type",
    "ordered_type",
    "Item",
    "marker",
    "OpStateless",
    "OpKeyedOrdered",
    "OpKeyedUnordered",
    "Merge",
    "RoundRobinSplit",
    "HashSplit",
    "SortOp",
    "KV",
    "Marker",
    "TransductionDAG",
    "evaluate_dag",
    "deploy",
    "typecheck_dag",
    "compile_dag",
    "source_from_events",
    "CompilerOptions",
    "Cluster",
    "Simulator",
    "LocalRunner",
    "__version__",
]
