"""Snapshot exporters: Prometheus text exposition and JSONL telemetry.

:func:`prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
(and, optionally, a :class:`~repro.obs.monitor.MonitorHub`) in the
Prometheus text exposition format, version 0.0.4: counters as ``_total``
series, gauges with an extra ``_max`` series, histograms as summaries
with ``quantile`` labels.  The output is a point-in-time scrape of a
finished (or in-flight) simulated run — suitable for pushing to a
Pushgateway or diffing in CI.

JSONL telemetry lives on :meth:`MonitorHub.telemetry_records`; this
module only adds the file-writing convenience wrappers so the CLI has a
single import for both formats.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.tracing import _open_for_write


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels, extra=()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_text(metrics: Any, monitors: Any = None,
                    namespace: str = "repro") -> str:
    """Render metrics (and monitor state) as Prometheus exposition text.

    ``metrics`` is a registry with ``.metrics()`` (a
    :class:`~repro.obs.metrics.NullRegistry` renders nothing);
    ``monitors`` is an optional :class:`~repro.obs.monitor.MonitorHub`
    contributing violation/alert/watermark series.
    """
    lines: List[str] = []
    families: dict = {}
    for metric in (metrics.metrics() if metrics is not None else []):
        families.setdefault(metric.name, []).append(metric)

    for name in sorted(families):
        group = families[name]
        metric_name = f"{namespace}_{_sanitize(name)}"
        sample = group[0]
        if isinstance(sample, Counter):
            lines.append(f"# TYPE {metric_name}_total counter")
            for m in group:
                lines.append(
                    f"{metric_name}_total{_label_str(m.labels)} {_fmt(m.value)}"
                )
        elif isinstance(sample, Gauge):
            lines.append(f"# TYPE {metric_name} gauge")
            for m in group:
                if m.value is not None:
                    lines.append(
                        f"{metric_name}{_label_str(m.labels)} {_fmt(m.value)}"
                    )
            maxes = [m for m in group if m.max is not None]
            if maxes:
                lines.append(f"# TYPE {metric_name}_max gauge")
                for m in maxes:
                    lines.append(
                        f"{metric_name}_max{_label_str(m.labels)} {_fmt(m.max)}"
                    )
        elif isinstance(sample, Histogram):
            lines.append(f"# TYPE {metric_name} summary")
            for m in group:
                for q, p in (("0.5", 50), ("0.9", 90), ("0.99", 99)):
                    lines.append(
                        f"{metric_name}"
                        f"{_label_str(m.labels, [('quantile', q)])} "
                        f"{_fmt(m.percentile(p))}"
                    )
                lines.append(
                    f"{metric_name}_sum{_label_str(m.labels)} {_fmt(m.sum())}"
                )
                lines.append(
                    f"{metric_name}_count{_label_str(m.labels)} "
                    f"{float(m.count()):g}"
                )

    if monitors is not None:
        lines.extend(_monitor_series(monitors, namespace))
    return "\n".join(lines) + ("\n" if lines else "")


def _monitor_series(monitors: Any, namespace: str) -> List[str]:
    lines: List[str] = []
    name = f"{namespace}_monitor_violations_total"
    lines.append(f"# HELP {name} Data-trace type invariant violations observed.")
    lines.append(f"# TYPE {name} counter")
    per_edge: dict = {}
    for v in monitors.violations:
        key = (v.invariant, v.edge)
        per_edge[key] = per_edge.get(key, 0) + 1
    # Capped storage can undercount per-edge; fall back to the by-kind
    # totals for the label-free series so the grand total stays exact.
    for (invariant, edge), count in sorted(per_edge.items()):
        lines.append(
            f"{name}{_label_str((), [('invariant', invariant), ('edge', edge)])}"
            f" {float(count):g}"
        )
    lines.append(f"{name} {float(monitors.violation_count()):g}")

    name = f"{namespace}_monitor_alerts_total"
    lines.append(f"# TYPE {name} counter")
    by_kind: dict = {}
    for a in monitors.alerts:
        by_kind[a.kind] = by_kind.get(a.kind, 0) + 1
    for kind, count in sorted(by_kind.items()):
        lines.append(
            f"{name}{_label_str((), [('kind', kind)])} {float(count):g}"
        )
    lines.append(f"{name} {float(len(monitors.alerts)):g}")

    name = f"{namespace}_monitor_frontier_epochs"
    lines.append(f"# TYPE {name} gauge")
    lines.append(f"{name} {float(monitors.summary()['frontier_epochs']):g}")

    name = f"{namespace}_monitor_watermark_lag_epochs"
    lines.append(f"# TYPE {name} gauge")
    for (component, task) in sorted(monitors.watermarks):
        lag = monitors.watermark_lag(component, task)
        if lag is None:
            continue
        labels = [("component", component), ("task", task)]
        lines.append(f"{name}{_label_str((), labels)} {float(lag):g}")
    return lines


def write_prometheus(path: str, metrics: Any, monitors: Any = None,
                     namespace: str = "repro") -> None:
    with _open_for_write(path) as fh:
        fh.write(prometheus_text(metrics, monitors, namespace))


def write_telemetry(path: str, monitors: Any) -> None:
    """JSONL telemetry for a hub (thin alias kept beside the Prometheus
    writer so the CLI imports one exporter module)."""
    monitors.write_telemetry_jsonl(path)


def render_watch_line(row: dict) -> Optional[str]:
    """One compact dashboard line for a telemetry row (``repro obs watch``)."""
    if row.get("type") == "recovery":
        return (
            f"t={row['time']:>10.4f}  ROLLBACK to epoch "
            f"{row.get('epoch')!s} (recovery #{row.get('recoveries_total')})"
        )
    if row.get("type") != "telemetry":
        return None
    lag = row.get("max_watermark_lag")
    lag_str = "-" if lag is None else f"{lag}@{row.get('max_watermark_lag_task')}"
    return (
        f"t={row['time']:>10.4f}  epoch#{row['frontier_index']:>4} "
        f"{str(row.get('frontier_epoch')):>12}  lag={lag_str:<16} "
        f"qmax={row.get('max_queue_depth', 0):>5.0f}  "
        f"violations={row.get('violations_total', 0)}  "
        f"alerts={row.get('alerts_total', 0)}"
    )
