"""Online invariant monitors: live data-trace type conformance and progress.

The offline story (the shuffle-refuter in
:mod:`repro.transductions.consistency`, Theorem 4.2 for the templates)
establishes that typed topologies *should* preserve (X, Y)-consistency;
this module watches a *running* topology and raises structured evidence
when the wire traffic contradicts the declared types.  Two monitor
families hang off a :class:`MonitorHub`:

**Type-conformance monitors** (:class:`EdgeMonitor`) — one per topology
edge ``src component -> dst component``, fed every delivery on that
edge.  Checked streamingly with O(channels x keys) state:

- *per-key order* (``O(K,V)`` edges only, needs ``order_key``): within
  one block (between markers) on one channel, same-key items must
  arrive in nondecreasing order under the configured order key —
  arrival order alone carries no intrinsic order to falsify, so the
  check activates only when the config declares one (e.g.
  :func:`default_order_token` for event-time-stamped values);
- *marker well-formedness* (all keyed edges): per channel, marker
  timestamps must be strictly increasing and never repeat
  (``duplicate-marker`` / ``out-of-epoch-marker``), and the k-th marker
  of every channel must carry the same timestamp (``epoch-mismatch`` —
  the condition the merge frontend would otherwise hit as a hard
  :class:`~repro.errors.SimulationError` mid-alignment);
- *post-marker stragglers* (optional, needs ``epoch_of``): an item whose
  semantic epoch is at or before the channel's last delivered marker
  arrived after that marker passed — the runtime shadow of the
  Section 2 bug where per-key order is destroyed across a block
  boundary.

Every violation becomes an :class:`InvariantViolation` carrying the
edge, channel, epoch, offending item, and simulated time.

**Progress monitors** (hub-level) — per-operator *watermarks* (the last
marker epoch each task sealed through its merge frontend), watermark lag
against the source frontier (markers the spouts have emitted), and
queue-depth threshold / growth-trend detection, emitting
:class:`ProgressAlert` events at configurable thresholds.

Monitors are sampling-aware (:class:`MonitorConfig`): ``"all"`` checks
every item, ``"nth"`` every N-th data item per channel, and ``"epoch"``
reduces per-item work to a per-block count/digest so full-run overhead
stays in the low percent range.  Monitoring is strictly read-only: it
never touches the RNG, the schedule, or operator state, so a monitored
run is bit-identical to a plain run (pinned by the parity tests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.operators.base import KV, Marker

EdgeKey = Tuple[str, str]

# -- violation kinds ---------------------------------------------------

PER_KEY_ORDER = "per-key-order"
DUPLICATE_MARKER = "duplicate-marker"
OUT_OF_EPOCH_MARKER = "out-of-epoch-marker"
EPOCH_MISMATCH = "epoch-mismatch"
POST_MARKER_STRAGGLER = "post-marker-straggler"

#: Every invariant kind an EdgeMonitor can raise.
INVARIANT_KINDS = (
    PER_KEY_ORDER,
    DUPLICATE_MARKER,
    OUT_OF_EPOCH_MARKER,
    EPOCH_MISMATCH,
    POST_MARKER_STRAGGLER,
)

# -- alert kinds -------------------------------------------------------

QUEUE_DEPTH = "queue-depth"
QUEUE_GROWTH = "queue-growth"
WATERMARK_LAG = "watermark-lag"


@dataclass(frozen=True)
class InvariantViolation:
    """One observed contradiction of an edge's data-trace type.

    ``epoch`` is the marker timestamp of the block the offending item
    arrived in (``None`` when no marker passed the channel yet);
    ``channel`` names the upstream task (``"component[task]"``) whose
    substream misbehaved.
    """

    invariant: str
    edge: str
    component: str
    task: int
    channel: str
    epoch: Any
    item: Optional[str]
    time: float
    detail: str

    def __str__(self):
        text = (
            f"[{self.invariant}] edge {self.edge} -> {self.component}"
            f"[{self.task}] channel {self.channel} epoch {self.epoch!r} "
            f"at t={self.time:.6f}: {self.detail}"
        )
        if self.item is not None:
            text += f" (item {self.item})"
        return text

    def to_record(self) -> Dict[str, Any]:
        """JSONL telemetry record (see :mod:`repro.obs.schema`)."""
        return {
            "type": "violation",
            "invariant": self.invariant,
            "edge": self.edge,
            "component": self.component,
            "task": self.task,
            "channel": self.channel,
            "epoch": None if self.epoch is None else str(self.epoch),
            "item": self.item,
            "time": self.time,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ProgressAlert:
    """A progress-monitor threshold crossing (not a type violation)."""

    kind: str
    component: str
    task: int
    time: float
    value: float
    threshold: float
    detail: str = ""

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "alert",
            "kind": self.kind,
            "component": self.component,
            "task": self.task,
            "time": self.time,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
        }


def default_order_token(value: Any) -> Any:
    """Order token for the ``(payload..., timestamp)`` value idiom.

    On a FIFO channel the per-key *arrival* order is, by definition, the
    trace's per-key order — an O-edge violation is only falsifiable
    against an order the stream itself declares, which is why
    :class:`MonitorConfig` requires an explicit ``order_key`` to enable
    the per-key check.  This helper is the ready-made key for streams
    following the repo's event-time idiom of trailing-timestamp tuples
    (``map_stage`` / ``SensorInterpolation`` in :mod:`repro.apps.iot`):
    it returns the trailing numeric element, or ``None`` (skip the
    item) for any other shape.  Beware pipelines that put the timestamp
    first — e.g. the Smart-Homes ``Predict`` stage emits
    ``(ts, prediction)`` — where this key would compare the wrong field.
    """
    if isinstance(value, (tuple, list)) and value:
        last = value[-1]
        if isinstance(last, (int, float)) and not isinstance(last, bool):
            return last
    return None


@dataclass
class MonitorConfig:
    """Tunables shared by every monitor attached to one hub.

    ``sampling`` — ``"all"`` (check every data item), ``"nth"`` (check
    every ``nth`` data item per channel; markers are always checked), or
    ``"epoch"`` (no per-item checks; keep per-block counts/digests only).
    ``order_key`` — for O edges, extracts the comparable per-key order
    token from a :class:`KV`; items whose token is ``None`` are skipped.
    ``None`` (the default) disables the per-key order check: on a FIFO
    channel, arrival order *is* the trace's per-key order, so a
    violation is only falsifiable against an order the stream declares
    (see :func:`default_order_token` for the event-time idiom).
    ``epoch_of`` — optional; extracts an item's *semantic* epoch from a
    :class:`KV` to enable the post-marker-straggler check.
    ``queue_depth_alert`` / ``queue_growth_window`` — backpressure
    alerting: alert when a task's queue reaches the threshold, or grows
    monotonically across the whole sample window.
    ``watermark_lag_alert`` — alert when a task's sealed epoch falls
    this many epochs behind the source frontier.
    ``max_violations`` — storage cap; further violations are counted
    but not retained (``MonitorHub.dropped_violations``).
    """

    sampling: str = "all"
    nth: int = 10
    order_key: Optional[Callable[[KV], Any]] = None
    epoch_of: Optional[Callable[[KV], Any]] = None
    queue_depth_alert: Optional[float] = None
    queue_growth_window: int = 12
    watermark_lag_alert: Optional[int] = None
    max_violations: int = 1000

    def __post_init__(self):
        if self.sampling not in ("all", "nth", "epoch"):
            raise ValueError(f"unknown sampling mode {self.sampling!r}")
        if self.nth < 1:
            raise ValueError("nth must be >= 1")


class _ChannelState:
    """Per (consumer task, upstream task) monitoring state."""

    __slots__ = (
        "marker_count",
        "last_marker",
        "seen_markers",
        "key_last",
        "items_seen",
        "block_items",
        "block_digest",
    )

    def __init__(self):
        self.marker_count = 0
        self.last_marker: Any = None
        self.seen_markers: set = set()
        #: key -> last sampled order token within the current block.
        self.key_last: Dict[Any, Any] = {}
        self.items_seen = 0
        self.block_items = 0
        self.block_digest = 0


class _TaskEdgeState:
    """Per consumer-task view of one edge: its channels + marker sequence."""

    __slots__ = ("channels", "marker_seq")

    def __init__(self):
        self.channels: Dict[int, _ChannelState] = {}
        #: k-th aligned timestamp, established by the first channel to
        #: deliver its k-th marker; later channels must agree.
        self.marker_seq: List[Any] = []


class EdgeMonitor:
    """Type-conformance monitor for one topology edge.

    ``kind`` is the edge's stream kind: ``"O"`` enables the per-key
    order check, ``"U"`` checks marker well-formedness only.  The
    monitor is fed raw deliveries by the hub; it never buffers events.
    """

    __slots__ = ("src", "dst", "kind", "config", "_record", "_tasks",
                 "items_observed", "markers_observed")

    def __init__(self, src: str, dst: str, kind: str, config: MonitorConfig,
                 record: Callable[[InvariantViolation], None]):
        if kind not in ("U", "O"):
            raise ValueError(f"edge kind must be 'U' or 'O', got {kind!r}")
        self.src = src
        self.dst = dst
        self.kind = kind
        self.config = config
        self._record = record
        self._tasks: Dict[int, _TaskEdgeState] = {}
        self.items_observed = 0
        self.markers_observed = 0

    @property
    def edge(self) -> str:
        return f"{self.src}->{self.dst}"

    def _violate(self, invariant: str, task: int, channel: int, epoch: Any,
                 item: Optional[Any], time: float, detail: str) -> None:
        self._record(InvariantViolation(
            invariant=invariant,
            edge=self.edge,
            component=self.dst,
            task=task,
            channel=f"{self.src}[{channel}]",
            epoch=epoch,
            item=None if item is None else repr(item),
            time=time,
            detail=detail,
        ))

    def observe(self, task: int, channel: int, event: Any, time: float) -> None:
        """One delivery on this edge: ``channel`` is the upstream task."""
        state = self._tasks.get(task)
        if state is None:
            state = self._tasks[task] = _TaskEdgeState()
        ch = state.channels.get(channel)
        if ch is None:
            ch = state.channels[channel] = _ChannelState()

        if isinstance(event, Marker):
            self.markers_observed += 1
            self._observe_marker(state, ch, task, channel, event, time)
            return

        self.items_observed += 1
        config = self.config
        ch.block_items += 1
        if config.sampling == "epoch":
            # Digest mode: one hash-xor per item, no per-key state.
            ch.block_digest ^= hash(event.key)
            return
        ch.items_seen += 1
        if config.sampling == "nth" and ch.items_seen % config.nth != 0:
            return
        self._check_item(ch, task, channel, event, time)

    # -- per-item checks -----------------------------------------------

    def _check_item(self, ch: _ChannelState, task: int, channel: int,
                    event: KV, time: float) -> None:
        config = self.config
        if config.epoch_of is not None and ch.last_marker is not None:
            item_epoch = config.epoch_of(event)
            late = False
            try:
                late = item_epoch <= ch.last_marker
            except TypeError:
                pass
            if late:
                self._violate(
                    POST_MARKER_STRAGGLER, task, channel, ch.last_marker,
                    event, time,
                    f"item of epoch {item_epoch!r} arrived after marker "
                    f"{ch.last_marker!r} passed this channel",
                )
        if self.kind != "O" or config.order_key is None:
            return
        token = config.order_key(event)
        if token is None:
            return
        last = ch.key_last.get(event.key)
        if last is not None:
            out_of_order = False
            try:
                out_of_order = token < last
            except TypeError:
                pass
            if out_of_order:
                self._violate(
                    PER_KEY_ORDER, task, channel, ch.last_marker, event, time,
                    f"key {event.key!r}: order token {token!r} after "
                    f"{last!r} within one block of an O edge",
                )
        ch.key_last[event.key] = token

    # -- marker checks -------------------------------------------------

    def _observe_marker(self, state: _TaskEdgeState, ch: _ChannelState,
                        task: int, channel: int, event: Marker,
                        time: float) -> None:
        ts = event.timestamp
        if ts in ch.seen_markers:
            self._violate(
                DUPLICATE_MARKER, task, channel, ts, event, time,
                f"marker {ts!r} delivered twice on one channel",
            )
        elif ch.last_marker is not None:
            regressed = False
            try:
                regressed = ts <= ch.last_marker
            except TypeError:
                pass
            if regressed:
                self._violate(
                    OUT_OF_EPOCH_MARKER, task, channel, ts, event, time,
                    f"marker {ts!r} not after previous marker "
                    f"{ch.last_marker!r}",
                )
        position = ch.marker_count
        if position < len(state.marker_seq):
            expected = state.marker_seq[position]
            if ts != expected:
                self._violate(
                    EPOCH_MISMATCH, task, channel, ts, event, time,
                    f"channel's marker #{position} is {ts!r} but the edge "
                    f"established {expected!r} at that position",
                )
        else:
            state.marker_seq.append(ts)
        ch.marker_count += 1
        ch.seen_markers.add(ts)
        ch.last_marker = ts
        ch.key_last.clear()
        ch.block_items = 0
        ch.block_digest = 0

    # -- introspection -------------------------------------------------

    def reset_for_replay(self) -> None:
        """Forget per-task alignment state ahead of a recovery replay.

        After a rollback the reliability layer re-delivers epochs from
        the restored checkpoint; replayed markers and items would trip
        the marker-count and order checks against the pre-crash state,
        so the recovery coordinator clears it.  Observation totals and
        recorded violations survive — only the in-flight protocol state
        is dropped."""
        self._tasks.clear()

    def channel_states(self) -> Dict[Tuple[int, int], _ChannelState]:
        """``(consumer task, upstream task) -> channel state`` (tests)."""
        return {
            (task, channel): ch
            for task, state in self._tasks.items()
            for channel, ch in state.channels.items()
        }


class _QueueTrend:
    """Sliding window of one task's queue-depth samples."""

    __slots__ = ("window", "alerted_depth", "alerted_growth")

    def __init__(self, size: int):
        self.window: deque = deque(maxlen=max(2, size))
        self.alerted_depth = False
        self.alerted_growth = False


class MonitorHub:
    """All monitors of one run: edge monitors plus progress tracking.

    Build one with :meth:`for_compiled` (auto-attaches a typed monitor
    per compiled edge), :meth:`for_topology` (marker well-formedness on
    every edge of an arbitrary topology), or attach edges by hand with
    :meth:`attach_edge`.  Hand the hub to the simulator through
    ``ObsContext(..., monitors=hub)``.
    """

    enabled = True

    def __init__(self, config: Optional[MonitorConfig] = None):
        self.config = config or MonitorConfig()
        self.edges: Dict[EdgeKey, EdgeMonitor] = {}
        self.violations: List[InvariantViolation] = []
        self.violation_counts: Dict[str, int] = {}
        self.dropped_violations = 0
        self.alerts: List[ProgressAlert] = []
        #: (component, task) -> timestamp of the last sealed epoch.
        self.watermarks: Dict[Tuple[str, int], Any] = {}
        #: marker timestamps in spout emission order (the source frontier).
        self._frontier: List[Any] = []
        self._frontier_index: Dict[Any, int] = {}
        self._queues: Dict[Tuple[str, int], _QueueTrend] = {}
        #: Running peak queue depth across the run (cheap scalar track).
        self._queue_peak = 0.0
        self._queue_peak_task: Optional[str] = None
        self._lag_alerted: set = set()
        self._telemetry: List[Dict[str, Any]] = []
        self._seq = 0
        self.closed = False
        #: rollbacks observed: (restored epoch, time) per recovery.
        self.recoveries: List[Tuple[Any, float]] = []
        #: epoch restored by the most recent rollback (None before any).
        self.recovery_epoch: Any = None
        #: optional live-view callback, called with each telemetry row.
        self.on_telemetry: Optional[Callable[[Dict[str, Any]], None]] = None

    # -- construction --------------------------------------------------

    @classmethod
    def for_compiled(cls, compiled: Any,
                     config: Optional[MonitorConfig] = None) -> "MonitorHub":
        """A hub with one typed monitor per edge of a compiled topology.

        ``compiled`` is a :class:`~repro.compiler.compile.CompiledTopology`;
        its ``edge_kinds`` map (from the DAG type checker) supplies each
        edge's stream kind, so O edges get the per-key order check.
        """
        hub = cls(config)
        for (src, dst), kind in sorted(compiled.edge_kinds.items()):
            hub.attach_edge(src, dst, kind=kind)
        return hub

    @classmethod
    def for_topology(cls, topology: Any,
                     config: Optional[MonitorConfig] = None) -> "MonitorHub":
        """A hub monitoring marker well-formedness on every edge.

        Without type information every edge is treated as ``U``; use
        :meth:`attach_edge` to upgrade specific edges to ``O``.
        """
        hub = cls(config)
        for spec in topology.components.values():
            for upstream in spec.inputs:
                hub.attach_edge(upstream, spec.name, kind="U")
        return hub

    def attach_edge(self, src: str, dst: str, kind: str = "U") -> EdgeMonitor:
        monitor = EdgeMonitor(src, dst, kind, self.config, self._record)
        self.edges[(src, dst)] = monitor
        return monitor

    # -- recording -----------------------------------------------------

    def _record(self, violation: InvariantViolation) -> None:
        self.violation_counts[violation.invariant] = (
            self.violation_counts.get(violation.invariant, 0) + 1
        )
        if len(self.violations) < self.config.max_violations:
            self.violations.append(violation)
        else:
            self.dropped_violations += 1

    def _alert(self, alert: ProgressAlert) -> None:
        self.alerts.append(alert)

    # -- simulator taps (read-only, called on the hot path) ------------

    def on_delivery(self, component: str, task: int, tup: Any,
                    time: float, depth: Optional[float] = None) -> None:
        """One tuple delivered to ``component[task]``.

        ``depth`` is the consumer's queue depth after the delivery; when
        supplied it feeds the peak tracker and (if configured) the
        queue-depth/growth alerts, folding what would be a second
        hot-path call into this one.
        """
        monitor = self.edges.get((tup.src_component, component))
        if monitor is not None:
            monitor.observe(task, tup.src_task, tup.event, time)
        if depth is not None:
            if depth > self._queue_peak:
                self._queue_peak = depth
                self._queue_peak_task = f"{component}[{task}]"
            if self.config.queue_depth_alert is not None:
                self.on_queue_depth(component, task, time, depth)

    def on_queue_depth(self, component: str, task: int, time: float,
                       depth: float) -> None:
        key = (component, task)
        if depth > self._queue_peak:
            self._queue_peak = depth
            self._queue_peak_task = f"{component}[{task}]"
        threshold = self.config.queue_depth_alert
        if threshold is None:
            return
        trend = self._queues.get(key)
        if trend is None:
            trend = self._queues[key] = _QueueTrend(self.config.queue_growth_window)
        trend.window.append(depth)
        if depth >= threshold:
            if not trend.alerted_depth:
                trend.alerted_depth = True
                self._alert(ProgressAlert(
                    QUEUE_DEPTH, component, task, time, depth, threshold,
                    f"queue depth {depth:.0f} reached alert threshold",
                ))
        else:
            trend.alerted_depth = False
        window = trend.window
        if len(window) == window.maxlen:
            growing = all(b > a for a, b in zip(window, list(window)[1:]))
            if growing and not trend.alerted_growth:
                trend.alerted_growth = True
                self._alert(ProgressAlert(
                    QUEUE_GROWTH, component, task, time, depth,
                    float(window.maxlen),
                    f"queue grew monotonically across {window.maxlen} "
                    "consecutive deliveries (backpressure building)",
                ))
            elif not growing:
                trend.alerted_growth = False

    def on_source_marker(self, component: str, timestamp: Any,
                         time: float) -> None:
        """A spout emitted (the first copy of) marker ``timestamp``."""
        if timestamp in self._frontier_index:
            return
        self._frontier_index[timestamp] = len(self._frontier)
        self._frontier.append(timestamp)
        self._snapshot(time)

    def on_epoch_sealed(self, component: str, task: int, timestamp: Any,
                        time: float) -> None:
        """``component[task]`` completed alignment of epoch ``timestamp``."""
        key = (component, task)
        self.watermarks[key] = timestamp
        threshold = self.config.watermark_lag_alert
        if threshold is None:
            return
        lag = self.watermark_lag(component, task)
        if lag is None:
            return
        if lag >= threshold:
            if key not in self._lag_alerted:
                self._lag_alerted.add(key)
                self._alert(ProgressAlert(
                    WATERMARK_LAG, component, task, time, float(lag),
                    float(threshold),
                    f"watermark {timestamp!r} is {lag} epochs behind the "
                    "source frontier",
                ))
        else:
            self._lag_alerted.discard(key)

    def on_rollback(self, epoch: Any, time: float) -> None:
        """The recovery coordinator rolled the run back to ``epoch``.

        Resets every edge monitor's in-flight protocol state so the
        replay is judged on its own terms (re-delivered markers must not
        count as duplicates of their pre-crash copies), records the
        recovery, and emits a ``"recovery"`` telemetry record."""
        for monitor in self.edges.values():
            monitor.reset_for_replay()
        if epoch is None:
            self.watermarks.clear()
        else:
            # Every restored task is back at the checkpoint epoch.
            self.watermarks = {key: epoch for key in self.watermarks}
        self._lag_alerted.clear()
        self.recoveries.append((epoch, time))
        self.recovery_epoch = epoch
        row = {
            "type": "recovery",
            "epoch": None if epoch is None else str(epoch),
            "time": time,
            "recoveries_total": len(self.recoveries),
        }
        self._telemetry.append(row)
        if self.on_telemetry is not None:
            self.on_telemetry(row)

    def close(self, time: float) -> None:
        """End of run: take the final telemetry snapshot."""
        if self.closed:
            return
        self.closed = True
        self._snapshot(time, final=True)

    # -- queries -------------------------------------------------------

    def frontier_epoch(self) -> Optional[Any]:
        """The newest marker timestamp any spout has emitted."""
        return self._frontier[-1] if self._frontier else None

    def watermark_lag(self, component: str, task: int) -> Optional[int]:
        """Epochs between the source frontier and the task's watermark.

        ``None`` when the task sealed nothing yet or its watermark is not
        a frontier timestamp (hand-fed monitors without source taps).
        """
        watermark = self.watermarks.get((component, task))
        if watermark is None or not self._frontier:
            return None
        index = self._frontier_index.get(watermark)
        if index is None:
            return None
        return len(self._frontier) - 1 - index

    def max_watermark_lag(self) -> Tuple[Optional[int], Optional[str]]:
        """The worst watermark lag and the ``component[task]`` holding it."""
        worst: Optional[int] = None
        who: Optional[str] = None
        for (component, task) in self.watermarks:
            lag = self.watermark_lag(component, task)
            if lag is not None and (worst is None or lag > worst):
                worst, who = lag, f"{component}[{task}]"
        return worst, who

    def violation_count(self) -> int:
        return sum(self.violation_counts.values())

    def summary(self) -> Dict[str, Any]:
        """JSON-clean roll-up for reports and exporters."""
        worst_lag, worst_task = self.max_watermark_lag()
        return {
            "edges_monitored": len(self.edges),
            "sampling": self.config.sampling,
            "items_observed": sum(m.items_observed for m in self.edges.values()),
            "markers_observed": sum(
                m.markers_observed for m in self.edges.values()
            ),
            "violations_total": self.violation_count(),
            "violations_by_kind": dict(sorted(self.violation_counts.items())),
            "dropped_violations": self.dropped_violations,
            "alerts_total": len(self.alerts),
            "frontier_epochs": len(self._frontier),
            "max_watermark_lag": worst_lag,
            "max_watermark_lag_task": worst_task,
            "recoveries_total": len(self.recoveries),
            "recovery_epoch": (
                None if self.recovery_epoch is None
                else str(self.recovery_epoch)
            ),
        }

    # -- telemetry -----------------------------------------------------

    def _snapshot(self, time: float, final: bool = False) -> None:
        worst_lag, worst_task = self.max_watermark_lag()
        queue_max = self._queue_peak
        queue_task = self._queue_peak_task
        row = {
            "type": "telemetry",
            "seq": self._seq,
            "time": time,
            "final": final,
            "frontier_index": len(self._frontier) - 1,
            "frontier_epoch": (
                None if not self._frontier else str(self._frontier[-1])
            ),
            "watermarks": {
                f"{component}[{task}]": str(ts)
                for (component, task), ts in sorted(self.watermarks.items())
            },
            "max_watermark_lag": worst_lag,
            "max_watermark_lag_task": worst_task,
            "max_queue_depth": queue_max,
            "max_queue_depth_task": queue_task,
            "violations_total": self.violation_count(),
            "alerts_total": len(self.alerts),
        }
        self._seq += 1
        self._telemetry.append(row)
        if self.on_telemetry is not None:
            self.on_telemetry(row)

    def telemetry_records(self) -> List[Dict[str, Any]]:
        """Telemetry snapshots plus every violation and alert, as JSONL
        records (schema in :mod:`repro.obs.schema`)."""
        records: List[Dict[str, Any]] = list(self._telemetry)
        records.extend(v.to_record() for v in self.violations)
        records.extend(a.to_record() for a in self.alerts)
        return records

    def write_telemetry_jsonl(self, path: str) -> None:
        import json

        from repro.obs.tracing import _open_for_write

        with _open_for_write(path) as fh:
            for record in self.telemetry_records():
                fh.write(json.dumps(record) + "\n")
