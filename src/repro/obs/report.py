"""Stall diagnostics over collected spans and metrics.

Answers "where does time go?" for one instrumented run: for every bolt,
how much core time it burned (CPU), how long its marker epochs sat
waiting for alignment (stall), and whether any upstream channel is
skewed (persistently ahead of the others, forcing the merge frontend to
buffer).  Bolts are ranked by alignment-stall time — the top entries are
where adding parallelism or rebalancing channels pays off, while a bolt
whose CPU dominates its stall is compute-bound and needs a cheaper
operator or more cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import CAT_EPOCH, CAT_EXEC, CAT_MEMBER, Tracer

#: Channels this many markers apart (at peak) are flagged as skewed.
SKEW_THRESHOLD = 2.0


@dataclass
class BoltDiagnostics:
    """Aggregated view of one component across its tasks."""

    component: str
    tasks: int = 0
    cpu_seconds: float = 0.0
    executions: int = 0
    stall_seconds: float = 0.0
    epochs: int = 0
    unaligned_epochs: int = 0
    max_epoch_wait: float = 0.0
    member_cpu: Dict[str, float] = field(default_factory=dict)
    max_skew: float = 0.0
    skew_note: Optional[str] = None
    max_buffered_tuples: float = 0.0
    max_buffered_bytes: float = 0.0
    max_queue_depth: float = 0.0

    def mean_epoch_wait(self) -> float:
        return self.stall_seconds / self.epochs if self.epochs else 0.0

    def stall_cpu_ratio(self) -> float:
        if self.cpu_seconds:
            return self.stall_seconds / self.cpu_seconds
        return float("inf") if self.stall_seconds else 0.0

    def is_skewed(self) -> bool:
        return self.max_skew >= SKEW_THRESHOLD


@dataclass
class StallReport:
    """Per-component diagnostics, ranked by alignment-stall time."""

    rows: List[BoltDiagnostics]
    makespan: Optional[float] = None
    #: :meth:`repro.obs.monitor.MonitorHub.summary` of the run, if any.
    monitor_summary: Optional[Dict[str, Any]] = None

    def skewed(self) -> List[BoltDiagnostics]:
        return [row for row in self.rows if row.is_skewed()]

    def row(self, component: str) -> Optional[BoltDiagnostics]:
        for row in self.rows:
            if row.component == component:
                return row
        return None

    def format(self, top_members: int = 3) -> str:
        lines = ["Stall diagnostics (ranked by alignment-stall time)"]
        if self.makespan is not None:
            lines[0] += f" — makespan {self.makespan * 1e3:.3f} ms"
        header = (
            f"{'component':<28} {'stall(ms)':>10} {'cpu(ms)':>9} "
            f"{'stall/cpu':>9} {'epochs':>6} {'maxwait(ms)':>11} "
            f"{'maxskew':>7} {'buffered':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            ratio = row.stall_cpu_ratio()
            ratio_str = f"{ratio:.2f}" if ratio != float("inf") else "inf"
            lines.append(
                f"{row.component[:28]:<28} {row.stall_seconds * 1e3:>10.3f} "
                f"{row.cpu_seconds * 1e3:>9.3f} {ratio_str:>9} "
                f"{row.epochs:>6} {row.max_epoch_wait * 1e3:>11.3f} "
                f"{row.max_skew:>7.0f} {row.max_buffered_tuples:>8.0f}"
            )
            if row.member_cpu:
                members = sorted(row.member_cpu.items(),
                                 key=lambda kv: kv[1], reverse=True)
                detail = ", ".join(
                    f"{name}={cpu * 1e3:.3f}ms"
                    for name, cpu in members[:top_members]
                )
                lines.append(f"{'':<28}   members: {detail}")
        skewed = self.skewed()
        if skewed:
            lines.append("")
            lines.append("Skewed channels (markers-ahead spread >= "
                         f"{SKEW_THRESHOLD:.0f}):")
            for row in skewed:
                note = f" (laggard: {row.skew_note})" if row.skew_note else ""
                lines.append(
                    f"  {row.component}: peak spread {row.max_skew:.0f} "
                    f"markers, {row.max_buffered_tuples:.0f} tuples buffered"
                    f"{note}"
                )
        else:
            lines.append("")
            lines.append("No skewed channels detected.")
        if any(row.unaligned_epochs for row in self.rows):
            lines.append("")
            lines.append("WARNING: unaligned epochs at run end:")
            for row in self.rows:
                if row.unaligned_epochs:
                    lines.append(
                        f"  {row.component}: {row.unaligned_epochs} epochs "
                        "never completed alignment"
                    )
        summary = self.monitor_summary
        if summary is not None:
            lines.append("")
            lines.append(
                f"Online monitors ({summary['edges_monitored']} edges, "
                f"sampling={summary['sampling']}): "
                f"{summary['violations_total']} violations, "
                f"{summary['alerts_total']} alerts"
            )
            for kind, count in summary.get("violations_by_kind", {}).items():
                lines.append(f"  {kind}: {count}")
            lag = summary.get("max_watermark_lag")
            if lag is not None:
                lines.append(
                    f"  max watermark lag: {lag} epochs "
                    f"({summary.get('max_watermark_lag_task')})"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "makespan": self.makespan,
            "monitor_summary": self.monitor_summary,
            "rows": [
                {
                    "component": row.component,
                    "tasks": row.tasks,
                    "cpu_seconds": row.cpu_seconds,
                    "stall_seconds": row.stall_seconds,
                    "epochs": row.epochs,
                    "unaligned_epochs": row.unaligned_epochs,
                    "mean_epoch_wait": row.mean_epoch_wait(),
                    "max_epoch_wait": row.max_epoch_wait,
                    "member_cpu": dict(row.member_cpu),
                    "max_skew": row.max_skew,
                    "skewed": row.is_skewed(),
                    "max_buffered_tuples": row.max_buffered_tuples,
                    "max_queue_depth": row.max_queue_depth,
                }
                for row in self.rows
            ],
        }


def stall_report(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    makespan: Optional[float] = None,
    monitors: Any = None,
) -> StallReport:
    """Aggregate a tracer (and optional registry) into a ranked report.

    ``monitors`` is an optional :class:`~repro.obs.monitor.MonitorHub`;
    its summary is attached to the report verbatim.
    """
    rows: Dict[str, BoltDiagnostics] = {}
    tasks_seen: Dict[str, set] = {}

    def row_for(component: str) -> BoltDiagnostics:
        row = rows.get(component)
        if row is None:
            row = BoltDiagnostics(component)
            rows[component] = row
        return row

    for span in tracer.spans:
        row = row_for(span.component)
        tasks_seen.setdefault(span.component, set()).add(span.task_index)
        if span.cat == CAT_EXEC:
            row.cpu_seconds += span.duration()
            row.executions += 1
        elif span.cat == CAT_MEMBER:
            row.member_cpu[span.name] = (
                row.member_cpu.get(span.name, 0.0) + span.duration()
            )
        elif span.cat == CAT_EPOCH:
            row.stall_seconds += span.duration()
            row.epochs += 1
            row.max_epoch_wait = max(row.max_epoch_wait, span.duration())
            if span.args.get("unaligned"):
                row.unaligned_epochs += 1

    for component, tasks in tasks_seen.items():
        rows[component].tasks = len(tasks)

    if metrics is not None:
        for metric in metrics.metrics():
            labels = dict(metric.labels)
            component = labels.get("component")
            if component is None:
                continue
            row = row_for(component)
            if metric.name == "merge_skew":
                peak = getattr(metric, "max", None) or 0.0
                if peak > row.max_skew:
                    row.max_skew = peak
                    row.skew_note = getattr(metric, "note", None)
            elif metric.name == "merge_buffered_tuples":
                row.max_buffered_tuples = max(
                    row.max_buffered_tuples, getattr(metric, "max", 0) or 0
                )
            elif metric.name == "merge_buffered_bytes":
                row.max_buffered_bytes = max(
                    row.max_buffered_bytes, getattr(metric, "max", 0) or 0
                )
            elif metric.name == "queue_depth":
                row.max_queue_depth = max(
                    row.max_queue_depth, getattr(metric, "max", 0) or 0
                )

    ordered = sorted(
        rows.values(), key=lambda r: (r.stall_seconds, r.cpu_seconds),
        reverse=True,
    )
    summary = monitors.summary() if monitors is not None else None
    return StallReport(ordered, makespan=makespan, monitor_summary=summary)
