"""Counters, gauges, and histograms with a pluggable registry.

The runtime is instrumented against the abstract registry interface;
production runs pass a :class:`MetricsRegistry` and get a full metric
snapshot, while the default :class:`NullRegistry` turns every metric
into a shared no-op singleton so the hot path pays a single attribute
check (``registry.enabled``) when observability is disabled.

Metric identity is ``(name, labels)``: the same name with different
label values is a different time series, as in Prometheus.  Label values
are stringified at creation so snapshots are JSON-clean.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _labels_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (tuples processed, bytes buffered)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value with max/min tracking.

    ``set`` records the latest value and keeps the running extremes;
    ``set_max`` only ratchets upward and optionally remembers a note
    describing the moment the maximum was reached (e.g. which merge
    channel was lagging when skew peaked).
    """

    __slots__ = ("name", "labels", "value", "max", "min", "note")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: Optional[float] = None
        self.max: Optional[float] = None
        self.min: Optional[float] = None
        self.note: Optional[str] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.max is None or value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value

    def set_max(self, value: float, note: Optional[str] = None) -> None:
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
            if note is not None:
                self.note = note


class Histogram:
    """Exact-sample histogram (runs are finite, so we keep every sample).

    Percentiles use the nearest-rank method over the sorted samples.
    """

    __slots__ = ("name", "labels", "samples", "_sorted")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.samples: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._sorted and self.samples and value < self.samples[-1]:
            self._sorted = False
        self.samples.append(value)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self.samples.sort()
            self._sorted = True

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100].

        An empty histogram has no percentiles: returns ``float("nan")``
        so callers cannot mistake "no observations" for a real zero.
        """
        if not self.samples:
            return float("nan")
        self._ensure_sorted()
        rank = max(0, min(len(self.samples) - 1,
                          int(round(p / 100.0 * (len(self.samples) - 1)))))
        return self.samples[rank]

    def count(self) -> int:
        return len(self.samples)

    def sum(self) -> float:
        return sum(self.samples)

    def mean(self) -> float:
        return self.sum() / len(self.samples) if self.samples else 0.0


class _NullInstrument:
    """Shared no-op standing in for every metric when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float, note: Optional[str] = None) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Creates and stores metrics; snapshotting renders them JSON-clean."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[MetricKey, Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def metrics(self) -> List[Any]:
        return list(self._metrics.values())

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """``{metric name: {label string: value summary}}``."""
        out: Dict[str, Dict[str, Any]] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            label_str = ",".join(f"{k}={v}" for k, v in labels) or "_"
            family = out.setdefault(name, {})
            if isinstance(metric, Counter):
                family[label_str] = metric.value
            elif isinstance(metric, Gauge):
                family[label_str] = {
                    "value": metric.value, "max": metric.max,
                    "min": metric.min, "note": metric.note,
                }
            else:
                empty = metric.count() == 0
                family[label_str] = {
                    "count": metric.count(), "sum": metric.sum(),
                    "mean": metric.mean(),
                    # NaN is not valid JSON; render empty percentiles null.
                    "p50": None if empty else metric.percentile(50),
                    "p99": None if empty else metric.percentile(99),
                }
        return out


class NullRegistry:
    """Disabled registry: every metric is the shared no-op instrument."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def metrics(self) -> List[Any]:
        return []

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}


#: Module-level disabled registry — the default everywhere.
NULL_REGISTRY = NullRegistry()


def percentile(values, p: float) -> float:
    """Nearest-rank percentile of an arbitrary sequence (no histogram)."""
    data = sorted(values)
    if not data:
        return 0.0
    rank = max(0, min(len(data) - 1, int(round(p / 100.0 * (len(data) - 1)))))
    return data[rank]
