"""Schema validation for exported JSONL traces and monitor telemetry.

The JSONL exports (:meth:`repro.obs.tracing.Tracer.write_jsonl` and
:meth:`repro.obs.monitor.MonitorHub.write_telemetry_jsonl`) emit one
record per line.  Six record types exist:

``span``::

    {"type": "span", "name": str, "cat": "exec"|"member"|"epoch",
     "component": str, "task": int, "machine": int,
     "start": float, "end": float, "args": object}

``sample``::

    {"type": "sample", "name": str, "component": str, "task": int,
     "time": float, "value": number}

``violation`` (an :class:`~repro.obs.monitor.InvariantViolation`)::

    {"type": "violation", "invariant": str, "edge": str,
     "component": str, "task": int, "channel": str,
     "epoch": str|null, "item": str|null, "time": float, "detail": str}

``alert`` (a :class:`~repro.obs.monitor.ProgressAlert`)::

    {"type": "alert", "kind": str, "component": str, "task": int,
     "time": float, "value": number, "threshold": number, "detail": str}

``telemetry`` (a periodic :class:`~repro.obs.monitor.MonitorHub`
snapshot)::

    {"type": "telemetry", "seq": int, "time": float, "final": bool,
     "frontier_index": int, "frontier_epoch": str|null,
     "watermarks": object, "max_watermark_lag": int|null,
     "max_watermark_lag_task": str|null, "max_queue_depth": number,
     "max_queue_depth_task": str|null, "violations_total": int,
     "alerts_total": int}

``recovery`` (a :meth:`~repro.obs.monitor.MonitorHub.on_rollback`
notification from the recovery coordinator)::

    {"type": "recovery", "epoch": str|null, "time": float,
     "recoveries_total": int}

Invariants checked beyond field shapes:

- ``start <= end`` for every span;
- every ``epoch`` span carries an ``epoch`` arg;
- ``member`` spans lie within some ``exec`` span of the same task;
- ``violation`` records name a known invariant kind;
- ``telemetry`` sequence numbers are strictly increasing.

Runnable: ``python -m repro.obs.schema TRACE.jsonl`` exits non-zero on
the first invalid record (the CI smoke and monitor jobs use this).
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Iterable, List, Tuple

_SPAN_FIELDS = {
    "name": str, "cat": str, "component": str, "task": int,
    "machine": int, "start": (int, float), "end": (int, float),
    "args": dict,
}
_SAMPLE_FIELDS = {
    "name": str, "component": str, "task": int,
    "time": (int, float), "value": (int, float),
}
_VIOLATION_FIELDS = {
    "invariant": str, "edge": str, "component": str, "task": int,
    "channel": str, "epoch": (str, type(None)), "item": (str, type(None)),
    "time": (int, float), "detail": str,
}
_ALERT_FIELDS = {
    "kind": str, "component": str, "task": int, "time": (int, float),
    "value": (int, float), "threshold": (int, float), "detail": str,
}
_TELEMETRY_FIELDS = {
    "seq": int, "time": (int, float), "final": bool,
    "frontier_index": int, "frontier_epoch": (str, type(None)),
    "watermarks": dict, "max_watermark_lag": (int, type(None)),
    "max_watermark_lag_task": (str, type(None)),
    "max_queue_depth": (int, float),
    "max_queue_depth_task": (str, type(None)),
    "violations_total": int, "alerts_total": int,
}
_RECOVERY_FIELDS = {
    "epoch": (str, type(None)), "time": (int, float),
    "recoveries_total": int,
}
SPAN_CATEGORIES = {"exec", "member", "epoch"}
VIOLATION_KINDS = {
    "per-key-order", "duplicate-marker", "out-of-epoch-marker",
    "epoch-mismatch", "post-marker-straggler",
}
ALERT_KINDS = {"queue-depth", "queue-growth", "watermark-lag"}


class TraceSchemaError(ValueError):
    """A record violates the JSONL trace schema."""


def _check_fields(record: Dict[str, Any], fields: Dict[str, Any],
                  line: int) -> None:
    for name, types in fields.items():
        if name not in record:
            raise TraceSchemaError(f"line {line}: missing field {name!r}")
        if not isinstance(record[name], types):
            raise TraceSchemaError(
                f"line {line}: field {name!r} has type "
                f"{type(record[name]).__name__}, expected {types}"
            )
    # bool is an int subclass; reject it for numeric fields explicitly.
    for name in ("task", "machine", "start", "end", "time", "value",
                 "threshold", "seq", "frontier_index", "max_queue_depth",
                 "violations_total", "alerts_total", "recoveries_total"):
        if name in fields and isinstance(record.get(name), bool):
            raise TraceSchemaError(f"line {line}: field {name!r} is a bool")


def validate_records(records: Iterable[Tuple[int, Dict[str, Any]]]) -> int:
    """Validate (line number, record) pairs; return the record count."""
    execs: Dict[Tuple[str, int], List[Tuple[float, float]]] = {}
    members: List[Tuple[int, Dict[str, Any]]] = []
    count = 0
    last_telemetry_seq = None
    for line, record in records:
        count += 1
        rtype = record.get("type")
        if rtype == "span":
            _check_fields(record, _SPAN_FIELDS, line)
            if record["cat"] not in SPAN_CATEGORIES:
                raise TraceSchemaError(
                    f"line {line}: unknown span category {record['cat']!r}"
                )
            if record["start"] > record["end"]:
                raise TraceSchemaError(
                    f"line {line}: span start {record['start']} after end "
                    f"{record['end']}"
                )
            if record["cat"] == "epoch" and "epoch" not in record["args"]:
                raise TraceSchemaError(
                    f"line {line}: epoch span missing args.epoch"
                )
            if record["cat"] == "exec":
                execs.setdefault(
                    (record["component"], record["task"]), []
                ).append((record["start"], record["end"]))
            elif record["cat"] == "member":
                members.append((line, record))
        elif rtype == "sample":
            _check_fields(record, _SAMPLE_FIELDS, line)
        elif rtype == "violation":
            _check_fields(record, _VIOLATION_FIELDS, line)
            if record["invariant"] not in VIOLATION_KINDS:
                raise TraceSchemaError(
                    f"line {line}: unknown invariant {record['invariant']!r}"
                )
        elif rtype == "alert":
            _check_fields(record, _ALERT_FIELDS, line)
            if record["kind"] not in ALERT_KINDS:
                raise TraceSchemaError(
                    f"line {line}: unknown alert kind {record['kind']!r}"
                )
        elif rtype == "telemetry":
            _check_fields(record, _TELEMETRY_FIELDS, line)
            seq = record["seq"]
            if last_telemetry_seq is not None and seq <= last_telemetry_seq:
                raise TraceSchemaError(
                    f"line {line}: telemetry seq {seq} not after "
                    f"{last_telemetry_seq}"
                )
            last_telemetry_seq = seq
        elif rtype == "recovery":
            _check_fields(record, _RECOVERY_FIELDS, line)
            if record["recoveries_total"] < 1:
                raise TraceSchemaError(
                    f"line {line}: recovery record with total "
                    f"{record['recoveries_total']}"
                )
        else:
            raise TraceSchemaError(f"line {line}: unknown record type {rtype!r}")
    eps = 1e-9
    for line, record in members:
        intervals = execs.get((record["component"], record["task"]), [])
        if not any(s - eps <= record["start"] and record["end"] <= e + eps
                   for s, e in intervals):
            raise TraceSchemaError(
                f"line {line}: member span [{record['start']}, "
                f"{record['end']}] outside every exec span of "
                f"{record['component']}[{record['task']}]"
            )
    return count


def validate_jsonl(path: str) -> int:
    """Validate a JSONL trace file; return the number of records."""

    def records():
        with open(path, "r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceSchemaError(
                        f"line {line_no}: invalid JSON ({exc})"
                    ) from exc
                if not isinstance(record, dict):
                    raise TraceSchemaError(f"line {line_no}: not an object")
                yield line_no, record

    return validate_records(records())


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema TRACE.jsonl", file=sys.stderr)
        return 2
    try:
        count = validate_jsonl(argv[0])
    except TraceSchemaError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"OK: {count} records")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
