"""Marker-epoch tracing for simulated topology runs.

The unit of observation is the *marker epoch*: one synchronization-marker
timestamp traversing one task.  For every ``(task, epoch)`` the tracer
records when the first marker of the epoch arrived at the task, when
alignment released it (the merge frontend emitted the aligned marker and
flushed the buffered block), and how much was flushed.  Around those it
records task busy intervals (one span per bolt execution, with per-fused-
member sub-spans) and queue-depth samples.

Spans live on a simulated clock (seconds); exports scale to microseconds
so the Chrome trace viewer (``chrome://tracing`` / Perfetto) renders the
timeline directly.  Two export formats:

- :meth:`Tracer.write_jsonl` — one JSON object per line, schema in
  :mod:`repro.obs.schema`;
- :meth:`Tracer.write_chrome_trace` — the Chrome Trace Event Format
  (``{"traceEvents": [...]}``) with machines as processes and tasks as
  threads.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def _open_for_write(path: str):
    """Open ``path`` for writing, creating parent directories."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, "w", encoding="utf-8")

TaskKey = Tuple[str, int]

#: Span categories emitted by the simulator instrumentation.
CAT_EXEC = "exec"        # one bolt/spout execution (task busy interval)
CAT_MEMBER = "member"    # one fused-chain member inside an execution
CAT_EPOCH = "epoch"      # marker arrival -> alignment release at a task


@dataclass
class Span:
    """A closed interval on the simulated clock, attributed to a task."""

    name: str
    cat: str
    component: str
    task_index: int
    machine: int
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)

    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Sample:
    """One point of a per-task counter timeline (e.g. queue depth)."""

    name: str
    component: str
    task_index: int
    time: float
    value: float


class Tracer:
    """Collects spans and counter samples during one simulated run."""

    enabled = True

    def __init__(self):
        self.spans: List[Span] = []
        self.samples: List[Sample] = []
        #: (component, task_index, epoch timestamp) -> (arrival, machine)
        self._open_epochs: Dict[Tuple[str, int, Any], Tuple[float, int]] = {}
        self.finalized = False

    # -- recording -----------------------------------------------------

    def exec_span(self, component: str, task_index: int, machine: int,
                  start: float, end: float,
                  args: Optional[Dict[str, Any]] = None) -> None:
        self.spans.append(Span(component, CAT_EXEC, component, task_index,
                               machine, start, end, args or {}))

    def member_span(self, component: str, task_index: int, machine: int,
                    vertex: str, start: float, end: float,
                    events: int = 0) -> None:
        self.spans.append(Span(vertex, CAT_MEMBER, component, task_index,
                               machine, start, end, {"events": events}))

    def epoch_arrival(self, component: str, task_index: int, machine: int,
                      epoch: Any, time: float) -> None:
        """First marker of ``epoch`` delivered to the task (idempotent)."""
        self._open_epochs.setdefault(
            (component, task_index, epoch), (time, machine)
        )

    def epoch_release(self, component: str, task_index: int, epoch: Any,
                      time: float,
                      args: Optional[Dict[str, Any]] = None) -> float:
        """Alignment completed for ``epoch`` at the task; close its span.

        Returns the wait (release minus first-marker arrival)."""
        key = (component, task_index, epoch)
        opened = self._open_epochs.pop(key, None)
        if opened is None:
            # Release without a recorded arrival (single-channel frontends
            # can align within the same delivery): zero-length span.
            opened = (time, -1)
        start, machine = opened
        span_args = {"epoch": str(epoch)}
        if args:
            span_args.update(args)
        self.spans.append(Span(f"epoch {epoch}", CAT_EPOCH, component,
                               task_index, machine, start, time, span_args))
        return time - start

    def sample(self, name: str, component: str, task_index: int,
               time: float, value: float) -> None:
        self.samples.append(Sample(name, component, task_index, time, value))

    def finalize(self, end_time: float) -> None:
        """Close any epochs that never aligned (flagged ``unaligned``)."""
        if self.finalized:
            return
        for (component, task_index, epoch), (start, machine) in sorted(
            self._open_epochs.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            self.spans.append(Span(
                f"epoch {epoch}", CAT_EPOCH, component, task_index, machine,
                start, max(end_time, start),
                {"epoch": str(epoch), "unaligned": True},
            ))
        self._open_epochs.clear()
        self.finalized = True

    # -- queries -------------------------------------------------------

    def spans_by_cat(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def open_epoch_count(self) -> int:
        return len(self._open_epochs)

    # -- export --------------------------------------------------------

    def jsonl_records(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        for span in self.spans:
            records.append({
                "type": "span",
                "name": span.name,
                "cat": span.cat,
                "component": span.component,
                "task": span.task_index,
                "machine": span.machine,
                "start": span.start,
                "end": span.end,
                "args": span.args,
            })
        for sample in self.samples:
            records.append({
                "type": "sample",
                "name": sample.name,
                "component": sample.component,
                "task": sample.task_index,
                "time": sample.time,
                "value": sample.value,
            })
        return records

    def write_jsonl(self, path: str) -> None:
        with _open_for_write(path) as fh:
            for record in self.jsonl_records():
                fh.write(json.dumps(record) + "\n")

    def chrome_trace(self) -> Dict[str, Any]:
        """The run as a Chrome Trace Event Format object.

        Machines map to processes and tasks to threads; the simulated
        clock (seconds) is scaled to the format's microseconds.
        """
        events: List[Dict[str, Any]] = []
        seen_threads: Dict[Tuple[int, str], None] = {}
        for span in self.spans:
            pid = span.machine
            tid = f"{span.component}[{span.task_index}]"
            seen_threads.setdefault((pid, tid))
            events.append({
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(0.0, span.duration()) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": span.args,
            })
        for sample in self.samples:
            events.append({
                "name": f"{sample.name} {sample.component}[{sample.task_index}]",
                "ph": "C",
                "ts": sample.time * 1e6,
                "pid": 0,
                "tid": 0,
                "args": {sample.name: sample.value},
            })
        for pid, tid in seen_threads:
            events.append({
                "name": "process_name", "ph": "M", "pid": pid,
                "args": {"name": f"machine {pid}" if pid >= 0
                         else "source host"},
            })
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tid},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with _open_for_write(path) as fh:
            json.dump(self.chrome_trace(), fh)


class NullTracer:
    """Disabled tracer: all recording methods are no-ops."""

    enabled = False

    def exec_span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def member_span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def epoch_arrival(self, *args: Any, **kwargs: Any) -> None:
        pass

    def epoch_release(self, *args: Any, **kwargs: Any) -> None:
        pass

    def sample(self, *args: Any, **kwargs: Any) -> None:
        pass

    def finalize(self, end_time: float) -> None:
        pass

    def spans_by_cat(self, cat: str) -> List[Span]:
        return []


NULL_TRACER = NullTracer()
