"""Runtime observability: metrics, tracing, online monitors, reports.

The layer is zero-dependency and opt-in.  The simulator (and everything
built on it) takes an optional :class:`ObsContext`; when ``None`` the
hot path pays a single ``is None`` check per instrumentation site.  An
enabled context carries a :class:`~repro.obs.metrics.MetricsRegistry`
(counters / gauges / histograms), a
:class:`~repro.obs.tracing.Tracer` (marker-epoch spans, busy intervals,
queue-depth timelines), and optionally a
:class:`~repro.obs.monitor.MonitorHub` (online data-trace type
conformance and progress monitors), which feed
:func:`~repro.obs.report.stall_report` and the Chrome-trace / JSONL /
Prometheus exports.

Typical use::

    from repro.obs import ObsContext, MonitorHub
    hub = MonitorHub.for_compiled(compiled)
    obs = ObsContext.collecting(monitors=hub)
    report = Simulator(compiled.topology, cluster, obs=obs).run()
    print(stall_report(obs.tracer, obs.metrics, report.makespan,
                       monitors=hub).format())
    obs.tracer.write_chrome_trace("trace.json")   # chrome://tracing
    hub.write_telemetry_jsonl("telemetry.jsonl")
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    percentile,
)
from repro.obs.tracing import NullTracer, NULL_TRACER, Sample, Span, Tracer
from repro.obs.monitor import (
    EdgeMonitor,
    InvariantViolation,
    MonitorConfig,
    MonitorHub,
    ProgressAlert,
)
from repro.obs.report import BoltDiagnostics, StallReport, stall_report
from repro.obs.export import prometheus_text, write_prometheus


class ObsContext:
    """Bundle of one run's metrics registry, tracer, and monitors.

    ``ObsContext()`` is disabled (null registry + null tracer, no
    monitors) — useful as an explicit "off" value; :meth:`collecting`
    builds an enabled context.  ``enabled`` is precomputed so
    instrumentation sites check one attribute.
    """

    __slots__ = ("metrics", "tracer", "monitors", "enabled")

    def __init__(self, metrics=None, tracer=None, monitors=None):
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.monitors = monitors
        self.enabled = bool(
            self.metrics.enabled or self.tracer.enabled
            or (monitors is not None and monitors.enabled)
        )

    @classmethod
    def collecting(cls, monitors=None) -> "ObsContext":
        """An enabled context with fresh registry and tracer."""
        return cls(MetricsRegistry(), Tracer(), monitors)

    @classmethod
    def monitoring(cls, monitors) -> "ObsContext":
        """A context running monitors only (no metrics/tracing cost)."""
        return cls(None, None, monitors)

    def stall_report(self, makespan: Optional[float] = None) -> StallReport:
        metrics = self.metrics if isinstance(self.metrics, MetricsRegistry) else None
        return stall_report(self.tracer, metrics, makespan,
                            monitors=self.monitors)


__all__ = [
    "ObsContext",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "percentile",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Sample",
    "MonitorHub",
    "MonitorConfig",
    "EdgeMonitor",
    "InvariantViolation",
    "ProgressAlert",
    "prometheus_text",
    "write_prometheus",
    "BoltDiagnostics",
    "StallReport",
    "stall_report",
]
