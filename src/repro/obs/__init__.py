"""Runtime observability: metrics, marker-epoch tracing, stall reports.

The layer is zero-dependency and opt-in.  The simulator (and everything
built on it) takes an optional :class:`ObsContext`; when ``None`` the
hot path pays a single ``is None`` check per instrumentation site.  An
enabled context carries a :class:`~repro.obs.metrics.MetricsRegistry`
(counters / gauges / histograms) and a
:class:`~repro.obs.tracing.Tracer` (marker-epoch spans, busy intervals,
queue-depth timelines), which feed
:func:`~repro.obs.report.stall_report` and the Chrome-trace / JSONL
exports.

Typical use::

    from repro.obs import ObsContext
    obs = ObsContext.collecting()
    report = Simulator(topology, cluster, obs=obs).run()
    print(stall_report(obs.tracer, obs.metrics, report.makespan).format())
    obs.tracer.write_chrome_trace("trace.json")   # chrome://tracing
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    percentile,
)
from repro.obs.tracing import NullTracer, NULL_TRACER, Sample, Span, Tracer
from repro.obs.report import BoltDiagnostics, StallReport, stall_report


class ObsContext:
    """Bundle of one run's metrics registry and tracer.

    ``ObsContext()`` is disabled (null registry + null tracer) — useful
    as an explicit "off" value; :meth:`collecting` builds an enabled
    context.  ``enabled`` is precomputed so instrumentation sites check
    one attribute.
    """

    __slots__ = ("metrics", "tracer", "enabled")

    def __init__(self, metrics=None, tracer=None):
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.enabled = bool(self.metrics.enabled or self.tracer.enabled)

    @classmethod
    def collecting(cls) -> "ObsContext":
        """An enabled context with fresh registry and tracer."""
        return cls(MetricsRegistry(), Tracer())

    def stall_report(self, makespan: Optional[float] = None) -> StallReport:
        metrics = self.metrics if isinstance(self.metrics, MetricsRegistry) else None
        return stall_report(self.tracer, metrics, makespan)


__all__ = [
    "ObsContext",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "percentile",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Sample",
    "BoltDiagnostics",
    "StallReport",
    "stall_report",
]
