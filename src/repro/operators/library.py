"""A library of common streaming operators built from the Table 1 templates.

Everything here is expressed through :class:`OpStateless`,
:class:`OpKeyedOrdered`, or :class:`OpKeyedUnordered`, so each operator
inherits the template's consistency guarantee (Theorem 4.2).  These are
the building blocks the evaluation queries are assembled from:

- :func:`map_values`, :func:`filter_items`, :func:`rekey` — stateless
  per-item transforms.
- :class:`TumblingAggregate` — per-key aggregation over each
  between-marker block (Query V's tumbling windows; also the
  ``sumOp`` of Figure 2 with one-block windows).
- :class:`SlidingAggregate` — per-key aggregation over the last ``w``
  blocks, emitted at every marker (Query IV's 10-second windows with
  1-second markers).
- :class:`RunningAggregate` — per-key aggregation over the entire
  history, emitted at every marker (Query III's whole-history
  summarization; the ``maxOfAvgPerID`` pattern of Table 2).
- :class:`TableJoin` — stateless stream-table join (the JFM stages).
- :class:`KeyedSequenceOp` — adapter turning a per-key function over
  ordered values into an ``OpKeyedOrdered``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple

from repro.operators.base import KV, Event, Marker
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.keyed_unordered import OpKeyedUnordered
from repro.operators.stateless import OpStateless, StatelessFn


# ----------------------------------------------------------------------
# Stateless transforms.
# ----------------------------------------------------------------------


class MapPairsFn(StatelessFn):
    """A :class:`StatelessFn` for exactly-one-output-pair functions.

    ``pair_fn(key, value)`` returns a single ``(key', value')`` pair.
    Semantically identical to ``StatelessFn(lambda k, v: [pair_fn(k, v)])``
    but the batch kernel maps the block with one call per event — no
    wrapper lambda, no one-element list per item.
    """

    def __init__(self, pair_fn: Callable[[Any, Any], Tuple[Any, Any]], name: str = ""):
        super().__init__(lambda k, v: [pair_fn(k, v)], name=name)
        self._pair_fn = pair_fn

    def handle_batch(self, state, events) -> List[Event]:
        cls = type(self)
        if (
            cls.on_marker is not OpStateless.on_marker
            or cls.on_item is not StatelessFn.on_item
        ):
            return super().handle_batch(state, events)
        fn = self._pair_fn
        out: List[Event] = []
        tuple_new = tuple.__new__
        i, n = 0, len(events)
        while i < n:
            if type(events[i]) is Marker:
                out.append(events[i])
                i += 1
                continue
            j = i
            while j < n and type(events[j]) is not Marker:
                j += 1
            out.extend([tuple_new(KV, fn(k, v)) for k, v in events[i:j]])
            i = j
        return out


def map_values(fn: Callable[[Any], Any], name: str = "map") -> OpStateless:
    """Apply ``fn`` to every value, keeping keys."""
    return MapPairsFn(lambda k, v: (k, fn(v)), name=name)


def map_pairs(fn: Callable[[Any, Any], Tuple[Any, Any]], name: str = "map") -> OpStateless:
    """Apply ``fn(key, value) -> (key', value')`` to every pair."""
    return MapPairsFn(fn, name=name)


def filter_items(predicate: Callable[[Any, Any], bool], name: str = "filter") -> OpStateless:
    """Keep only pairs satisfying ``predicate(key, value)``."""
    return StatelessFn(lambda k, v: [(k, v)] if predicate(k, v) else [], name=name)


def rekey(key_fn: Callable[[Any, Any], Any], name: str = "rekey") -> OpStateless:
    """Replace each pair's key with ``key_fn(key, value)``."""
    return MapPairsFn(lambda k, v: (key_fn(k, v), v), name=name)


def flat_map(fn: Callable[[Any, Any], Iterable[Tuple[Any, Any]]], name: str = "flatMap") -> OpStateless:
    """Emit zero or more output pairs per input pair."""
    return StatelessFn(lambda k, v: list(fn(k, v)), name=name)


class TableJoin(OpStateless):
    """Stateless stream-table join: enrich each pair via a lookup.

    ``lookup(key, value)`` returns an iterable of output pairs (empty to
    drop the item — join-filter-map in one stage, as in the JFM vertices
    of Example 4.1 and Figure 5).
    """

    def __init__(
        self,
        lookup: Callable[[Any, Any], Iterable[Tuple[Any, Any]]],
        name: str = "JFM",
    ):
        self._lookup = lookup
        self.name = name

    def on_item(self, key, value, emit):
        for out_key, out_value in self._lookup(key, value):
            emit(out_key, out_value)

    def handle_batch(self, state, events) -> List[Event]:
        # Batch kernel: call the lookup directly per event and append
        # its pairs, skipping the on_item/emit dispatch layer.  Falls
        # back to the generic kernel if a subclass customizes hooks.
        cls = type(self)
        if (
            cls.on_marker is not OpStateless.on_marker
            or cls.on_item is not TableJoin.on_item
        ):
            return super().handle_batch(state, events)
        lookup = self._lookup
        out: List[Event] = []
        tuple_new = tuple.__new__
        i, n = 0, len(events)
        while i < n:
            if type(events[i]) is Marker:
                out.append(events[i])
                i += 1
                continue
            j = i
            while j < n and type(events[j]) is not Marker:
                j += 1
            out.extend(
                [tuple_new(KV, pair) for k, v in events[i:j] for pair in lookup(k, v)]
            )
            i = j
        return out


# ----------------------------------------------------------------------
# Keyed unordered aggregation.
# ----------------------------------------------------------------------


class TumblingAggregate(OpKeyedUnordered):
    """Per-key aggregate of each between-marker block, emitted per marker.

    Parameters
    ----------
    inject: ``(key, value) -> A``
    identity_elem: the monoid identity of ``A``
    combine_fn: associative commutative ``(A, A) -> A``
    finish: ``(key, A, marker_ts) -> output value`` or ``None`` to skip
        emission for a block (e.g. skip empty blocks).
    emit_empty: whether blocks with no items for a key still emit.
    """

    def __init__(
        self,
        inject: Callable[[Any, Any], Any],
        identity_elem: Any,
        combine_fn: Callable[[Any, Any], Any],
        finish: Callable[[Any, Any, Any], Any],
        emit_empty: bool = False,
        name: str = "tumbling",
    ):
        self._inject = inject
        self._identity = identity_elem
        self._combine = combine_fn
        self._finish = finish
        self._emit_empty = emit_empty
        self.name = name

    def fold_in(self, key, value):
        return self._inject(key, value)

    def identity(self):
        return self._identity

    def combine(self, x, y):
        return self._combine(x, y)

    def init(self):
        # State is the last block's aggregate (or None before any marker).
        return None

    def update_state(self, old_state, agg):
        return agg

    def on_marker(self, new_state, key, m: Marker, emit):
        if new_state == self._identity and not self._emit_empty:
            return
        result = self._finish(key, new_state, m.timestamp)
        if result is not None:
            emit(key, result)


class RunningAggregate(OpKeyedUnordered):
    """Per-key aggregate over the whole history, emitted at every marker.

    ``finish(key, acc, marker_ts)`` maps the accumulated monoid value to
    the emitted output value (or ``None`` to suppress emission).
    """

    def __init__(
        self,
        inject: Callable[[Any, Any], Any],
        identity_elem: Any,
        combine_fn: Callable[[Any, Any], Any],
        finish: Callable[[Any, Any, Any], Any],
        name: str = "running",
    ):
        self._inject = inject
        self._identity = identity_elem
        self._combine = combine_fn
        self._finish = finish
        self.name = name

    def fold_in(self, key, value):
        return self._inject(key, value)

    def identity(self):
        return self._identity

    def combine(self, x, y):
        return self._combine(x, y)

    def init(self):
        return self._identity

    def update_state(self, old_state, agg):
        return self._combine(old_state, agg)

    def on_marker(self, new_state, key, m: Marker, emit):
        result = self._finish(key, new_state, m.timestamp)
        if result is not None:
            emit(key, result)


class SlidingAggregate(OpKeyedUnordered):
    """Per-key aggregate over the last ``window`` blocks, per marker.

    The per-key state is a bounded deque of block aggregates; at each
    marker the deque advances by one block and ``finish`` is applied to
    the fold of the retained blocks.  With 1-second markers and
    ``window=10`` this is exactly Query IV's "views in the last 10
    seconds, updated every second".
    """

    def __init__(
        self,
        window: int,
        inject: Callable[[Any, Any], Any],
        identity_elem: Any,
        combine_fn: Callable[[Any, Any], Any],
        finish: Callable[[Any, Any, Any], Any],
        emit_empty: bool = False,
        name: str = "sliding",
    ):
        if window < 1:
            raise ValueError("window must be at least one block")
        self._window = window
        self._inject = inject
        self._identity = identity_elem
        self._combine = combine_fn
        self._finish = finish
        self._emit_empty = emit_empty
        self.name = name

    def fold_in(self, key, value):
        return self._inject(key, value)

    def identity(self):
        return self._identity

    def combine(self, x, y):
        return self._combine(x, y)

    def init(self):
        return ()  # immutable tuple of recent block aggregates

    def update_state(self, old_state, agg):
        blocks = old_state + (agg,)
        if len(blocks) > self._window:
            blocks = blocks[-self._window:]
        return blocks

    def on_marker(self, new_state, key, m: Marker, emit):
        acc = self._identity
        for block_agg in new_state:
            acc = self._combine(acc, block_agg)
        if acc == self._identity and not self._emit_empty:
            return
        result = self._finish(key, acc, m.timestamp)
        if result is not None:
            emit(key, result)


def tumbling_count(name: str = "count") -> TumblingAggregate:
    """Per-key count of items in each block."""
    return TumblingAggregate(
        inject=lambda k, v: 1,
        identity_elem=0,
        combine_fn=lambda x, y: x + y,
        finish=lambda key, total, ts: total,
        name=name,
    )


def sliding_count(window: int, name: str = "count") -> SlidingAggregate:
    """Per-key count of items over the last ``window`` blocks."""
    return SlidingAggregate(
        window=window,
        inject=lambda k, v: 1,
        identity_elem=0,
        combine_fn=lambda x, y: x + y,
        finish=lambda key, total, ts: total,
        name=name,
    )


class MaxOfAvgPerKey(OpKeyedUnordered):
    """Table 2's ``maxOfAvgPerID``, verbatim.

    Per key: average the values of each between-marker block (the
    ``AvgPair`` monoid of sums and counts), keep the running maximum of
    those averages as the state, and emit it at every marker with the
    paper's ``m.timestamp - 1`` stamping.
    """

    name = "maxOfAvgPerID"

    def fold_in(self, key, value):
        return (float(value), 1)          # AvgPair in(...)

    def identity(self):
        return (0.0, 0)                   # AvgPair id()

    def combine(self, x, y):
        return (x[0] + y[0], x[1] + y[1])  # componentwise sum

    def init(self):
        return float("-inf")              # initialState()

    def update_state(self, old_state, agg):
        total, count = agg
        if count == 0:
            return old_state              # empty block: average undefined
        return max(old_state, total / count)

    def on_marker(self, new_state, key, m: Marker, emit):
        if new_state != float("-inf"):
            emit(key, (new_state, m.timestamp - 1))


class Sessionize(OpKeyedOrdered):
    """Per-key session windows over timestamped values.

    Values are ``(payload, ts)`` pairs in per-key timestamp order (an
    ``O`` stream — put ``SORT`` in front).  A gap larger than
    ``gap`` closes the session; the operator then emits
    ``(start_ts, end_ts, [payloads])``.  The final open session is
    flushed by the watermark: a marker whose timestamp exceeds the last
    event by more than ``gap`` proves the session cannot grow.
    """

    name = "sessionize"

    def __init__(self, gap: int, name: str = "sessionize"):
        if gap < 1:
            raise ValueError("session gap must be positive")
        self._gap = gap
        self.name = name

    def init(self):
        return None  # or (start_ts, last_ts, [payloads])

    def on_item(self, state, key, value, emit):
        payload, ts = value
        if state is None:
            return (ts, ts, [payload])
        start, last, payloads = state
        if ts - last > self._gap:
            emit(key, (start, last, tuple(payloads)))
            return (ts, ts, [payload])
        return (start, max(last, ts), payloads + [payload])

    def on_marker(self, state, key, m: Marker, emit):
        if state is None:
            return None
        start, last, payloads = state
        if m.timestamp - last > self._gap:
            emit(key, (start, last, tuple(payloads)))
            return None
        return state


# ----------------------------------------------------------------------
# Keyed ordered adapter.
# ----------------------------------------------------------------------


class KeyedSequenceOp(OpKeyedOrdered):
    """Adapter: build an ``OpKeyedOrdered`` from a per-key step function.

    ``step(state, value) -> (new_state, [output values])`` is called for
    each value of a key in order; outputs keep the key (the template's
    restriction).  ``marker_step(state, ts) -> (new_state, [outputs])`` is
    optional.
    """

    def __init__(
        self,
        initial: Callable[[], Any],
        step: Callable[[Any, Any], Tuple[Any, List[Any]]],
        marker_step: Optional[Callable[[Any, Any], Tuple[Any, List[Any]]]] = None,
        name: str = "keyedSeq",
    ):
        self._initial = initial
        self._step = step
        self._marker_step = marker_step
        self.name = name

    def init(self):
        return self._initial()

    def on_item(self, state, key, value, emit):
        new_state, outputs = self._step(state, value)
        for out in outputs:
            emit(key, out)
        return new_state

    def on_marker(self, state, key, m: Marker, emit):
        if self._marker_step is None:
            return state
        new_state, outputs = self._marker_step(state, m.timestamp)
        for out in outputs:
            emit(key, out)
        return new_state
