"""The ``OpStateless`` template (Table 1): ``U(K, V) -> U(L, W)``.

Only the current event — never the input history — determines the output.
The programmer overrides :meth:`OpStateless.on_item` and (optionally)
:meth:`OpStateless.on_marker`; both may emit output key-value pairs via
the supplied emitter and nothing else.  Because there is no state, any
interleaving of between-marker items yields the same bag of outputs per
block, which is exactly (U, U)-consistency.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.operators.base import KV, Emitter, Event, Marker, Operator


class OpStateless(Operator):
    """Stateless transduction ``U(K, V) -> U(L, W)``.

    Override :meth:`on_item` (required) and :meth:`on_marker` (optional —
    stateless marker output is rarely meaningful but the template allows
    it, e.g. for heartbeat enrichment).  The runtime forwards each marker
    downstream after :meth:`on_marker` returns.
    """

    input_kind = "U"
    output_kind = "U"

    def initial_state(self) -> Emitter:
        # The only "state" is a reusable emitter buffer.
        return Emitter()

    def on_item(self, key: Any, value: Any, emit: Callable[[Any, Any], None]) -> None:
        """Process one key-value pair; emit any number of output pairs."""
        raise NotImplementedError

    def on_marker(self, m: Marker, emit: Callable[[Any, Any], None]) -> None:
        """Process one marker (output only; the marker itself is forwarded
        automatically)."""

    def snapshot_state(self, state: Emitter) -> Any:
        # The emitter buffer is always drained between invocations, so a
        # stateless operator has nothing to checkpoint.
        return None

    def restore_state(self, snapshot: Any) -> Emitter:
        return self.initial_state()

    def handle(self, state: Emitter, event: Event) -> List[Event]:
        if isinstance(event, Marker):
            self.on_marker(event, state.emit)
            out: List[Event] = list(state.drain())
            out.append(event)
            return out
        self.on_item(event.key, event.value, state.emit)
        return list(state.drain())

    def handle_batch(self, state: Emitter, events) -> List[Event]:
        # Batch kernel: map the whole block in one tight loop, emitting
        # straight into the output list (no per-event drain/alloc).  The
        # output sequence is identical to the serial path's, so this is
        # safe for any input kind.
        out: List[Event] = []

        def emit(key, value, _append=out.append, _new=tuple.__new__):
            _append(_new(KV, (key, value)))

        on_item = self.on_item
        for event in events:
            if isinstance(event, Marker):
                self.on_marker(event, emit)
                out.append(event)
            else:
                on_item(event.key, event.value, emit)
        return out


class StatelessFn(OpStateless):
    """Adapter: build an ``OpStateless`` from a plain function.

    ``fn(key, value)`` returns an iterable of output ``(key, value)``
    pairs (or ``None`` for no output).  Convenient for map/filter stages:

    >>> double = StatelessFn(lambda k, v: [(k, 2 * v)], name="double")
    """

    def __init__(self, fn: Callable[[Any, Any], Optional[Any]], name: str = ""):
        self._fn = fn
        self.name = name or "StatelessFn"

    def on_item(self, key, value, emit):
        result = self._fn(key, value)
        if result is None:
            return
        for out_key, out_value in result:
            emit(out_key, out_value)

    def handle_batch(self, state: Emitter, events) -> List[Event]:
        # The adapter's shape is fully known (a pure pair-list function,
        # no marker hook), so the batch kernel can call the function
        # directly and skip the on_item/emit dispatch per event.  A
        # subclass that overrides on_marker or on_item falls back to the
        # generic OpStateless kernel.
        cls = type(self)
        if (
            cls.on_marker is not OpStateless.on_marker
            or cls.on_item is not StatelessFn.on_item
        ):
            return super().handle_batch(state, events)
        fn = self._fn
        out: List[Event] = []
        append = out.append
        tuple_new = tuple.__new__
        for event in events:
            if type(event) is Marker:
                append(event)
                continue
            key, value = event
            result = fn(key, value)
            if result is not None:
                for pair in result:
                    append(tuple_new(KV, pair))
        return out
