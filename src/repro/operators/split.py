"""Stream splitters: round-robin ``RR`` and key-hash ``HASH`` (Section 4).

A *splitter* partitions one input stream into ``n`` output streams such
that splitting followed by ``MRG`` is the identity transduction.  Both
splitters broadcast every synchronization marker to all output channels —
that is what lets downstream merges re-align the substreams.

- :class:`RoundRobinSplit` (``RR``): ``U(K,V) -> U(K,V)^n``.  Key-value
  pairs go to output channels cyclically.  Only sound for unordered
  streams (it separates same-key items arbitrarily).
- :class:`HashSplit` (``HASH``): ``U(K,V) -> U(K_0,V) x .. x U(K_{n-1},V)``
  and likewise for ``O``.  A pair with key ``k`` goes to channel
  ``hash(k) mod n``, so each key's items stay on one channel — this is
  what makes keyed operators parallelizable (Theorem 4.3).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.operators.base import Event, KV, Marker


def default_key_hash(key: Any) -> int:
    """Deterministic key hash used by ``HASH`` (stable across runs).

    Python's built-in ``hash`` is randomized for strings between
    interpreter runs; experiments need stable routing, so strings hash via
    a simple FNV-1a over their UTF-8 bytes and other values fall back to
    ``hash``.
    """
    if isinstance(key, str):
        h = 0xCBF29CE484222325
        for byte in key.encode("utf-8"):
            h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h
    if isinstance(key, tuple):
        h = 0x345678
        for part in key:
            h = (h * 1000003) ^ default_key_hash(part)
        return h & 0xFFFFFFFFFFFFFFFF
    return hash(key)


class Splitter:
    """Base class: single input, ``n_outputs`` output channels.

    ``handle`` returns ``(channel, event)`` pairs.  Markers are always
    broadcast to every channel.
    """

    name = "SPLIT"
    #: Whether the splitter is only sound on unordered streams (RR).
    requires_unordered = False

    def __init__(self, n_outputs: int, name: str = ""):
        if n_outputs < 1:
            raise ValueError("splitter requires at least one output channel")
        self.n_outputs = n_outputs
        if name:
            self.name = name

    def initial_state(self) -> Any:
        return None

    def route(self, state: Any, event: KV) -> int:
        """Pick the output channel for one key-value pair."""
        raise NotImplementedError

    def handle(self, state: Any, event: Event) -> List[Tuple[int, Event]]:
        if isinstance(event, Marker):
            return [(channel, event) for channel in range(self.n_outputs)]
        return [(self.route(state, event), event)]

    def label(self) -> str:
        return self.name

    def __repr__(self):
        return f"<{self.name} 1->{self.n_outputs}>"


class RoundRobinSplit(Splitter):
    """``RR``: cycle key-value pairs across output channels.

    Only sound on unordered streams: it separates same-key items onto
    different channels, destroying any per-key order (the type checker
    rejects RR on ``O`` edges — the Section 2 soundness issue).
    """

    requires_unordered = True

    def __init__(self, n_outputs: int):
        super().__init__(n_outputs, name=f"RR{n_outputs}")

    def initial_state(self) -> List[int]:
        return [0]

    def route(self, state: List[int], event: KV) -> int:
        channel = state[0]
        state[0] = (channel + 1) % self.n_outputs
        return channel


class HashSplit(Splitter):
    """``HASH``: route each key-value pair by ``hash(key) mod n``."""

    def __init__(self, n_outputs: int, key_hash: Optional[Callable[[Any], int]] = None):
        super().__init__(n_outputs, name=f"H{n_outputs}")
        self.key_hash = key_hash or default_key_hash

    def route(self, state: Any, event: KV) -> int:
        return self.key_hash(event.key) % self.n_outputs


class UnqSplit(Splitter):
    """``UNQ``: send the whole stream to a single target instance.

    The counterpart of Storm's *global grouping*, used in the Figure 3 and
    Figure 5 deployments in front of non-parallelizable stages (SINK).
    Markers are still broadcast so that every instance stays aligned.
    """

    def __init__(self, n_outputs: int = 1):
        super().__init__(n_outputs, name="UNQ")

    def route(self, state: Any, event: KV) -> int:
        return 0
