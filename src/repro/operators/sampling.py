"""Shared sample-stream generation for spot-checkers and tests.

One home for the inputs that :func:`repro.operators.validate.validate_operator`,
the :class:`~repro.transductions.consistency.ConsistencyChecker`, and the
test suite feed to operators: a fixed default stream, seeded random
stream generation (both :class:`~repro.operators.base.KV`/``Marker``
event streams and :class:`~repro.traces.items.Item` sequences), and the
block-shuffle used to produce trace-equivalent input variants.

Everything is driven by an explicit :class:`random.Random` so callers —
CI in particular — get deterministic runs from a seed.
"""

from __future__ import annotations

import random
from typing import Any, List, Sequence

from repro.operators.base import Event, KV, Marker
from repro.traces.items import Item, kv_item, marker

#: Default alphabets; small so counterexamples stay readable.
DEFAULT_KEYS = ("a", "b", "c")
DEFAULT_VALUES = tuple(range(10))


def default_sample_events() -> List[Event]:
    """The fixed three-block stream used when no sample is supplied."""
    return [
        KV("a", 3), KV("b", 1), KV("a", 2), Marker(1),
        KV("b", 4), KV("c", 0), Marker(2),
        KV("a", 5), Marker(3),
    ]


def random_sample_events(
    rng: random.Random,
    blocks: int = 3,
    max_block_size: int = 6,
    keys: Sequence[str] = DEFAULT_KEYS,
    values: Sequence[Any] = DEFAULT_VALUES,
) -> List[Event]:
    """A well-formed random keyed event stream: KV blocks + markers.

    Marker timestamps are ``1..blocks``; every block may be empty.
    """
    stream: List[Event] = []
    for block in range(blocks):
        for _ in range(rng.randint(0, max_block_size)):
            stream.append(KV(rng.choice(keys), rng.choice(values)))
        stream.append(Marker(block + 1))
    return stream


def random_sample_items(
    rng: random.Random,
    blocks: int = 3,
    max_block_size: int = 6,
    keys: Sequence[str] = DEFAULT_KEYS,
    values: Sequence[Any] = DEFAULT_VALUES,
) -> List[Item]:
    """Like :func:`random_sample_events` but as tagged ``Item`` values,
    for checkers working at the trace level (keyed U/O types)."""
    items: List[Item] = []
    for block in range(blocks):
        for _ in range(rng.randint(0, max_block_size)):
            items.append(kv_item(rng.choice(keys), rng.choice(values)))
        items.append(marker(block + 1))
    return items


def shuffle_within_blocks(events: Sequence[Event], rng: random.Random) -> List[Event]:
    """A trace-equivalent reordering of a U stream (permute each block)."""
    result: List[Event] = []
    block: List[Event] = []
    for event in events:
        if isinstance(event, Marker):
            rng.shuffle(block)
            result.extend(block)
            result.append(event)
            block = []
        else:
            block.append(event)
    rng.shuffle(block)
    result.extend(block)
    return result
