"""The specialized sliding-window aggregation template.

The paper's conclusion proposes extending the Table 1 template set with
a dedicated sliding-window template so programmers stop re-implementing
efficient window algorithms.  :class:`OpSlidingWindow` is that template:

- the programmer supplies the same commutative monoid pieces as
  ``OpKeyedUnordered`` (``inject`` / ``identity`` / ``combine``) plus a
  window length in marker periods and a ``finish`` hook;
- the runtime folds each between-marker block into a sub-aggregate
  (Table 3 style, so between-marker disorder cannot matter) and
  maintains the window of sub-aggregates with an amortized-O(1)
  two-stacks aggregator (:mod:`repro.operators.window_algorithms`)
  instead of refolding the window at every marker.

Consistency (Theorem 4.2 extended): within a block the monoid's
commutativity+associativity make the sub-aggregate order-independent;
across blocks the two-stacks structure is a deterministic function of
the sub-aggregate sequence, which is determined by the trace.  The type
is ``U(K, V) -> U(K, W)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.operators.base import Emitter, Event, Marker, Operator
from repro.operators.window_algorithms import make_aggregator


class _KeyWindow:
    """Per-key runtime record: current block aggregate + window."""

    __slots__ = ("block_agg", "window")

    def __init__(self, identity: Any, combine, algorithm: str):
        self.block_agg = identity
        self.window = make_aggregator(identity, combine, algorithm)


class _SlidingState:
    __slots__ = ("per_key", "blocks_seen", "emitter")

    def __init__(self):
        self.per_key: Dict[Any, _KeyWindow] = {}
        self.blocks_seen = 0
        self.emitter = Emitter()


class OpSlidingWindow(Operator):
    """Per-key sliding aggregation over the last ``window`` blocks.

    Subclasses override the monoid pieces and ``finish``; or use
    :func:`sliding_window` for the common function-style construction.
    """

    input_kind = "U"
    output_kind = "U"

    #: window length in marker periods (blocks); subclasses set this.
    window: int = 1
    #: "two-stacks" (default) or "recompute" (the ablation baseline).
    algorithm: str = "two-stacks"
    #: emit even when the window aggregate equals the identity.
    emit_empty: bool = False

    def fold_in(self, key: Any, value: Any) -> Any:
        """``in(key, value) -> A``."""
        raise NotImplementedError

    def identity(self) -> Any:
        """The monoid identity."""
        raise NotImplementedError

    def combine(self, x: Any, y: Any) -> Any:
        """Associative and commutative."""
        raise NotImplementedError

    def finish(self, key: Any, agg: Any, timestamp: Any) -> Optional[Any]:
        """Map the window aggregate to the emitted value (None = skip)."""
        return agg

    # ------------------------------------------------------------------

    def initial_state(self) -> _SlidingState:
        if self.window < 1:
            raise ValueError("window must be at least one block")
        return _SlidingState()

    def handle(self, state: _SlidingState, event: Event) -> List[Event]:
        if isinstance(event, Marker):
            state.blocks_seen += 1
            for key, record in state.per_key.items():
                record.window.insert(record.block_agg)
                record.block_agg = self.identity()
                if len(record.window) > self.window:
                    record.window.evict()
                agg = record.window.query()
                if agg == self.identity() and not self.emit_empty:
                    continue
                result = self.finish(key, agg, event.timestamp)
                if result is not None:
                    state.emitter.emit(key, result)
            out: List[Event] = list(state.emitter.drain())
            out.append(event)
            return out
        key = event.key
        record = state.per_key.get(key)
        if record is None:
            record = _KeyWindow(self.identity(), self.combine, self.algorithm)
            # A key first seen after k markers has an all-identity window;
            # identity sub-aggregates need no backfill.
            state.per_key[key] = record
        record.block_agg = self.combine(
            record.block_agg, self.fold_in(key, event.value)
        )
        return []


class SlidingWindowFn(OpSlidingWindow):
    """Function-style construction of :class:`OpSlidingWindow`."""

    def __init__(
        self,
        window: int,
        inject: Callable[[Any, Any], Any],
        identity_elem: Any,
        combine_fn: Callable[[Any, Any], Any],
        finish: Optional[Callable[[Any, Any, Any], Any]] = None,
        algorithm: str = "two-stacks",
        emit_empty: bool = False,
        name: str = "slidingWindow",
    ):
        self.window = window
        self._inject = inject
        self._identity = identity_elem
        self._combine = combine_fn
        self._finish = finish
        self.algorithm = algorithm
        self.emit_empty = emit_empty
        self.name = name

    def fold_in(self, key, value):
        return self._inject(key, value)

    def identity(self):
        return self._identity

    def combine(self, x, y):
        return self._combine(x, y)

    def finish(self, key, agg, timestamp):
        if self._finish is None:
            return agg
        return self._finish(key, agg, timestamp)


def sliding_window(
    window: int,
    inject: Callable[[Any, Any], Any],
    identity_elem: Any,
    combine_fn: Callable[[Any, Any], Any],
    finish: Optional[Callable[[Any, Any, Any], Any]] = None,
    algorithm: str = "two-stacks",
    name: str = "slidingWindow",
) -> SlidingWindowFn:
    """Construct the specialized sliding-window template (see module doc)."""
    return SlidingWindowFn(
        window, inject, identity_elem, combine_fn, finish,
        algorithm=algorithm, name=name,
    )


def sliding_max(window: int, name: str = "slidingMax") -> SlidingWindowFn:
    """Per-key max over the last ``window`` blocks — the showcase for the
    two-stacks algorithm (max has no inverse, yet stays O(1))."""
    return SlidingWindowFn(
        window,
        inject=lambda k, v: v,
        identity_elem=None,
        combine_fn=lambda x, y: y if x is None else (x if y is None else max(x, y)),
        name=name,
    )
