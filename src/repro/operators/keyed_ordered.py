"""The ``OpKeyedOrdered`` template (Table 1): ``O(K, V) -> O(K, W)``.

A stateful computation per key, order-dependent within each key.  The
programmer overrides:

- :meth:`OpKeyedOrdered.init` — the initial per-key state;
- :meth:`OpKeyedOrdered.on_item` — consume one value for a key, emit
  output pairs, and return the new state;
- :meth:`OpKeyedOrdered.on_marker` — per-key marker handling, returning
  the new state.

**Restriction (enforced):** every emission must preserve the input key;
otherwise the output could not be viewed as per-key ordered (the paper's
explicit restriction in Table 1).  Violations raise
:class:`~repro.errors.TraceTypeError`.

Consistency: same-key items are processed in arrival order (which the
``O`` input type fixes), different keys touch disjoint state and emit
under different (independent) output tags, so equivalent inputs give
equivalent outputs.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List

from repro.errors import TraceTypeError
from repro.operators.base import KV, Emitter, Event, Marker, Operator


class _KeyedOrderedState:
    """Runtime state: per-key user states plus the set of seen keys."""

    __slots__ = ("per_key", "emitter")

    def __init__(self):
        self.per_key: Dict[Any, Any] = {}
        self.emitter = Emitter()


class OpKeyedOrdered(Operator):
    """Per-key ordered stateful transduction ``O(K, V) -> O(K, W)``."""

    input_kind = "O"
    output_kind = "O"

    def init(self) -> Any:
        """The state a key starts with when first seen."""
        raise NotImplementedError

    def on_item(
        self, state: Any, key: Any, value: Any, emit: Callable[[Any, Any], None]
    ) -> Any:
        """Consume one value for ``key``; return the key's new state."""
        raise NotImplementedError

    def on_marker(
        self, state: Any, key: Any, m: Marker, emit: Callable[[Any, Any], None]
    ) -> Any:
        """Per-key marker handling; return the key's new state.

        Default: state unchanged, no output (the common case, e.g.
        ``linearInterpolation`` in Table 2).
        """
        return state

    def on_items(
        self, state: Any, key: Any, values: List[Any], emit: Callable[[Any, Any], None]
    ) -> Any:
        """Consume one key's run of values from a block; return the new state.

        The batch kernel's per-key entry point.  The default folds
        :meth:`on_item` over the values in order, so overriding is purely
        an optimization: an override must emit the same output sequence
        and reach the same final state as that fold (same arithmetic in
        the same order), just with the per-item dispatch amortized into
        one call per key per block.
        """
        on_item = self.on_item
        for value in values:
            state = on_item(state, key, value, emit)
        return state

    # ------------------------------------------------------------------

    def initial_state(self) -> _KeyedOrderedState:
        return _KeyedOrderedState()

    def copy_state(self, state: Any) -> Any:
        """Independent copy of one key's user state, for checkpointing.

        User states may be arbitrary, so the default deep-copies.
        Subclasses whose state is a known shallow structure (a list of
        scalars, a deque of immutable tuples) should override this with
        the cheap structural copy — it runs once per key per epoch
        snapshot, which makes it the checkpointing hot path.
        """
        return copy.deepcopy(state)

    def snapshot_state(self, state: _KeyedOrderedState) -> Any:
        # The emitter is drained between invocations; only per_key is
        # durable.
        cp = self.copy_state
        return {key: cp(v) for key, v in state.per_key.items()}

    def restore_state(self, snapshot: Any) -> _KeyedOrderedState:
        state = _KeyedOrderedState()
        cp = self.copy_state
        state.per_key = {key: cp(v) for key, v in snapshot.items()}
        return state

    def handle(self, state: _KeyedOrderedState, event: Event) -> List[Event]:
        if isinstance(event, Marker):
            for key in list(state.per_key):
                guarded = _KeyGuardedEmit(state.emitter, key)
                state.per_key[key] = self.on_marker(
                    state.per_key[key], key, event, guarded.emit
                )
            out: List[Event] = list(state.emitter.drain())
            out.append(event)
            return out
        key = event.key
        if key not in state.per_key:
            state.per_key[key] = self.init()
        guarded = _KeyGuardedEmit(state.emitter, key)
        state.per_key[key] = self.on_item(
            state.per_key[key], key, event.value, guarded.emit
        )
        return list(state.emitter.drain())

    def handle_batch(self, state: _KeyedOrderedState, events) -> List[Event]:
        """Epoch kernel: group each between-marker run by key once.

        Per-key arrival order is preserved (the ``O`` type's only
        obligation); grouping reorders items *across* keys, which the
        per-key-ordered output type declares invisible.  Each key then
        pays one state probe and one guarded-emit wrapper per block
        instead of one per item.
        """
        out: List[Event] = []
        append = out.append
        per_key = state.per_key
        on_items = self.on_items
        # The default on_marker keeps state and emits nothing, so the
        # per-key marker loop is a no-op the kernel can skip outright.
        on_marker_active = type(self).on_marker is not OpKeyedOrdered.on_marker
        i, n = 0, len(events)
        while i < n:
            event = events[i]
            if type(event) is Marker:
                if on_marker_active:
                    for key in list(per_key):
                        per_key[key] = self.on_marker(
                            per_key[key], key, event, _guarded_append(append, key)
                        )
                append(event)
                i += 1
                continue
            j = i
            while j < n and type(events[j]) is not Marker:
                j += 1
            groups: Dict[Any, List[Any]] = {}
            setdefault = groups.setdefault
            for key, value in events[i:j]:
                setdefault(key, []).append(value)
            i = j
            for key, values in groups.items():
                key_state = (
                    per_key[key] if key in per_key else self.init()
                )
                per_key[key] = on_items(
                    key_state, key, values, _guarded_append(append, key)
                )
        return out


def _guarded_append(append, key):
    """Key-guarded emit writing straight into an output list.

    The batch kernel's replacement for ``_KeyGuardedEmit`` + the state
    emitter: same key-preservation enforcement, one call layer instead
    of two, no intermediate buffer to drain."""

    def emit(k, v, _key=key, _append=append, _new=tuple.__new__):
        if k != _key:
            raise TraceTypeError(
                "OpKeyedOrdered must preserve the input key: "
                f"got emit({k!r}, ...) while processing key {_key!r}"
            )
        _append(_new(KV, (k, v)))

    return emit


class _KeyGuardedEmit:
    """Emit wrapper enforcing the key-preservation restriction."""

    __slots__ = ("_emitter", "_key")

    def __init__(self, emitter: Emitter, key: Any):
        self._emitter = emitter
        self._key = key

    def emit(self, key: Any, value: Any) -> None:
        if key != self._key:
            raise TraceTypeError(
                "OpKeyedOrdered must preserve the input key: "
                f"got emit({key!r}, ...) while processing key {self._key!r}"
            )
        self._emitter.emit(key, value)
