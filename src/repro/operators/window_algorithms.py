"""Efficient sliding-window aggregation algorithms.

The paper's conclusion proposes "a specialized template [for
sliding-window aggregation that] would relieve the programmer from the
burden of re-discovering and re-implementing efficient sliding-window
algorithms", citing the two-stacks / DABA line of work (Tangwongsan,
Hirzel, Schneider et al.).  This module implements that substrate:

- :class:`TwoStacksAggregator` — the classic two-stacks trick: amortized
  O(1) ``insert``/``evict``/``query`` for *any* associative operation —
  no invertibility required (so ``max``/``min`` windows are O(1) too).
- :class:`RecomputeAggregator` — the naive O(window) baseline, kept as
  the correctness oracle and the ablation baseline.
- :class:`SlidingWindowAggregator` — the common interface.

Both maintain a FIFO window of values over a monoid given as
``(identity, combine)`` with ``combine`` associative (commutativity NOT
required — windows are order-sensitive in general).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class SlidingWindowAggregator:
    """Interface: FIFO window with monoid aggregation."""

    def __init__(self, identity: Any, combine: Callable[[Any, Any], Any]):
        self.identity = identity
        self.combine = combine

    def insert(self, value: Any) -> None:
        """Append one value at the window's young end."""
        raise NotImplementedError

    def evict(self) -> Any:
        """Remove and return the oldest value."""
        raise NotImplementedError

    def query(self) -> Any:
        """The fold of the window's contents, oldest-to-youngest."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class RecomputeAggregator(SlidingWindowAggregator):
    """O(n)-per-query baseline: store the window, fold on demand."""

    def __init__(self, identity, combine):
        super().__init__(identity, combine)
        self._window: List[Any] = []

    def insert(self, value):
        self._window.append(value)

    def evict(self):
        if not self._window:
            raise IndexError("evict from an empty window")
        return self._window.pop(0)

    def query(self):
        acc = self.identity
        for value in self._window:
            acc = self.combine(acc, value)
        return acc

    def __len__(self):
        return len(self._window)


class TwoStacksAggregator(SlidingWindowAggregator):
    """Two-stacks sliding-window aggregation: amortized O(1) per op.

    The window is split into a *front* stack (older items, stored with
    suffix aggregates toward the window's old end) and a *back* stack
    (younger items, with a single running prefix aggregate).  ``query``
    combines the front's top aggregate with the back aggregate; ``evict``
    pops the front, flipping the back over when the front runs dry.
    Every element is moved at most once from back to front, giving the
    amortized bound for any associative ``combine``.
    """

    def __init__(self, identity, combine):
        super().__init__(identity, combine)
        # front: list of (value, aggregate of this value and everything
        # *younger within the front*, i.e. toward the flip point) —
        # stored so front[i] aggregates front[i:] in window order.
        self._front: List[Any] = []          # values, oldest at the end
        self._front_aggs: List[Any] = []     # agg of front[i] .. front[-1]? see _flip
        self._back: List[Any] = []
        self._back_agg: Any = identity

    def insert(self, value):
        self._back.append(value)
        self._back_agg = self.combine(self._back_agg, value)

    def evict(self):
        if not self._front:
            self._flip()
        if not self._front:
            raise IndexError("evict from an empty window")
        self._front_aggs.pop()
        return self._front.pop()

    def query(self):
        front_agg = self._front_aggs[-1] if self._front_aggs else self.identity
        return self.combine(front_agg, self._back_agg)

    def __len__(self):
        return len(self._front) + len(self._back)

    def _flip(self):
        """Move the back stack into the front, computing suffix
        aggregates so that ``front_aggs[-1]`` always aggregates the whole
        front in window order."""
        acc = self.identity
        # back[0] is the oldest of the back; it must end on top of the
        # front (evicted first), carrying the aggregate of the entire
        # flipped segment in window order.
        for value in reversed(self._back):
            acc = self.combine(value, acc)
            self._front.append(value)
            self._front_aggs.append(acc)
        self._back.clear()
        self._back_agg = self.identity


def make_aggregator(
    identity: Any,
    combine: Callable[[Any, Any], Any],
    algorithm: str = "two-stacks",
) -> SlidingWindowAggregator:
    """Factory: ``"two-stacks"`` (default) or ``"recompute"``."""
    if algorithm == "two-stacks":
        return TwoStacksAggregator(identity, combine)
    if algorithm == "recompute":
        return RecomputeAggregator(identity, combine)
    raise ValueError(f"unknown sliding-window algorithm {algorithm!r}")
