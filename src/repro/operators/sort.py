"""The between-marker sorting operator ``SORT`` (Section 4).

``SORT< : U(K, V) -> O(K, V)`` imposes, for every key separately, the
linear order ``<`` on the key-value pairs between consecutive markers.
It is the bridge from unordered to ordered streams: after parallel
stages reorder between-marker items arbitrarily, applying ``SORT``
immediately before an order-sensitive stage restores the per-key view
(the ``Sort-LI`` idea of Section 2 and the SORT stages of Figures 1/5).

Implementation: buffer each key's items of the current block; on a
marker, flush every key's buffer in sorted order, then forward the
marker.  The output is well-defined as an ``O(K, V)`` trace because the
flushed order depends only on the block's *bag* of items (ties broken by
the stable sort on the full sort key).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.operators.base import Event, KV, Marker, Operator


class SortOp(Operator):
    """``SORT``: per-key, between-marker sorting by a value sort key.

    Parameters
    ----------
    sort_key:
        ``value -> comparable``; defaults to the identity (sort by the
        values themselves).  For timestamped values pass e.g.
        ``lambda v: v.ts``; to guarantee a canonical order under
        duplicate sort keys the full value is appended as a ``repr``
        tiebreak.
    """

    name = "SORT"
    input_kind = None  # accepts U (the common case) or O
    output_kind = "O"

    def __init__(self, sort_key: Optional[Callable[[Any], Any]] = None, name: str = ""):
        self.sort_key = sort_key or (lambda value: value)
        if name:
            self.name = name

    def initial_state(self) -> Dict[Any, List[Any]]:
        return {}

    def handle(self, state: Dict[Any, List[Any]], event: Event) -> List[Event]:
        if isinstance(event, Marker):
            out: List[Event] = []
            for key in sorted(state, key=repr):
                values = state[key]
                values.sort(key=lambda v: (self._cmp(v)))
                out.extend(KV(key, value) for value in values)
            state.clear()
            out.append(event)
            return out
        state.setdefault(event.key, []).append(event.value)
        return []

    def _cmp(self, value: Any):
        return (self.sort_key(value), repr(value))
