"""The between-marker sorting operator ``SORT`` (Section 4).

``SORT< : U(K, V) -> O(K, V)`` imposes, for every key separately, the
linear order ``<`` on the key-value pairs between consecutive markers.
It is the bridge from unordered to ordered streams: after parallel
stages reorder between-marker items arbitrarily, applying ``SORT``
immediately before an order-sensitive stage restores the per-key view
(the ``Sort-LI`` idea of Section 2 and the SORT stages of Figures 1/5).

Implementation: buffer each key's items of the current block; on a
marker, flush every key's buffer in sorted order, then forward the
marker.  The output is well-defined as an ``O(K, V)`` trace because the
flushed order depends only on the block's *bag* of items (ties broken by
the stable sort on the full sort key).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional

from repro.operators.base import Event, KV, Marker, Operator


class SortOp(Operator):
    """``SORT``: per-key, between-marker sorting by a value sort key.

    Parameters
    ----------
    sort_key:
        ``value -> comparable``; defaults to the identity (sort by the
        values themselves).  For timestamped values pass e.g.
        ``lambda v: v.ts``; to guarantee a canonical order under
        duplicate sort keys the full value is appended as a ``repr``
        tiebreak.
    """

    name = "SORT"
    input_kind = None  # accepts U (the common case) or O
    output_kind = "O"

    def __init__(self, sort_key: Optional[Callable[[Any], Any]] = None, name: str = ""):
        self.sort_key = sort_key or (lambda value: value)
        if name:
            self.name = name

    def initial_state(self) -> Dict[Any, List[Any]]:
        return {}

    def snapshot_state(self, state: Dict[Any, List[Any]]) -> Dict[Any, List[Any]]:
        # The buffers hold immutable KV events, so shallow list copies
        # are fully independent — no deep copy needed.
        return {key: list(buffered) for key, buffered in state.items()}

    def restore_state(self, snapshot: Dict[Any, List[Any]]) -> Dict[Any, List[Any]]:
        return {key: list(buffered) for key, buffered in snapshot.items()}

    def handle(self, state: Dict[Any, List[Any]], event: Event) -> List[Event]:
        if isinstance(event, Marker):
            out: List[Event] = []
            self._flush(state, out)
            out.append(event)
            return out
        state.setdefault(event.key, []).append(event)
        return []

    def handle_batch(self, state: Dict[Any, List[Any]], events) -> List[Event]:
        """Epoch kernel: bulk-append each between-marker run per key.

        Buffering is insertion-order independent (the flush sorts), so
        grouping a whole block costs one dict probe per distinct key;
        the marker flush is byte-identical to the serial path's.
        """
        out: List[Event] = []
        setdefault = state.setdefault
        i, n = 0, len(events)
        while i < n:
            event = events[i]
            if type(event) is Marker:
                self._flush(state, out)
                out.append(event)
                i += 1
                continue
            j = i
            while j < n and type(events[j]) is not Marker:
                j += 1
            for ev in events[i:j]:
                setdefault(ev[0], []).append(ev)
            i = j
        return out

    def _flush(self, state: Dict[Any, List[Any]], out: List[Event]) -> None:
        """Emit every key's buffered block in canonical sorted order.

        The buffers hold the original (immutable) ``KV`` events, which
        are re-emitted as-is — ``SORT`` preserves every pair, so no new
        event objects are needed.  Sorting is two-phase: a stable sort
        on the declared sort key of each event's value, then a ``repr``
        tiebreak applied only to runs of equal sort keys.  The result is
        exactly a sort by ``(sort_key(v), repr(v))``, but the
        (expensive) ``repr`` is computed only for actual ties instead of
        for every value.
        """
        sort_key = self.sort_key
        for key in sorted(state, key=repr):
            buffered = state[key]
            if len(buffered) > 1:
                decorated = [(sort_key(ev[1]), ev) for ev in buffered]
                decorated.sort(key=_primary)
                buffered = _resolve_ties(decorated)
            out.extend(buffered)
        state.clear()

    def _cmp(self, value: Any):
        """The canonical comparison key (kept for reference/tests; the
        flush computes the same order lazily via :func:`_resolve_ties`)."""
        return (self.sort_key(value), repr(value))


#: Sort key selecting the decorated pair's sort-key slot (C-level;
#: ``list.sort`` calls it once per element).
_primary = itemgetter(0)


def _value_repr(event) -> str:
    """Tiebreak key: ``repr`` of the event's value slot."""
    return repr(event[1])


def _resolve_ties(decorated: List[Any]) -> List[Any]:
    """Undecorate a ``(sort_key, event)`` list sorted by sort key,
    canonicalizing runs of equal sort keys by ``repr`` of the value."""
    result: List[Any] = []
    i, n = 0, len(decorated)
    while i < n:
        primary = decorated[i][0]
        j = i + 1
        while j < n and decorated[j][0] == primary:
            j += 1
        if j - i == 1:
            result.append(decorated[i][1])
        else:
            run = [event for _, event in decorated[i:j]]
            run.sort(key=_value_repr)
            result.extend(run)
        i = j
    return result
