"""The ``OpKeyedUnordered`` template (Table 1) and its Table 3 algorithm.

Per-key stateful computation over *unordered* between-marker input:
to keep the result independent of arrival order, item processing never
updates the state.  Instead the between-marker items of each key are
folded through a **commutative monoid** ``(A, id, combine)``; at each
marker the aggregate is incorporated into the per-key state by the pure
``update_state`` and ``on_marker`` may emit.

The runtime below is a direct transcription of Table 3, including the
subtle ``startS`` bookkeeping: a key first seen after ``k`` markers must
start from ``initial_state`` advanced by ``k`` empty aggregates, so that
all keys stay logically synchronized.

The programmer overrides the seven pure/side-effecting pieces:
``fold_in`` (Table 1's ``in``), ``identity`` (``id``), ``combine``,
``init`` (``initialState``), ``update_state``, ``on_item`` (reads only
the *last snapshot* of the state), and ``on_marker``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.operators.base import KV, Emitter, Event, Marker, Operator


@dataclass
class CommutativeMonoid:
    """An explicit commutative monoid ``(A, identity, combine)``.

    ``combine`` must be associative and commutative; :meth:`spot_check`
    verifies both on sampled elements (used by tests and by the optional
    template validation).
    """

    identity: Any
    combine: Callable[[Any, Any], Any]

    def fold(self, values) -> Any:
        acc = self.identity
        for value in values:
            acc = self.combine(acc, value)
        return acc

    def spot_check(self, samples) -> bool:
        """Check associativity/commutativity/identity on given samples."""
        samples = list(samples)
        for x in samples:
            if self.combine(x, self.identity) != x:
                return False
            if self.combine(self.identity, x) != x:
                return False
        for x in samples:
            for y in samples:
                if self.combine(x, y) != self.combine(y, x):
                    return False
                for z in samples:
                    left = self.combine(self.combine(x, y), z)
                    right = self.combine(x, self.combine(y, z))
                    if left != right:
                        return False
        return True


@dataclass(frozen=True)
class CombinedAgg:
    """A pre-aggregated monoid value travelling in place of raw items.

    Sender-side combiners (see :mod:`repro.storm.batching`) fold the
    between-marker items of a key into one monoid element ``A`` before
    the network hop; the receiving :class:`OpKeyedUnordered` then folds
    it into the key's block aggregate with ``combine`` directly instead
    of ``fold_in``.  Legal exactly on ``U(K, V)`` edges into operators
    whose ``on_item`` is the default no-op, because then the only use of
    the block's items is the commutative-monoid fold.
    """

    agg: Any


class _Record:
    """Table 3's record type ``R = { agg: A, state: S }``."""

    __slots__ = ("agg", "state")

    def __init__(self, agg: Any, state: Any):
        self.agg = agg
        self.state = state


class _KeyedUnorderedState:
    """Table 3's memory: the state map plus ``startS``."""

    __slots__ = ("state_map", "start_state", "emitter")

    def __init__(self, start_state: Any):
        self.state_map: Dict[Any, _Record] = {}
        self.start_state = start_state
        self.emitter = Emitter()


class OpKeyedUnordered(Operator):
    """Per-key unordered stateful transduction ``U(K, V) -> U(L, W)``.

    All of :meth:`fold_in`, :meth:`identity`, :meth:`combine`,
    :meth:`init`, and :meth:`update_state` must be pure; only
    :meth:`on_item` and :meth:`on_marker` may emit.
    """

    input_kind = "U"
    output_kind = "U"

    # ------------------------------------------------------------------
    # The seven template functions (Table 1).
    # ------------------------------------------------------------------

    def fold_in(self, key: Any, value: Any) -> Any:
        """``in(key, value) -> A``: inject one item into the monoid."""
        raise NotImplementedError

    def identity(self) -> Any:
        """``id() -> A``: the monoid identity."""
        raise NotImplementedError

    def combine(self, x: Any, y: Any) -> Any:
        """``combine(x, y) -> A``: associative and commutative."""
        raise NotImplementedError

    def init(self) -> Any:
        """``initialState() -> S``."""
        raise NotImplementedError

    def update_state(self, old_state: Any, agg: Any) -> Any:
        """``updateState(S, A) -> S``: fold a block aggregate into the state."""
        raise NotImplementedError

    def on_item(
        self, last_state: Any, key: Any, value: Any, emit: Callable[[Any, Any], None]
    ) -> None:
        """Per-item output hook; sees only the last marker-snapshot state."""

    def on_marker(
        self, new_state: Any, key: Any, m: Marker, emit: Callable[[Any, Any], None]
    ) -> None:
        """Per-key marker output hook; sees the freshly updated state."""

    # ------------------------------------------------------------------
    # Table 3 runtime.
    # ------------------------------------------------------------------

    def monoid(self) -> CommutativeMonoid:
        """The template's monoid as an explicit object (for validation)."""
        return CommutativeMonoid(self.identity(), self.combine)

    def initial_state(self) -> _KeyedUnorderedState:
        return _KeyedUnorderedState(self.init())

    def snapshot_state(self, state: _KeyedUnorderedState) -> Any:
        # Only the record map and startS are durable; the emitter buffer
        # is always drained between invocations.  The per-key ``agg`` /
        # ``state`` values may be arbitrary user objects, so they still
        # deep-copy — the saving is skipping the slotted wrappers.
        return (
            copy.deepcopy(state.start_state),
            {
                key: (copy.deepcopy(r.agg), copy.deepcopy(r.state))
                for key, r in state.state_map.items()
            },
        )

    def restore_state(self, snapshot: Any) -> _KeyedUnorderedState:
        start_state, records = snapshot
        state = _KeyedUnorderedState(copy.deepcopy(start_state))
        for key, (agg, key_state) in records.items():
            state.state_map[key] = _Record(
                copy.deepcopy(agg), copy.deepcopy(key_state)
            )
        return state

    def handle(self, state: _KeyedUnorderedState, event: Event) -> List[Event]:
        if isinstance(event, Marker):
            for key, record in state.state_map.items():
                record.state = self.update_state(record.state, record.agg)
                record.agg = self.identity()
                self.on_marker(record.state, key, event, state.emitter.emit)
            state.start_state = self.update_state(state.start_state, self.identity())
            out: List[Event] = list(state.emitter.drain())
            out.append(event)
            return out
        key = event.key
        record = state.state_map.get(key)
        if record is None:
            record = _Record(self.identity(), state.start_state)
            state.state_map[key] = record
        value = event.value
        if isinstance(value, CombinedAgg):
            record.agg = self.combine(record.agg, value.agg)
            return []
        self.on_item(record.state, key, value, state.emitter.emit)
        record.agg = self.combine(record.agg, self.fold_in(key, value))
        return list(state.emitter.drain())

    def handle_batch(self, state: _KeyedUnorderedState, events) -> List[Event]:
        """Epoch kernel: fold each between-marker run key-by-key.

        Items of one block are grouped per key first, so each distinct
        key costs one ``state_map`` probe per block instead of one per
        item, and the fold runs as a tight local loop.  Grouping is legal
        because the ``U`` input type makes between-marker items mutually
        independent (any fold order yields the same block aggregate —
        the monoid is commutative).  ``on_item`` still fires once per
        item against the same last-marker snapshot the serial path shows
        it, so emitted output differs at most in within-block order.
        """
        out: List[Event] = []
        state_map = state.state_map
        combine, fold_in = self.combine, self.fold_in

        def emit(key, value, _append=out.append, _new=tuple.__new__):
            _append(_new(KV, (key, value)))

        # Skip the per-item hook loop entirely when on_item is the
        # template default (the common, pure-aggregation case).
        on_item_active = type(self).on_item is not OpKeyedUnordered.on_item
        i, n = 0, len(events)
        while i < n:
            event = events[i]
            if type(event) is Marker:
                for key, record in state_map.items():
                    record.state = self.update_state(record.state, record.agg)
                    record.agg = self.identity()
                    self.on_marker(record.state, key, event, emit)
                state.start_state = self.update_state(
                    state.start_state, self.identity()
                )
                out.append(event)
                i += 1
                continue
            j = i
            while j < n and type(events[j]) is not Marker:
                j += 1
            groups: Dict[Any, List[Any]] = {}
            setdefault = groups.setdefault
            for key, value in events[i:j]:
                setdefault(key, []).append(value)
            i = j
            for key, values in groups.items():
                record = state_map.get(key)
                if record is None:
                    record = _Record(self.identity(), state.start_state)
                    state_map[key] = record
                agg = record.agg
                if on_item_active:
                    snapshot = record.state
                    for value in values:
                        if isinstance(value, CombinedAgg):
                            agg = combine(agg, value.agg)
                        else:
                            self.on_item(snapshot, key, value, emit)
                            agg = combine(agg, fold_in(key, value))
                else:
                    for value in values:
                        if isinstance(value, CombinedAgg):
                            agg = combine(agg, value.agg)
                        else:
                            agg = combine(agg, fold_in(key, value))
                record.agg = agg
        return out
