"""The identity operator (pass-through).

Used as the unit of streaming composition, in splitter/merge identity
laws (``SPLIT >> MRG = id``), and as a placeholder vertex in rewrite
tests.
"""

from __future__ import annotations

from typing import Any, List

from repro.operators.base import Event, Operator


class IdentityOp(Operator):
    """Pass every event through unchanged."""

    name = "ID"

    def handle(self, state: Any, event: Event) -> List[Event]:
        return [event]

    def handle_batch(self, state: Any, events) -> List[Event]:
        return list(events)


def identity_op() -> IdentityOp:
    """Construct a fresh identity operator."""
    return IdentityOp()
