"""Template validation helpers.

Theorem 4.2's guarantee rests on side conditions the templates cannot
enforce statically in Python: ``combine`` must be associative and
commutative, the pure functions must actually be pure, and
``OpKeyedOrdered`` emissions must preserve keys (that one *is* enforced
at runtime).  :func:`validate_operator` spot-checks what can be checked:

- for :class:`OpKeyedUnordered` / :class:`OpSlidingWindow` subclasses,
  the monoid laws on aggregates derived from sample events;
- for any operator, Definition 3.5 consistency over random
  dependence-respecting shuffles of sample streams.

It raises :class:`~repro.errors.ConsistencyError` with a concrete
witness on failure, and is cheap enough to run in CI for every operator
a project defines.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, List, Optional, Sequence

from repro.errors import ConsistencyError
from repro.operators.base import Event, KV, Marker, Operator
from repro.operators.keyed_unordered import CommutativeMonoid, OpKeyedUnordered
from repro.traces.blocks import BlockTrace


def _sample_aggregates(operator: OpKeyedUnordered, events: Sequence[Event]):
    """Monoid elements reachable from the sample events."""
    singles = [
        operator.fold_in(e.key, e.value) for e in events if isinstance(e, KV)
    ]
    samples = [operator.identity()] + singles[:4]
    # A few combined elements widen the law check beyond singletons.
    acc = operator.identity()
    for value in singles[:4]:
        acc = operator.combine(acc, value)
        samples.append(acc)
    return samples


def check_monoid_laws(
    operator: OpKeyedUnordered, events: Sequence[Event]
) -> None:
    """Spot-check identity/associativity/commutativity of the template's
    monoid on aggregates derived from ``events``."""
    monoid = CommutativeMonoid(operator.identity(), operator.combine)
    samples = _sample_aggregates(operator, events)
    if not monoid.spot_check(samples):
        raise ConsistencyError(
            f"{operator.label()}: combine() violates the commutative-monoid "
            f"laws on sampled aggregates {samples!r}"
        )


def shuffle_within_blocks(events: Sequence[Event], rng: random.Random) -> List[Event]:
    """A trace-equivalent reordering of a U stream (permute each block)."""
    result: List[Event] = []
    block: List[Event] = []
    for event in events:
        if isinstance(event, Marker):
            rng.shuffle(block)
            result.extend(block)
            result.append(event)
            block = []
        else:
            block.append(event)
    rng.shuffle(block)
    result.extend(block)
    return result


def check_consistency_on(
    operator: Operator,
    events: Sequence[Event],
    shuffles: int = 10,
    seed: int = 0,
    output_ordered: bool = False,
) -> None:
    """Definition 3.5 spot-check: equivalent (block-shuffled) inputs must
    give trace-equivalent outputs."""
    rng = random.Random(seed)
    base = BlockTrace.from_events(output_ordered, operator.run(list(events)))
    for _ in range(shuffles):
        variant = shuffle_within_blocks(events, rng)
        got = BlockTrace.from_events(output_ordered, operator.run(variant))
        if got != base:
            raise ConsistencyError(
                f"{operator.label()}: inconsistent outputs across equivalent "
                f"inputs\n  input A: {list(events)}\n  input B: {variant}"
            )


def validate_operator(
    operator: Operator,
    sample_events: Optional[Sequence[Event]] = None,
    shuffles: int = 10,
    seed: int = 0,
    output_ordered: bool = False,
) -> None:
    """Run every applicable spot-check on ``operator`` (see module doc)."""
    events = list(sample_events) if sample_events is not None else _default_events()
    if isinstance(operator, OpKeyedUnordered):
        check_monoid_laws(operator, events)
    # Order-sensitive (O-input) operators are consistent only for
    # per-key-order-preserving equivalences, which block shuffles are not;
    # the block-shuffle consistency check applies to U-input operators.
    if operator.input_kind != "O":
        check_consistency_on(
            operator, events, shuffles=shuffles, seed=seed,
            output_ordered=output_ordered,
        )


def _default_events() -> List[Event]:
    return [
        KV("a", 3), KV("b", 1), KV("a", 2), Marker(1),
        KV("b", 4), KV("c", 0), Marker(2),
        KV("a", 5), Marker(3),
    ]
