"""Template validation helpers.

Theorem 4.2's guarantee rests on side conditions the templates cannot
enforce statically in Python: ``combine`` must be associative and
commutative, the pure functions must actually be pure, and
``OpKeyedOrdered`` emissions must preserve keys (that one *is* enforced
at runtime).  :func:`validate_operator` spot-checks what can be checked:

- for :class:`OpKeyedUnordered` / :class:`OpSlidingWindow` subclasses,
  the monoid laws on aggregates derived from sample events;
- for any operator, Definition 3.5 consistency over random
  dependence-respecting shuffles of sample streams.

It raises :class:`~repro.errors.ConsistencyError` with a concrete
witness on failure, and is cheap enough to run in CI for every operator
a project defines.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ConsistencyError
from repro.operators.base import Event, KV, Operator
from repro.operators.keyed_unordered import CommutativeMonoid, OpKeyedUnordered
from repro.operators.sampling import default_sample_events, shuffle_within_blocks
from repro.traces.blocks import BlockTrace

__all__ = [
    "check_monoid_laws",
    "check_consistency_on",
    "validate_operator",
    "validate_operator_findings",
    "shuffle_within_blocks",  # re-exported from repro.operators.sampling
]


def _sample_aggregates(operator: OpKeyedUnordered, events: Sequence[Event]):
    """Monoid elements reachable from the sample events."""
    singles = [
        operator.fold_in(e.key, e.value) for e in events if isinstance(e, KV)
    ]
    samples = [operator.identity()] + singles[:4]
    # A few combined elements widen the law check beyond singletons.
    acc = operator.identity()
    for value in singles[:4]:
        acc = operator.combine(acc, value)
        samples.append(acc)
    return samples


def check_monoid_laws(
    operator: OpKeyedUnordered, events: Sequence[Event]
) -> None:
    """Spot-check identity/associativity/commutativity of the template's
    monoid on aggregates derived from ``events``."""
    monoid = CommutativeMonoid(operator.identity(), operator.combine)
    samples = _sample_aggregates(operator, events)
    if not monoid.spot_check(samples):
        raise ConsistencyError(
            f"{operator.label()}: combine() violates the commutative-monoid "
            f"laws on sampled aggregates {samples!r}"
        )


def check_consistency_on(
    operator: Operator,
    events: Sequence[Event],
    shuffles: int = 10,
    seed: int = 0,
    output_ordered: bool = False,
    rng: Optional[random.Random] = None,
) -> None:
    """Definition 3.5 spot-check: equivalent (block-shuffled) inputs must
    give trace-equivalent outputs.

    ``rng`` overrides ``seed`` when supplied, letting callers thread one
    deterministic generator through a whole validation session.
    """
    rng = rng if rng is not None else random.Random(seed)
    base = BlockTrace.from_events(output_ordered, operator.run(list(events)))
    for _ in range(shuffles):
        variant = shuffle_within_blocks(events, rng)
        got = BlockTrace.from_events(output_ordered, operator.run(variant))
        if got != base:
            raise ConsistencyError(
                f"{operator.label()}: inconsistent outputs across equivalent "
                f"inputs\n  input A: {list(events)}\n  input B: {variant}"
            )


def validate_operator(
    operator: Operator,
    sample_events: Optional[Sequence[Event]] = None,
    shuffles: int = 10,
    seed: int = 0,
    output_ordered: bool = False,
    rng: Optional[random.Random] = None,
) -> None:
    """Run every applicable spot-check on ``operator`` (see module doc).

    Determinism: the shuffles are drawn from ``rng`` when supplied, else
    from ``random.Random(seed)`` — never from the global RNG — so CI
    failures reproduce exactly from the logged seed.
    """
    events = (
        list(sample_events) if sample_events is not None
        else default_sample_events()
    )
    if isinstance(operator, OpKeyedUnordered):
        check_monoid_laws(operator, events)
    # Order-sensitive (O-input) operators are consistent only for
    # per-key-order-preserving equivalences, which block shuffles are not;
    # the block-shuffle consistency check applies to U-input operators.
    if operator.input_kind != "O":
        check_consistency_on(
            operator, events, shuffles=shuffles, seed=seed,
            output_ordered=output_ordered, rng=rng,
        )


def validate_operator_findings(
    operator: Operator,
    sample_events: Optional[Sequence[Event]] = None,
    shuffles: int = 10,
    seed: int = 0,
    output_ordered: bool = False,
    *,
    path: str = "",
    line: int = 0,
    symbol: str = "",
):
    """Dynamic-witness results as the linter's ``Finding`` records.

    The ``DT9xx`` backend of ``repro lint --dynamic``: runs the same
    spot-checks as :func:`validate_operator`, but instead of raising it
    returns a list of findings — DT901 for monoid-law failures, DT902
    for Definition 3.5 shuffle inconsistencies, DT903 when a check
    crashed before producing a verdict — so static and dynamic results
    merge into one report.  An empty list means every applicable check
    passed.
    """
    # Imported lazily: repro.analysis imports this module's checkers,
    # so a module-level import back into the analysis package would be
    # circular.
    from repro.analysis.registry import get_rule

    events = (
        list(sample_events) if sample_events is not None
        else default_sample_events()
    )
    symbol = symbol or operator.label()
    findings = []

    def spot(code: str, message: str):
        findings.append(
            get_rule(code).finding(
                message, path=path, line=line, symbol=symbol,
            )
        )

    if isinstance(operator, OpKeyedUnordered):
        try:
            check_monoid_laws(operator, events)
        except ConsistencyError as exc:
            spot("DT901", str(exc))
        except Exception as exc:  # crashed before a verdict
            spot("DT903", f"monoid-law check crashed: {exc!r}")
    if operator.input_kind != "O":
        try:
            check_consistency_on(
                operator, events, shuffles=shuffles, seed=seed,
                output_ordered=output_ordered,
            )
        except ConsistencyError as exc:
            spot("DT902", str(exc))
        except Exception as exc:
            spot("DT903", f"consistency check crashed: {exc!r}")
    return findings
