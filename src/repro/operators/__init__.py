"""Operator templates and structural operators (Section 4).

The three templates of Table 1 constrain vertex code so that it is
consistent with its input/output trace types by construction
(Theorem 4.2):

- :class:`OpStateless` — ``U(K, V) -> U(L, W)``: per-item output only.
- :class:`OpKeyedOrdered` — ``O(K, V) -> O(K, W)``: per-key stateful,
  order-dependent, output preserves the input key.
- :class:`OpKeyedUnordered` — ``U(K, V) -> U(L, W)``: per-key stateful
  where between-marker items are folded through a commutative monoid
  (the Table 3 algorithm).

Structural operators complete the Section 4 algebra: marker-aligned
:class:`Merge` (``MRG``), the splitters :class:`RoundRobinSplit` (``RR``)
and :class:`HashSplit` (``HASH``), between-marker :class:`SortOp`
(``SORT``), and :func:`identity_op`.

:mod:`repro.operators.library` layers common streaming idioms (map,
filter, tumbling/sliding window aggregation, stream-table join) on top of
the templates.
"""

from repro.operators.base import Operator, Emitter, KV
from repro.operators.stateless import OpStateless, StatelessFn
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.keyed_unordered import (
    OpKeyedUnordered,
    CommutativeMonoid,
    CombinedAgg,
)
from repro.operators.merge import Merge
from repro.operators.split import RoundRobinSplit, HashSplit, UnqSplit, Splitter
from repro.operators.sort import SortOp
from repro.operators.identity import identity_op, IdentityOp
from repro.operators.sliding import OpSlidingWindow, SlidingWindowFn, sliding_window, sliding_max
from repro.operators.window_algorithms import (
    SlidingWindowAggregator,
    TwoStacksAggregator,
    RecomputeAggregator,
    make_aggregator,
)
from repro.operators.validate import validate_operator
from repro.operators import library
from repro.operators import joins

__all__ = [
    "Operator",
    "Emitter",
    "KV",
    "OpStateless",
    "StatelessFn",
    "OpKeyedOrdered",
    "OpKeyedUnordered",
    "CommutativeMonoid",
    "CombinedAgg",
    "Merge",
    "RoundRobinSplit",
    "HashSplit",
    "UnqSplit",
    "Splitter",
    "SortOp",
    "identity_op",
    "IdentityOp",
    "OpSlidingWindow",
    "SlidingWindowFn",
    "sliding_window",
    "sliding_max",
    "SlidingWindowAggregator",
    "TwoStacksAggregator",
    "RecomputeAggregator",
    "make_aggregator",
    "validate_operator",
    "joins",
    "library",
]
