"""Runtime event and operator plumbing shared by all templates.

Runtime streams carry two kinds of *events*:

- :class:`KV` — a key-value pair;
- :class:`Marker` — a synchronization marker with its timestamp.

An :class:`Operator` is a *factory of stateful instances*: the object
itself holds only configuration (so one operator can be instantiated many
times for data parallelism); all mutable state lives in the value returned
by :meth:`Operator.initial_state` and is threaded through
:meth:`Operator.handle`.  ``handle`` returns the list of output events for
one input event, forwarding markers automatically — in the paper's
templates the programmer never emits markers; the runtime propagates them
(Table 3's ``emit(m)``).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, List, NamedTuple, Optional, Sequence, Union


class KV(NamedTuple):
    """A key-value event.

    A ``NamedTuple`` rather than a (frozen) dataclass: events are
    created once per emission in every stage of every engine, and tuple
    construction is several times cheaper than a frozen dataclass's
    ``object.__setattr__`` init — measurably so on the batched hot
    paths.  Still immutable and hashable, same field names."""

    key: Any
    value: Any

    def __repr__(self):
        return f"KV({self.key!r}, {self.value!r})"


class Marker(NamedTuple):
    """A synchronization-marker event with its timestamp."""

    timestamp: Any

    def __repr__(self):
        return f"Marker({self.timestamp!r})"


Event = Union[KV, Marker]


def is_marker_event(event: Event) -> bool:
    """Whether a runtime event is a synchronization marker."""
    return isinstance(event, Marker)


class Emitter:
    """Collects the key-value pairs emitted by template callbacks.

    Template code calls :meth:`emit`; the runtime drains :attr:`buffer`
    after each callback.  An optional ``key_guard`` enforces template
    restrictions (``OpKeyedOrdered`` requires output to preserve the input
    key).
    """

    def __init__(self, key_guard: Optional[Callable[[Any], None]] = None):
        self.buffer: List[KV] = []
        self._key_guard = key_guard

    def emit(self, key: Any, value: Any) -> None:
        """Emit one output key-value pair."""
        if self._key_guard is not None:
            self._key_guard(key)
        self.buffer.append(KV(key, value))

    def drain(self) -> List[KV]:
        """Remove and return everything emitted since the last drain."""
        out, self.buffer = self.buffer, []
        return out


class Operator:
    """Base class for single-input single-output operators.

    Subclasses (the Table 1 templates) implement :meth:`initial_state`
    and :meth:`handle`.  ``handle`` must be a pure function of
    ``(configuration, state, event)`` up to mutation of ``state`` — no
    hidden instance-level mutable state — so that parallel instances are
    independent.
    """

    #: Optional data-trace types for DAG type checking.
    input_type = None
    output_type = None

    #: Stream kinds for the DAG type checker: "U" (unordered between
    #: markers), "O" (per-key ordered between markers), or ``None`` for
    #: kind-polymorphic operators (identity).
    input_kind = None
    output_kind = None

    #: Human-readable name used in topologies and renderings.
    name: str = ""

    def initial_state(self) -> Any:
        """Create the state for a fresh operator instance."""
        return None

    def handle(self, state: Any, event: Event) -> List[Event]:
        """Consume one event; return output events (markers included)."""
        raise NotImplementedError

    def handle_batch(self, state: Any, events: Sequence[Event]) -> List[Event]:
        """Consume a block of events at once; return all output events.

        The batched entry point of the epoch-batched engine.  The default
        is the serial loop, so every operator supports batching; the
        template subclasses override it with kernels that amortize
        per-event dispatch over whole epochs.  Any override must denote
        the same trace transduction as the per-event path: for a ``U``
        input the batch may be folded in any order (the type says
        between-marker items are independent), for an ``O`` input per-key
        order must be preserved — so canonical output traces are always
        equal to the serial path's, which is what licenses the engine to
        pick either.
        """
        handle = self.handle
        out: List[Event] = []
        for event in events:
            out.extend(handle(state, event))
        return out

    def snapshot_state(self, state: Any) -> Any:
        """Capture ``state`` for an epoch-aligned checkpoint.

        The snapshot must be *independent* of the live state: mutating
        either afterwards must not affect the other.  The default deep
        copy is always correct; the template subclasses override it with
        cheaper structure-aware copies.
        """
        return copy.deepcopy(state)

    def restore_state(self, snapshot: Any) -> Any:
        """Rebuild a live state from a :meth:`snapshot_state` result.

        The snapshot itself must survive intact (it may be restored
        again after a second failure), so the default deep-copies on the
        way out too.
        """
        return copy.deepcopy(snapshot)

    def run(self, events) -> List[Event]:
        """Evaluate sequentially over an event iterable (testing aid)."""
        state = self.initial_state()
        out: List[Event] = []
        for event in events:
            out.extend(self.handle(state, event))
        return out

    def label(self) -> str:
        return self.name or type(self).__name__

    def __repr__(self):
        return f"<{self.label()}>"
