"""Marker-aligned merge ``MRG`` (Section 4).

``MRG`` combines several input channels into one by aligning them on
synchronization markers and taking the union of the key-value pairs in
corresponding blocks.  Two typed variants exist (the paper does not
distinguish them notationally and neither do we):

- ``U(K,V) x ... x U(K,V) -> U(K,V)`` — unordered channels, same keys;
- ``O(K1,V) x ... x O(Kn,V) -> O(K1+..+Kn, V)`` — ordered channels with
  pairwise disjoint key sets.

Runtime behaviour: items from a channel still inside the *current* output
block pass through immediately; items from a channel that has already
crossed a marker the merge has not yet emitted are buffered per block.
The k-th output marker is emitted once every channel has delivered its
k-th marker, at which point the buffered items of the next block are
flushed.  This keeps block contents exactly the blockwise unions, which
is what makes the Theorem 4.3 equations hold.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple

from repro.errors import SimulationError
from repro.operators.base import KV, Event, Marker


class _MergeState:
    __slots__ = ("blocks_ahead", "pending", "marker_timestamps",
                 "emitted_markers", "last_emitted_ts")

    def __init__(self, n_inputs: int):
        # How many un-emitted markers each channel has delivered.
        self.blocks_ahead: List[int] = [0] * n_inputs
        # pending[c] = queue of buffered future blocks for channel c; each
        # entry is the list of items of one complete-or-partial block.
        self.pending: List[Deque[List[KV]]] = [deque() for _ in range(n_inputs)]
        # Timestamps of markers delivered but not yet emitted, per channel.
        self.marker_timestamps: List[Deque[Any]] = [deque() for _ in range(n_inputs)]
        self.emitted_markers: int = 0
        # Timestamp of the newest emitted (aligned) marker — the
        # operator's watermark: everything at or before it is sealed.
        self.last_emitted_ts: Any = None


class Merge:
    """Marker-aligned merge of ``n_inputs`` channels (``MRG``)."""

    name = "MRG"

    def __init__(self, n_inputs: int, name: str = ""):
        if n_inputs < 1:
            raise ValueError("Merge requires at least one input channel")
        self.n_inputs = n_inputs
        if name:
            self.name = name

    def initial_state(self) -> _MergeState:
        return _MergeState(self.n_inputs)

    def handle(self, state: _MergeState, channel: int, event: Event) -> List[Event]:
        """Consume one event from ``channel``; return merged output events."""
        if not 0 <= channel < self.n_inputs:
            raise SimulationError(f"merge channel {channel} out of range")
        out: List[Event] = []
        if isinstance(event, Marker):
            state.blocks_ahead[channel] += 1
            state.marker_timestamps[channel].append(event.timestamp)
            # Opening a buffered block for the segment after this marker.
            state.pending[channel].append([])
            self._drain_ready(state, out)
            return out
        if state.blocks_ahead[channel] == 0:
            out.append(event)
        else:
            state.pending[channel][-1].append(event)
        return out

    def handle_batch(
        self, state: _MergeState, channel: int, events: List[Event]
    ) -> List[Event]:
        """Consume a block of events from ``channel`` at once.

        Runs of non-marker events either pass straight through (channel
        inside the current output block) or append to the channel's open
        buffered block in one ``extend``; marker alignment is identical
        to the per-event path, so the emitted trace is the same blockwise
        union whichever entry point delivered the events.
        """
        if not 0 <= channel < self.n_inputs:
            raise SimulationError(f"merge channel {channel} out of range")
        out: List[Event] = []
        blocks_ahead = state.blocks_ahead
        i, n = 0, len(events)
        while i < n:
            event = events[i]
            if isinstance(event, Marker):
                blocks_ahead[channel] += 1
                state.marker_timestamps[channel].append(event.timestamp)
                state.pending[channel].append([])
                self._drain_ready(state, out)
                i += 1
                continue
            j = i
            while j < n and not isinstance(events[j], Marker):
                j += 1
            run = events[i:j]
            if blocks_ahead[channel] == 0:
                out.extend(run)
            else:
                state.pending[channel][-1].extend(run)
            i = j
        return out

    def snapshot_state(self, state: _MergeState) -> Any:
        """Full-fidelity copy of the alignment state.

        Items are immutable events, so per-block shallow list copies
        suffice; the deques are rebuilt on restore.
        """
        return (
            list(state.blocks_ahead),
            [[list(block) for block in queue] for queue in state.pending],
            [list(queue) for queue in state.marker_timestamps],
            state.emitted_markers,
            state.last_emitted_ts,
        )

    def restore_state(self, snapshot: Any) -> _MergeState:
        blocks_ahead, pending, marker_timestamps, emitted, last_ts = snapshot
        state = _MergeState(self.n_inputs)
        state.blocks_ahead = list(blocks_ahead)
        state.pending = [
            deque(list(block) for block in queue) for queue in pending
        ]
        state.marker_timestamps = [deque(queue) for queue in marker_timestamps]
        state.emitted_markers = emitted
        state.last_emitted_ts = last_ts
        return state

    def _drain_ready(self, state: _MergeState, out: List[Event]) -> None:
        """Emit markers (and flush buffered blocks) while every channel is
        at least one marker ahead of the output."""
        while all(ahead > 0 for ahead in state.blocks_ahead):
            timestamps = [state.marker_timestamps[c].popleft() for c in range(self.n_inputs)]
            first = timestamps[0]
            if any(ts != first for ts in timestamps):
                raise SimulationError(
                    f"misaligned marker timestamps across merge inputs: {timestamps}"
                )
            out.append(Marker(first))
            state.emitted_markers += 1
            state.last_emitted_ts = first
            for c in range(self.n_inputs):
                state.blocks_ahead[c] -= 1
                # The flushed block's items belong to the block the output
                # has just entered, so they are emitted immediately.
                out.extend(state.pending[c].popleft())

    def label(self) -> str:
        return self.name

    def __repr__(self):
        return f"<{self.name} x{self.n_inputs}>"
