"""Stream-stream joins and richer keyed aggregates on the templates.

Everything here stays inside the Table 1 discipline so the Theorem 4.2
guarantee carries over:

- :class:`BlockJoin` — per-key join of two streams within each marker
  block.  The two input streams are tagged into one ``U`` stream (a
  merge of ``U(K, (side, V))``); between markers the per-key pairs of
  both sides form bags, the monoid collects them, and the marker emits
  the join of the two bags.  This is the windowed equi-join of streaming
  SQL, expressed as an ``OpKeyedUnordered``.
- :class:`TopK` — per-key top-k elements over each block (a commutative
  idempotent-ish monoid on sorted tuples).
- :class:`DistinctCount` — per-key count of distinct values per block
  (monoid: frozensets under union).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.operators.base import Marker
from repro.operators.keyed_unordered import OpKeyedUnordered
from repro.operators.stateless import StatelessFn


LEFT = "L"
RIGHT = "R"


def tag_side(side: str, name: str = "tag") -> StatelessFn:
    """Stateless stage labelling a stream's values with its join side."""
    if side not in (LEFT, RIGHT):
        raise ValueError("side must be joins.LEFT or joins.RIGHT")
    return StatelessFn(lambda k, v: [(k, (side, v))], name=f"{name}{side}")


class BlockJoin(OpKeyedUnordered):
    """Per-key, per-block equi-join of two side-tagged streams.

    Input values are ``(side, value)`` pairs (see :func:`tag_side`); at
    each marker, for every key, the cross product of the block's left
    and right bags is emitted through ``project(key, left, right)``.
    The monoid is a pair of multisets kept as sorted tuples, so
    ``combine`` is associative and commutative.
    """

    name = "blockJoin"

    def __init__(
        self,
        project: Optional[Callable[[Any, Any, Any], Any]] = None,
    ):
        self._project = project or (lambda key, left, right: (left, right))

    def fold_in(self, key, value):
        side, payload = value
        if side == LEFT:
            return ((payload,), ())
        return ((), (payload,))

    def identity(self):
        return ((), ())

    def combine(self, x, y):
        return (
            tuple(sorted(x[0] + y[0], key=repr)),
            tuple(sorted(x[1] + y[1], key=repr)),
        )

    def init(self):
        return None

    def update_state(self, old_state, agg):
        return agg

    def on_marker(self, new_state, key, m: Marker, emit):
        left_bag, right_bag = new_state
        for left in left_bag:
            for right in right_bag:
                emit(key, self._project(key, left, right))


class TopK(OpKeyedUnordered):
    """Per-key top-k values of each block, by a sort key (default: the
    value itself), emitted at each marker as one sorted tuple."""

    name = "topK"

    def __init__(self, k: int, sort_key: Optional[Callable[[Any], Any]] = None):
        if k < 1:
            raise ValueError("k must be positive")
        self._k = k
        self._sort_key = sort_key or (lambda v: v)

    def fold_in(self, key, value):
        return (value,)

    def identity(self):
        return ()

    def combine(self, x, y):
        # repr tiebreak keeps the truncation deterministic on ties, which
        # is what makes combine commutative (Theorem 4.2's requirement).
        merged = sorted(
            x + y, key=lambda v: (self._sort_key(v), repr(v)), reverse=True
        )
        return tuple(merged[: self._k])

    def init(self):
        return None

    def update_state(self, old_state, agg):
        return agg

    def on_marker(self, new_state, key, m: Marker, emit):
        if new_state:
            emit(key, tuple(new_state))


class DistinctCount(OpKeyedUnordered):
    """Per-key count of distinct values in each block."""

    name = "distinctCount"

    def fold_in(self, key, value):
        return frozenset((value,))

    def identity(self):
        return frozenset()

    def combine(self, x, y):
        return x | y

    def init(self):
        return None

    def update_state(self, old_state, agg):
        return agg

    def on_marker(self, new_state, key, m: Marker, emit):
        if new_state:
            emit(key, len(new_state))
