"""The data-trace formal model of Section 3 of the paper.

A *data type* ``A = (Sigma, (T_sigma))`` pairs a tag alphabet with a value
type per tag; a *dependence relation* ``D`` is a symmetric binary relation
on tags; a *data-trace type* ``X = (A, D)`` induces the congruence ``=_D``
on item sequences (commute adjacent items with independent tags), and a
*data trace* is an equivalence class of that congruence.

Public surface:

- :class:`Tag`, :data:`MARKER` — tags and the distinguished marker tag.
- :class:`DataType` — tag alphabet plus per-tag value validators.
- :class:`DependenceRelation` — symmetric relations with constructors for
  the common shapes (full / empty / chain / keyed).
- :class:`DataTraceType` — a data type plus dependence relation, with
  the practical constructors :func:`unordered_type` (``U(K, V)``) and
  :func:`ordered_type` (``O(K, V)``) of Section 4.
- :class:`Item`, :func:`marker` — tagged data items.
- :class:`DataTrace` — canonical-form traces with concatenation, prefix
  order, residuals, and equivalence.
- :class:`Pomset` — the partial-order view of a trace.
- :mod:`repro.traces.blocks` — the cheap marker-delimited block
  representation used by the runtime for ``U``/``O`` traces.
"""

from repro.traces.tags import Tag, MARKER, DataType
from repro.traces.dependence import DependenceRelation
from repro.traces.items import Item, marker, is_marker
from repro.traces.trace_type import (
    DataTraceType,
    unordered_type,
    ordered_type,
    sequence_type,
    bag_type,
    channels_type,
)
from repro.traces.normal_form import lex_normal_form, foata_normal_form
from repro.traces.trace import DataTrace
from repro.traces.pomset import Pomset
from repro.traces.blocks import BlockTrace, Block

__all__ = [
    "Tag",
    "MARKER",
    "DataType",
    "DependenceRelation",
    "Item",
    "marker",
    "is_marker",
    "DataTraceType",
    "unordered_type",
    "ordered_type",
    "sequence_type",
    "bag_type",
    "channels_type",
    "lex_normal_form",
    "foata_normal_form",
    "DataTrace",
    "Pomset",
    "BlockTrace",
    "Block",
]
