"""Generalized punctuations beyond periodic global markers.

Section 7 notes that the implementation "supports at the moment only a
specific kind of time-based punctuations (i.e., periodic synchronization
markers), but our semantic framework can encode more general
punctuations" (Li et al.'s punctuation semantics).  This module supplies
that encoding plus a runtime operator:

- :func:`punctuated_type` — a trace type whose alphabet carries, besides
  key-value items, *key-scoped punctuations* ``punct(k, t)`` asserting
  "no further ``k``-items with timestamp < t will arrive".  A
  punctuation for key ``k`` depends on ``k``'s data tag and on other
  punctuations for ``k`` — but is independent of every other key, so
  different keys progress independently (impossible with global
  markers).
- :class:`PunctuationReorder` — an operator that uses per-key
  punctuations to restore per-key timestamp order: it buffers each key's
  items and releases, on ``punct(k, t)``, all buffered ``k``-items below
  ``t`` in timestamp order.  This is the punctuation-driven analogue of
  ``SORT`` and shows the framework expressing Li et al.-style
  out-of-order processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.traces.dependence import DependenceRelation
from repro.traces.tags import DataType, Tag
from repro.traces.trace_type import DataTraceType


# ----------------------------------------------------------------------
# The type-level encoding.
# ----------------------------------------------------------------------

#: Tag-name wrapper distinguishing a key's punctuation tag from its data
#: tag: the punctuation tag for key ``k`` is ``Tag(("punct", k))``.
PUNCT = "punct"


def punct_tag(key: Any) -> Tag:
    """The punctuation tag for ``key``."""
    return Tag((PUNCT, key))


def data_tag(key: Any) -> Tag:
    """The data tag for ``key`` (the key itself, as in U/O types)."""
    return Tag(key)


def _is_punct_tag(tag: Tag) -> bool:
    return (
        isinstance(tag.name, tuple)
        and len(tag.name) == 2
        and tag.name[0] == PUNCT
    )


def _key_of_tag(tag: Tag) -> Any:
    return tag.name[1] if _is_punct_tag(tag) else tag.name


def punctuated_type(ordered_per_key: bool = False) -> DataTraceType:
    """Key-value traces with per-key punctuations.

    Dependence relation: ``punct(k, _)`` depends on itself (a key's
    punctuations are linearly ordered) and on ``k``'s data tag (data
    cannot commute past its own key's punctuation); everything across
    different keys is independent.  With ``ordered_per_key`` the data
    tags additionally self-depend.
    """

    def predicate(a: Tag, b: Tag) -> bool:
        key_a, key_b = _key_of_tag(a), _key_of_tag(b)
        if key_a != key_b:
            return False
        pa, pb = _is_punct_tag(a), _is_punct_tag(b)
        if pa or pb:
            return True  # punct-punct and punct-data of the same key
        return ordered_per_key  # data-data of the same key

    kind = "O" if ordered_per_key else "U"
    dependence = DependenceRelation(
        predicate=predicate, description=f"punctuated-{kind}"
    )
    data_type = DataType(default_value_type=lambda _v: True)
    return DataTraceType(
        data_type,
        dependence,
        name=f"Punct{kind}(K,V)",
        keyed=True,
        ordered_per_key=ordered_per_key,
    )


# ----------------------------------------------------------------------
# Runtime events and the reordering operator.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Punctuation:
    """Runtime event: no more ``key``-items with ts < ``watermark``."""

    key: Any
    watermark: Any

    def __repr__(self):
        return f"Punct({self.key!r}, <{self.watermark!r})"


class PunctuationReorder:
    """Release per-key items in timestamp order, driven by punctuations.

    Consumes a mixed stream of ``(key, (value, ts))`` pairs (as
    :class:`~repro.operators.base.KV`) and :class:`Punctuation` events;
    emits, at each punctuation, the covered items sorted by timestamp,
    followed by the punctuation itself.  Keys progress independently:
    a slow key's missing punctuation never blocks other keys — the
    advantage over global markers.
    """

    name = "PunctSort"

    def initial_state(self) -> Dict[Any, List[Tuple[Any, Any]]]:
        return {}

    def handle(self, state, event) -> List[Any]:
        from repro.operators.base import KV

        if isinstance(event, Punctuation):
            buffered = state.get(event.key, [])
            ready = [item for item in buffered if item[1] < event.watermark]
            state[event.key] = [
                item for item in buffered if item[1] >= event.watermark
            ]
            ready.sort(key=lambda item: (item[1], repr(item[0])))
            out: List[Any] = [KV(event.key, item) for item in ready]
            out.append(event)
            return out
        state.setdefault(event.key, []).append(event.value)
        return []

    def run(self, events) -> List[Any]:
        state = self.initial_state()
        out: List[Any] = []
        for event in events:
            out.extend(self.handle(state, event))
        return out
