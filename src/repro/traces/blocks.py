"""Block representation of ``U(K, V)`` / ``O(K, V)`` traces.

For the Section 4 types, a data trace is isomorphic to a sequence of
*blocks* delimited by the linearly ordered markers:

- for ``U(K, V)`` each block is a **bag** of key-value pairs;
- for ``O(K, V)`` each block maps each key to a **sequence** of values
  (same-key order matters, cross-key order does not).

This representation makes equivalence checking linear instead of the
quadratic general normal form, so the runtime, the consistency checker,
and the experiment harness all compare stream outputs through
:class:`BlockTrace`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TraceTypeError
from repro.traces.items import Item, is_marker, kv_item, marker
from repro.traces.trace_type import DataTraceType


class Block:
    """One marker-delimited segment of a keyed trace.

    ``closing_marker`` is the timestamp of the marker that ends the block,
    or ``None`` for the trailing (still open) block.
    """

    __slots__ = ("ordered", "_bag", "_seqs", "closing_marker")

    def __init__(self, ordered: bool, closing_marker: Optional[Any] = None):
        self.ordered = ordered
        self._bag: Counter = Counter()
        self._seqs: Dict[Any, List[Any]] = defaultdict(list)
        self.closing_marker = closing_marker

    def add(self, key: Any, value: Any) -> None:
        """Record one key-value pair in the block."""
        if self.ordered:
            self._seqs[key].append(value)
        else:
            self._bag[(key, value)] += 1

    def is_empty(self) -> bool:
        return not self._bag and not self._seqs

    def canonical(self):
        """A hashable canonical view of the block's contents."""
        if self.ordered:
            return tuple(
                sorted(
                    (repr(k), k, tuple(vs)) for k, vs in self._seqs.items() if vs
                )
            )
        return tuple(sorted(((repr(kv), kv, n) for kv, n in self._bag.items())))

    def pairs(self) -> List[Tuple[Any, Any]]:
        """All key-value pairs in the block, in a canonical order."""
        if self.ordered:
            result = []
            for _, key, values in self.canonical():
                result.extend((key, v) for v in values)
            return result
        result = []
        for _, (key, value), count in self.canonical():
            result.extend([(key, value)] * count)
        return result

    def size(self) -> int:
        if self.ordered:
            return sum(len(vs) for vs in self._seqs.values())
        return sum(self._bag.values())

    def copy(self) -> "Block":
        clone = Block(self.ordered, self.closing_marker)
        clone._bag = Counter(self._bag)
        clone._seqs = defaultdict(list, {k: list(v) for k, v in self._seqs.items()})
        return clone

    def merge_from(self, other: "Block") -> None:
        """Union the contents of ``other`` into this block (used by MRG)."""
        if self.ordered != other.ordered:
            raise TraceTypeError("cannot merge ordered and unordered blocks")
        if self.ordered:
            for key, values in other._seqs.items():
                self._seqs[key].extend(values)
        else:
            self._bag.update(other._bag)

    def __eq__(self, other):
        if not isinstance(other, Block):
            return NotImplemented
        return (
            self.ordered == other.ordered
            and self.closing_marker == other.closing_marker
            and self.canonical() == other.canonical()
        )

    def __hash__(self):
        return hash((self.ordered, self.closing_marker, self.canonical()))

    def __repr__(self):
        close = f" #{self.closing_marker}" if self.closing_marker is not None else ""
        return f"Block({self.pairs()!r}{close})"


class BlockTrace:
    """A keyed data trace as a sequence of blocks.

    Build incrementally with :meth:`add_pair` / :meth:`add_marker`, or at
    once from events (``(key, value)`` pairs and markers) with
    :meth:`from_events`, or from a formal item sequence with
    :meth:`from_items`.
    """

    def __init__(self, ordered: bool):
        self.ordered = ordered
        self.blocks: List[Block] = [Block(ordered)]

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_events(cls, ordered: bool, events: Iterable[Any]) -> "BlockTrace":
        """Build from a stream of ``(key, value)`` tuples and
        ``("#", timestamp)`` marker tuples (or :class:`Item` markers)."""
        from repro.operators.base import KV as RuntimeKV, Marker as RuntimeMarker

        trace = cls(ordered)
        for event in events:
            if isinstance(event, Item):
                if is_marker(event):
                    trace.add_marker(event.value)
                else:
                    trace.add_pair(event.key, event.value)
            elif isinstance(event, RuntimeMarker):
                trace.add_marker(event.timestamp)
            elif isinstance(event, RuntimeKV):
                trace.add_pair(event.key, event.value)
            elif isinstance(event, tuple) and len(event) == 2 and event[0] == "#":
                trace.add_marker(event[1])
            else:
                key, value = event
                trace.add_pair(key, value)
        return trace

    @classmethod
    def from_items(cls, trace_type: DataTraceType, items: Sequence[Item]) -> "BlockTrace":
        """Build from a formal item sequence of a keyed trace type."""
        if not trace_type.keyed:
            raise TraceTypeError("BlockTrace requires a keyed (U/O) trace type")
        trace = cls(trace_type.ordered_per_key)
        for item in items:
            if is_marker(item):
                trace.add_marker(item.value)
            else:
                trace.add_pair(item.key, item.value)
        return trace

    def add_pair(self, key: Any, value: Any) -> None:
        """Append one key-value pair to the open block."""
        self.blocks[-1].add(key, value)

    def add_marker(self, timestamp: Any) -> None:
        """Close the open block with a marker and open a fresh block."""
        self.blocks[-1].closing_marker = timestamp
        self.blocks.append(Block(self.ordered))

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------

    def closed_blocks(self) -> List[Block]:
        """All marker-closed blocks (everything but the trailing block)."""
        return self.blocks[:-1]

    def open_block(self) -> Block:
        """The trailing, not-yet-closed block."""
        return self.blocks[-1]

    def num_markers(self) -> int:
        return len(self.blocks) - 1

    def total_pairs(self) -> int:
        return sum(block.size() for block in self.blocks)

    def canonical(self):
        """Hashable canonical view: per-block canonical contents, dropping
        nothing — two BlockTraces are trace-equivalent iff these agree."""
        return tuple(
            (block.canonical(), block.closing_marker) for block in self.blocks
        )

    def __eq__(self, other):
        if not isinstance(other, BlockTrace):
            return NotImplemented
        return self.ordered == other.ordered and self.canonical() == other.canonical()

    def __hash__(self):
        return hash((self.ordered, self.canonical()))

    def __repr__(self):
        return f"BlockTrace(ordered={self.ordered}, blocks={self.blocks!r})"

    # ------------------------------------------------------------------
    # Order and conversion.
    # ------------------------------------------------------------------

    def is_prefix_of(self, other: "BlockTrace") -> bool:
        """Prefix order on keyed traces, blockwise.

        ``u <= v`` iff every closed block of ``u`` equals the matching
        block of ``v`` and the open block of ``u`` is contained in the
        next block of ``v`` (bag containment for ``U``; per-key sequence
        prefix for ``O``).
        """
        if self.ordered != other.ordered:
            return False
        mine = self.blocks
        theirs = other.blocks
        if len(mine) > len(theirs):
            return False
        for i, block in enumerate(mine[:-1]):
            if block != theirs[i]:
                return False
        last = mine[-1]
        target = theirs[len(mine) - 1]
        if self.ordered:
            for key, values in last._seqs.items():
                target_values = target._seqs.get(key, [])
                if list(values) != list(target_values[: len(values)]):
                    return False
            return True
        return all(target._bag[kv] >= n for kv, n in last._bag.items())

    def to_items(self) -> List[Item]:
        """A representative formal item sequence of this trace."""
        result: List[Item] = []
        for block in self.blocks:
            for key, value in block.pairs():
                result.append(kv_item(key, value))
            if block.closing_marker is not None:
                result.append(marker(block.closing_marker))
        return result
