"""Data-trace types: a data type plus a dependence relation.

A data-trace type ``X = (A, D)`` (Section 3.1) determines the congruence
``=_D`` on ``A*`` and hence the set of data traces of type ``X``.  This
module provides the general :class:`DataTraceType` together with
constructors for every shape the paper uses:

- :func:`sequence_type` — singleton tag, self-dependent: traces are
  sequences over ``T``.
- :func:`bag_type` — singleton tag, self-independent: traces are bags.
- :func:`channels_type` — one self-dependent tag per channel: acyclic
  Kahn-network channels (Example 3.3).
- :func:`unordered_type` — ``U(K, V)`` of Section 4: linearly ordered
  markers, unordered key-value pairs between markers.
- :func:`ordered_type` — ``O(K, V)`` of Section 4: markers plus per-key
  order between markers.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import TraceTypeError
from repro.traces.dependence import DependenceRelation
from repro.traces.items import Item
from repro.traces.tags import MARKER, DataType, Tag, nat_validator


class DataTraceType:
    """A data-trace type ``X = (A, D)``.

    Parameters
    ----------
    data_type:
        The data type ``A`` (alphabet plus value types).
    dependence:
        The symmetric dependence relation ``D`` on the alphabet.
    name:
        Human-readable name used in reprs and type-error messages.
    keyed:
        Marks the Section 4 key-value types (``U``/``O``): the DAG
        machinery uses this flag to know that items are key-value pairs
        eligible for hash-based data parallelism.
    ordered_per_key:
        For keyed types: whether same-key items between markers are
        linearly ordered (``O``) or unordered (``U``).
    """

    def __init__(
        self,
        data_type: DataType,
        dependence: DependenceRelation,
        name: str = "",
        keyed: bool = False,
        ordered_per_key: bool = False,
    ):
        self.data_type = data_type
        self.dependence = dependence
        self.name = name or "DataTraceType"
        self.keyed = keyed
        self.ordered_per_key = ordered_per_key

    # ------------------------------------------------------------------
    # Item-level operations.
    # ------------------------------------------------------------------

    def check_item(self, item: Item) -> None:
        """Raise :class:`TraceTypeError` unless ``item`` inhabits ``A``."""
        self.data_type.check_item(item.tag, item.value)

    def check_sequence(self, items: Iterable[Item]) -> None:
        """Type-check every item of a sequence."""
        for item in items:
            self.check_item(item)

    def items_dependent(self, a: Item, b: Item) -> bool:
        """The dependence relation induced on items by ``D`` (Section 3.1)."""
        return self.dependence.dependent(a.tag, b.tag)

    def items_independent(self, a: Item, b: Item) -> bool:
        """Whether two items commute (their tags are independent)."""
        return not self.items_dependent(a, b)

    # ------------------------------------------------------------------
    # Structural queries used by the DAG layer.
    # ------------------------------------------------------------------

    def is_marker_type(self) -> bool:
        """Whether the alphabet includes the synchronization-marker tag."""
        return self.data_type.contains_tag(MARKER)

    def stream_kind(self) -> Optional[str]:
        """The Section 4 stream kind: ``"O"``, ``"U"``, or ``None``.

        ``None`` means the type is outside the keyed U/O fragment
        (sequences, bags, channel products); the DAG type checker and
        the online monitors both classify edges through this method.
        """
        if not self.keyed:
            return None
        return "O" if self.ordered_per_key else "U"

    def monitor_spec(self) -> dict:
        """What an online monitor must check on an edge of this type.

        Consumed by :class:`repro.obs.monitor.EdgeMonitor`: the
        dependence relation determines which runtime invariants are
        falsifiable from a single interleaving — per-key order only
        exists when same-key items are self-dependent (``O``), while
        marker well-formedness applies to any marker-bearing type.
        """
        kind = self.stream_kind()
        return {
            "kind": kind,
            "check_per_key_order": kind == "O",
            "check_markers": self.is_marker_type(),
            "keyed": self.keyed,
            "type_name": self.name,
        }

    def compatible_with(self, other: "DataTraceType") -> bool:
        """Loose structural compatibility used by the DAG type checker.

        Two types are compatible when they agree on keyedness and per-key
        ordering.  (Value types are checked dynamically per item.)
        """
        return (
            self.keyed == other.keyed
            and self.ordered_per_key == other.ordered_per_key
        )

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        if not isinstance(other, DataTraceType):
            return NotImplemented
        return (
            self.name == other.name
            and self.keyed == other.keyed
            and self.ordered_per_key == other.ordered_per_key
        )

    def __hash__(self):
        return hash((self.name, self.keyed, self.ordered_per_key))


# ----------------------------------------------------------------------
# Constructors.
# ----------------------------------------------------------------------


def sequence_type(value_type: Any = None, tag_name: str = "item") -> DataTraceType:
    """Traces over a single self-dependent tag: plain sequences over ``T``."""
    tag = Tag(tag_name)
    data_type = DataType({tag: value_type})
    dependence = DependenceRelation.full([tag])
    return DataTraceType(data_type, dependence, name=f"Seq({tag_name})")


def bag_type(value_type: Any = None, tag_name: str = "item") -> DataTraceType:
    """Traces over a single self-independent tag: bags over ``T``."""
    tag = Tag(tag_name)
    data_type = DataType({tag: value_type})
    dependence = DependenceRelation.empty()
    return DataTraceType(data_type, dependence, name=f"Bag({tag_name})")


def channels_type(
    channel_names: Sequence[str], value_types: Optional[Sequence[Any]] = None
) -> DataTraceType:
    """Independent linearly ordered channels (Example 3.3).

    One tag per channel, each dependent only on itself; the set of traces
    is isomorphic to the product of the per-channel sequence sets.
    """
    names = list(channel_names)
    if value_types is None:
        value_types = [None] * len(names)
    if len(value_types) != len(names):
        raise TraceTypeError("one value type per channel is required")
    data_type = DataType({Tag(n): vt for n, vt in zip(names, value_types)})
    dependence = DependenceRelation.keyed()
    return DataTraceType(data_type, dependence, name=f"Channels({','.join(names)})")


def _keyed_type(
    ordered: bool,
    key_predicate: Optional[Callable[[Any], bool]],
    value_type: Any,
    name: str,
) -> DataTraceType:
    tag_predicate = None
    if key_predicate is not None:
        tag_predicate = lambda tag: tag == MARKER or key_predicate(tag.name)
    data_type = DataType(
        value_types={MARKER: nat_validator},
        default_value_type=value_type if value_type is not None else (lambda _v: True),
        tag_predicate=tag_predicate,
    )
    dependence = DependenceRelation.with_marker(data_tags_self_dependent=ordered)
    return DataTraceType(
        data_type,
        dependence,
        name=name,
        keyed=True,
        ordered_per_key=ordered,
    )


def unordered_type(
    key_type: str = "K",
    value_type: Any = None,
    key_predicate: Optional[Callable[[Any], bool]] = None,
) -> DataTraceType:
    """The type ``U(K, V)`` of Section 4.

    Marker tags ``#`` are linearly ordered and dependent on every key;
    key-value pairs between consecutive markers are completely unordered.
    ``key_type``/``value_type`` are descriptive: keys become tags and are
    unconstrained unless ``key_predicate`` is supplied.
    """
    return _keyed_type(False, key_predicate, value_type, f"U({key_type},{_vt_name(value_type)})")


def ordered_type(
    key_type: str = "K",
    value_type: Any = None,
    key_predicate: Optional[Callable[[Any], bool]] = None,
) -> DataTraceType:
    """The type ``O(K, V)`` of Section 4.

    Like ``U(K, V)`` but same-key items between markers are linearly
    ordered (each key tag depends on itself).
    """
    return _keyed_type(True, key_predicate, value_type, f"O({key_type},{_vt_name(value_type)})")


def _vt_name(value_type: Any) -> str:
    if value_type is None:
        return "V"
    if isinstance(value_type, str):
        return value_type
    if isinstance(value_type, type):
        return value_type.__name__
    return getattr(value_type, "__name__", "V")
