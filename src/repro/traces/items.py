"""Data items: tagged values, including synchronization markers.

An :class:`Item` is a pair ``(tag, value)`` drawn from a data type ``A``
(Section 3.1).  Items are immutable and hashable so they can live in bags
and canonical forms.  A *marker* is an item with the distinguished
:data:`~repro.traces.tags.MARKER` tag whose value is its timestamp
(Section 4: markers are periodic, linearly ordered, and timestamped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.traces.tags import MARKER, Tag


@dataclass(frozen=True)
class Item:
    """A single stream element ``(tag, value)``.

    ``value`` must be hashable (tuples rather than lists, frozen dataclass
    records rather than dicts) — canonical forms, bags, and equivalence
    checks all hash items.
    """

    tag: Tag
    value: Any

    def is_marker(self) -> bool:
        """Whether this item is a synchronization marker."""
        return self.tag == MARKER

    @property
    def timestamp(self) -> Any:
        """The timestamp of a marker item (its value)."""
        if not self.is_marker():
            raise AttributeError("only marker items carry a timestamp")
        return self.value

    def sort_key(self):
        """Arbitrary-but-fixed total order on items for normal forms.

        The order compares ``(tag sort key, repr of value)``: ``repr``
        gives a total order even across heterogeneous value types, and
        the choice of order does not affect correctness — any fixed total
        order yields a valid canonical representative.
        """
        return self.tag.sort_key() + (repr(self.value),)

    @property
    def key(self) -> Any:
        """For key-value items of the ``U``/``O`` types, the key (tag name)."""
        return self.tag.name

    def __repr__(self):
        if self.is_marker():
            return f"#{self.value}"
        return f"({self.tag},{self.value!r})"


def marker(timestamp: Any = 0) -> Item:
    """Construct a synchronization-marker item with the given timestamp."""
    return Item(MARKER, timestamp)


def is_marker(item: Item) -> bool:
    """Whether ``item`` is a synchronization marker."""
    return item.tag == MARKER


def kv_item(key: Any, value: Any) -> Item:
    """Construct a key-value item whose tag is the key.

    The Section 4 types ``U(K, V)`` and ``O(K, V)`` use the key set ``K``
    itself as the tag alphabet (plus the marker tag), so a key-value pair
    ``(k, v)`` is the item ``(Tag(k), v)``.
    """
    return Item(Tag(key), value)
