"""Canonical representatives of trace equivalence classes.

Two item sequences are ``=_D``-equivalent iff one is reachable from the
other by repeatedly commuting adjacent items with independent tags
(Section 3.1).  To decide equivalence, represent traces, and hash them, we
compute canonical representatives:

- :func:`lex_normal_form` — the lexicographically least sequence in the
  class, under the fixed total item order :meth:`Item.sort_key`.  Computed
  greedily: at each step, among the *minimal* remaining items (those with
  no dependent item before them), pick the least and remove it.  This is
  the classic lexicographic normal form of Mazurkiewicz trace theory
  (Anisimov–Knuth), which remains correct when tags may be independent of
  themselves (identical items are interchangeable, so residuals after
  removing either of two equal minimal occurrences coincide).

- :func:`foata_normal_form` — the Foata decomposition: the unique maximal
  sequence of "steps", each step a set of pairwise-independent items, each
  item placed in the earliest step consistent with its dependencies.  Used
  for visualization and as an independent oracle in tests.

Both are quadratic in the worst case, which is fine for the formal layer;
the runtime uses the specialized block representation
(:mod:`repro.traces.blocks`) for the ``U``/``O`` types instead.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.traces.items import Item
from repro.traces.trace_type import DataTraceType


def lex_normal_form(
    trace_type: DataTraceType, items: Sequence[Item]
) -> Tuple[Item, ...]:
    """Return the lexicographically least representative of ``[items]``.

    Greedy algorithm: maintain the remaining sequence; a position ``i`` is
    *available* when no earlier remaining item depends on ``items[i]``;
    among available positions pick the one with the least
    :meth:`Item.sort_key` (earliest such position) and emit it.
    """
    remaining: List[Item] = list(items)
    out: List[Item] = []
    dependent = trace_type.items_dependent
    while remaining:
        best_index = None
        best_key = None
        for i, candidate in enumerate(remaining):
            blocked = False
            for j in range(i):
                if dependent(remaining[j], candidate):
                    blocked = True
                    break
            if blocked:
                continue
            key = candidate.sort_key()
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        assert best_index is not None, "some unblocked item must exist"
        out.append(remaining.pop(best_index))
    return tuple(out)


def foata_normal_form(
    trace_type: DataTraceType, items: Sequence[Item]
) -> Tuple[Tuple[Item, ...], ...]:
    """Return the Foata decomposition of ``[items]`` as a tuple of steps.

    Each item is placed in step ``1 + max(step of earlier dependent
    items)`` (or step 0 when it depends on nothing earlier).  Within a
    step items are sorted by :meth:`Item.sort_key`, making the
    decomposition a canonical form: two sequences are trace-equivalent iff
    their decompositions are equal.
    """
    dependent = trace_type.items_dependent
    steps: List[List[Item]] = []
    placed: List[Tuple[Item, int]] = []  # (item, step index), in input order
    for item in items:
        level = -1
        for earlier, earlier_level in placed:
            if dependent(earlier, item):
                level = max(level, earlier_level)
        level += 1
        while len(steps) <= level:
            steps.append([])
        steps[level].append(item)
        placed.append((item, level))
    return tuple(tuple(sorted(step, key=Item.sort_key)) for step in steps)


def random_equivalent_shuffle(
    trace_type: DataTraceType, items: Sequence[Item], rng, swaps: int = None
) -> List[Item]:
    """Produce a random sequence trace-equivalent to ``items``.

    Performs ``swaps`` random adjacent transpositions, each applied only
    when the two items are independent.  With ``swaps = None`` the count
    defaults to ``4 * len(items)``, enough to mix short sequences well.
    Used by the consistency checker and property tests.
    """
    result = list(items)
    n = len(result)
    if n < 2:
        return result
    if swaps is None:
        swaps = 4 * n
    for _ in range(swaps):
        i = rng.randrange(n - 1)
        a, b = result[i], result[i + 1]
        if trace_type.items_independent(a, b):
            result[i], result[i + 1] = b, a
    return result
