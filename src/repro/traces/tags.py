"""Tags and data types.

A :class:`Tag` is a named label for a class of stream items.  A
:class:`DataType` ``A = (Sigma, (T_sigma)_{sigma in Sigma})`` couples a tag
alphabet ``Sigma`` with a value type ``T_sigma`` for each tag (Section 3.1).

Value types are represented by *validators*: callables ``value -> bool``.
This keeps the alphabet machinery independent of Python's nominal typing
while still letting :class:`DataType` reject ill-typed items.  A plain
Python type may be supplied wherever a validator is expected; it is
wrapped in an ``isinstance`` check.

The paper allows infinite tag alphabets (e.g., one tag per key in
key-based partitioning, Example 3.8).  We support this with *tag
families*: a :class:`DataType` may declare a default value validator that
covers every tag not explicitly listed, and an optional tag predicate
restricting which tags belong to the alphabet.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import TraceTypeError

Validator = Callable[[Any], bool]


@dataclass(frozen=True)
class Tag:
    """A tag from the alphabet ``Sigma``.

    Tags are compared and hashed by name, so two ``Tag("M")`` objects are
    interchangeable.  The name may be any hashable value: the Section 4
    key-value types use the keys themselves as tags, and keys are often
    ints or tuples rather than strings.  :meth:`sort_key` provides an
    arbitrary-but-fixed total order for canonical normal forms.
    """

    name: Any

    def sort_key(self):
        """Fixed total order on tags (by type name then repr)."""
        return (type(self.name).__name__, repr(self.name))

    def __repr__(self):
        return f"Tag({self.name!r})"

    def __str__(self):
        return str(self.name)


#: The distinguished synchronization-marker tag of Section 4.  Markers are
#: linearly ordered and carry a timestamp value.
MARKER = Tag("#")


def _as_validator(spec: Any) -> Validator:
    """Coerce ``spec`` into a validator callable.

    Accepts an existing callable, a Python type (``isinstance`` check), or
    ``None`` (accept everything).
    """
    if spec is None:
        return lambda _value: True
    if isinstance(spec, str):
        # Purely descriptive type name (e.g. "Float" in U(CID, Float)):
        # documents the stream without constraining values.
        return lambda _value: True
    if isinstance(spec, type):
        expected = spec
        if expected is float:
            # Accept ints where floats are declared; this mirrors Python's
            # numeric tower and avoids spurious failures on literal data.
            return lambda value: isinstance(value, numbers.Real) and not isinstance(
                value, bool
            )
        if expected is int:
            return lambda value: isinstance(value, numbers.Integral) and not isinstance(
                value, bool
            )
        return lambda value: isinstance(value, expected)
    if callable(spec):
        return spec
    raise TraceTypeError(f"cannot interpret {spec!r} as a value type")


def nat_validator(value: Any) -> bool:
    """Validator for the ``Nat`` value type used throughout the paper."""
    return (
        isinstance(value, numbers.Integral)
        and not isinstance(value, bool)
        and int(value) >= 0
    )


def unit_validator(value: Any) -> bool:
    """Validator for the unit type ``Ut`` (we represent the unit as None)."""
    return value is None


class DataType:
    """A data type ``A = (Sigma, (T_sigma))``: tags plus per-tag value types.

    Parameters
    ----------
    value_types:
        Mapping from :class:`Tag` (or tag name) to a value-type spec
        (type, validator callable, or ``None``).
    default_value_type:
        Validator used for tags not listed in ``value_types``.  When
        ``None`` (the default), unlisted tags are *not* part of the
        alphabet and items carrying them are rejected.
    tag_predicate:
        Optional predicate restricting which tags belong to the alphabet
        when ``default_value_type`` is given (e.g., "any tag whose name is
        a sensor id").  ``None`` means all tags are admitted.
    """

    def __init__(
        self,
        value_types: Optional[Dict[Any, Any]] = None,
        default_value_type: Any = None,
        tag_predicate: Optional[Callable[[Tag], bool]] = None,
    ):
        self._validators: Dict[Tag, Validator] = {}
        for tag, spec in (value_types or {}).items():
            if not isinstance(tag, Tag):
                tag = Tag(str(tag))
            self._validators[tag] = _as_validator(spec)
        self._has_default = default_value_type is not None or (
            value_types is None and default_value_type is None and tag_predicate
        )
        self._default_validator = (
            _as_validator(default_value_type) if default_value_type is not None else None
        )
        self._tag_predicate = tag_predicate

    @property
    def explicit_tags(self):
        """The explicitly listed tags (a finite subset of the alphabet)."""
        return frozenset(self._validators)

    def is_finite(self) -> bool:
        """Whether the tag alphabet is the finite explicit set."""
        return self._default_validator is None

    def contains_tag(self, tag: Tag) -> bool:
        """Whether ``tag`` belongs to the alphabet ``Sigma``."""
        if tag in self._validators:
            return True
        if self._default_validator is None:
            return False
        if self._tag_predicate is not None:
            return bool(self._tag_predicate(tag))
        return True

    def validator_for(self, tag: Tag) -> Validator:
        """The value validator ``T_sigma`` for ``tag``.

        Raises :class:`TraceTypeError` if the tag is outside the alphabet.
        """
        if tag in self._validators:
            return self._validators[tag]
        if self.contains_tag(tag):
            assert self._default_validator is not None
            return self._default_validator
        raise TraceTypeError(f"tag {tag} is not in the alphabet of {self!r}")

    def check_item(self, tag: Tag, value: Any) -> None:
        """Raise :class:`TraceTypeError` unless ``(tag, value)`` is in ``A``."""
        validator = self.validator_for(tag)
        if not validator(value):
            raise TraceTypeError(
                f"value {value!r} is not a valid {tag} item for this data type"
            )

    def __repr__(self):
        tags = ", ".join(sorted(t.name for t in self._validators))
        default = ", +default" if self._default_validator is not None else ""
        return f"DataType({{{tags}}}{default})"
