"""Data traces: equivalence classes of item sequences under ``=_D``.

A :class:`DataTrace` is the congruence class ``[u]`` of a sequence ``u``
with respect to the dependence relation of its type (Section 3.1).  The
class is represented by its lexicographic normal form, which makes
equality, hashing, and set membership cheap after construction.

Supported structure, following the paper:

- concatenation ``[u] . [v] = [uv]`` (well-defined because ``=_D`` is a
  congruence);
- the *prefix order* ``u <= v`` iff some representative of ``u`` is a
  sequence prefix of some representative of ``v`` — equivalently, iff
  ``v = u . w`` for some trace ``w``;
- the *residual* ``v / u`` — the unique ``w`` with ``u . w = v`` when
  ``u <= v``;
- projections (per tag, markers stripped, ...) used by tests and
  examples.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import TraceTypeError
from repro.traces.items import Item
from repro.traces.normal_form import foata_normal_form, lex_normal_form
from repro.traces.trace_type import DataTraceType


class DataTrace:
    """A data trace of a given :class:`DataTraceType`.

    Construct from any representative sequence; the instance stores the
    canonical (lexicographic) normal form.  Two traces compare equal iff
    they are ``=_D``-equivalent and have the same type name.
    """

    __slots__ = ("trace_type", "_canonical")

    def __init__(
        self,
        trace_type: DataTraceType,
        items: Iterable[Item] = (),
        _canonical: Optional[Tuple[Item, ...]] = None,
    ):
        self.trace_type = trace_type
        if _canonical is not None:
            self._canonical = _canonical
        else:
            seq = tuple(items)
            trace_type.check_sequence(seq)
            self._canonical = lex_normal_form(trace_type, seq)

    # ------------------------------------------------------------------
    # Basic structure.
    # ------------------------------------------------------------------

    @property
    def canonical(self) -> Tuple[Item, ...]:
        """The lexicographic normal form representing this class."""
        return self._canonical

    def __len__(self):
        return len(self._canonical)

    def __iter__(self):
        return iter(self._canonical)

    def __bool__(self):
        return bool(self._canonical)

    def __eq__(self, other):
        if not isinstance(other, DataTrace):
            return NotImplemented
        return (
            self.trace_type.name == other.trace_type.name
            and self._canonical == other._canonical
        )

    def __hash__(self):
        return hash((self.trace_type.name, self._canonical))

    def __repr__(self):
        body = " ".join(repr(item) for item in self._canonical)
        return f"<{self.trace_type.name}: {body}>"

    # ------------------------------------------------------------------
    # Monoid structure and prefix order.
    # ------------------------------------------------------------------

    def concat(self, other: "DataTrace") -> "DataTrace":
        """Trace concatenation ``[u] . [v] = [uv]``."""
        self._require_same_type(other)
        return DataTrace(
            self.trace_type, tuple(self._canonical) + tuple(other._canonical)
        )

    def __add__(self, other: "DataTrace") -> "DataTrace":
        return self.concat(other)

    def append(self, item: Item) -> "DataTrace":
        """The trace ``[u . a]`` — consuming one more stream item."""
        self.trace_type.check_item(item)
        return DataTrace(self.trace_type, tuple(self._canonical) + (item,))

    def is_prefix_of(self, other: "DataTrace") -> bool:
        """The prefix partial order on traces: ``self <= other``."""
        return self.residual_in(other) is not None

    def __le__(self, other: "DataTrace") -> bool:
        return self.is_prefix_of(other)

    def residual_in(self, other: "DataTrace") -> Optional["DataTrace"]:
        """Return ``w`` with ``self . w == other``, or ``None``.

        Greedy residuation: consume the canonical form of ``self`` item by
        item from a working copy of ``other``; each item must occur at a
        *minimal* position (no dependent item before it).  For trace
        monoids this greedy strategy is complete: if the first item of
        ``u`` is not minimal in ``v`` then ``u`` cannot left-divide ``v``,
        and any two minimal occurrences of equal items yield the same
        residual class.
        """
        self._require_same_type(other)
        remaining: List[Item] = list(other._canonical)
        dependent = self.trace_type.items_dependent
        for needed in self._canonical:
            found = None
            for i, candidate in enumerate(remaining):
                if candidate == needed:
                    blocked = any(
                        dependent(remaining[j], candidate) for j in range(i)
                    )
                    if not blocked:
                        found = i
                        break
                if dependent(candidate, needed):
                    # A dependent item precedes every later occurrence of
                    # `needed`, so no minimal occurrence can follow.
                    break
            if found is None:
                return None
            remaining.pop(found)
        return DataTrace(self.trace_type, remaining)

    # ------------------------------------------------------------------
    # Views and projections.
    # ------------------------------------------------------------------

    def foata(self) -> Tuple[Tuple[Item, ...], ...]:
        """The Foata (step) decomposition of this trace."""
        return foata_normal_form(self.trace_type, self._canonical)

    def project_tag(self, tag) -> Tuple[Item, ...]:
        """The subsequence of items with the given tag, in canonical order.

        When the tag is self-dependent this is the well-defined linear
        order of that tag's items; for self-independent tags the result is
        one arbitrary-but-canonical arrangement of the bag.
        """
        return tuple(item for item in self._canonical if item.tag == tag)

    def data_items(self) -> Tuple[Item, ...]:
        """All non-marker items, in canonical order."""
        return tuple(item for item in self._canonical if not item.is_marker())

    def markers(self) -> Tuple[Item, ...]:
        """All marker items, in canonical order."""
        return tuple(item for item in self._canonical if item.is_marker())

    def equivalent_to_sequence(self, items: Sequence[Item]) -> bool:
        """Whether ``items`` is a representative of this class."""
        return lex_normal_form(self.trace_type, tuple(items)) == self._canonical

    # ------------------------------------------------------------------

    def _require_same_type(self, other: "DataTrace") -> None:
        if self.trace_type.name != other.trace_type.name:
            raise TraceTypeError(
                f"trace type mismatch: {self.trace_type.name} vs "
                f"{other.trace_type.name}"
            )


def empty_trace(trace_type: DataTraceType) -> DataTrace:
    """The empty trace (identity for concatenation) of the given type."""
    return DataTrace(trace_type, ())
