"""Dependence relations over tag alphabets.

A dependence relation ``D`` is a *symmetric* binary relation on tags
(Section 3.1).  Two tags are *independent* when the pair is absent from
``D``; adjacent items with independent tags commute, which generates the
trace equivalence ``=_D``.

Because tag alphabets may be infinite (key-indexed tags), a
:class:`DependenceRelation` is represented semi-intensionally: a finite
set of explicit pairs plus optional rules (`same_tag_dependent`,
`marker_dependent_on_all`) that cover infinitely many tags at once.  The
common constructors cover every relation used in the paper:

- :meth:`DependenceRelation.full` — all tags mutually dependent
  (sequences).
- :meth:`DependenceRelation.empty` — all tags independent (bags).
- :meth:`DependenceRelation.keyed` — each tag dependent only on itself
  (independent per-key channels, Examples 3.3 and 3.8).
- :meth:`DependenceRelation.with_marker` — the Section 4 shapes: markers
  linearly ordered and dependent on every data tag, data tags unordered
  (``U``) or per-tag ordered (``O``).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Optional, Tuple

from repro.errors import DependenceError
from repro.traces.tags import MARKER, Tag


class DependenceRelation:
    """A symmetric relation on tags, possibly over an infinite alphabet.

    Instances are immutable.  Membership is decided by, in order:
    an explicit pair set, the ``same_tag_dependent`` rule, the
    ``marker_rule`` (marker dependent on everything incl. itself), and an
    optional custom predicate.  A tag pair is *dependent* if any source
    says so; otherwise independent.
    """

    def __init__(
        self,
        pairs: Iterable[Tuple[Tag, Tag]] = (),
        same_tag_dependent: bool = False,
        marker_rule: bool = False,
        predicate: Optional[Callable[[Tag, Tag], bool]] = None,
        description: str = "",
    ):
        explicit = set()
        for a, b in pairs:
            explicit.add((a, b))
            explicit.add((b, a))
        self._pairs: FrozenSet[Tuple[Tag, Tag]] = frozenset(explicit)
        self._same_tag_dependent = same_tag_dependent
        self._marker_rule = marker_rule
        self._predicate = predicate
        self._description = description

    # ------------------------------------------------------------------
    # Constructors for the relations used in the paper.
    # ------------------------------------------------------------------

    @classmethod
    def full(cls, tags: Optional[Iterable[Tag]] = None) -> "DependenceRelation":
        """All tags mutually dependent: traces degenerate to sequences.

        With an explicit finite ``tags`` set the relation is the full
        square on those tags; without it, the relation declares *every*
        pair dependent (suitable for any alphabet).
        """
        if tags is None:
            return cls(predicate=lambda a, b: True, description="full")
        tag_list = list(tags)
        return cls(
            pairs=[(a, b) for a in tag_list for b in tag_list],
            description="full",
        )

    @classmethod
    def empty(cls) -> "DependenceRelation":
        """All tags mutually independent: traces degenerate to bags."""
        return cls(description="empty")

    @classmethod
    def keyed(cls) -> "DependenceRelation":
        """Each tag dependent only on itself: independent linear channels.

        This is the relation of Example 3.3 (Kahn-network channels) and of
        the output type of key-based partitioning (Example 3.8).
        """
        return cls(same_tag_dependent=True, description="keyed")

    @classmethod
    def with_marker(cls, data_tags_self_dependent: bool) -> "DependenceRelation":
        """The Section 4 relations underlying ``U(K, V)`` and ``O(K, V)``.

        Markers are dependent on themselves and on every data tag; data
        tags are mutually independent.  When ``data_tags_self_dependent``
        each data tag additionally depends on itself (the ``O`` shape,
        per-key order); otherwise data items between markers are fully
        unordered (the ``U`` shape).
        """

        def predicate(a: Tag, b: Tag) -> bool:
            if a == MARKER or b == MARKER:
                return True
            if data_tags_self_dependent and a == b:
                return True
            return False

        kind = "O" if data_tags_self_dependent else "U"
        return cls(predicate=predicate, description=f"marker-{kind}")

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def dependent(self, a: Tag, b: Tag) -> bool:
        """Whether tags ``a`` and ``b`` are dependent."""
        if (a, b) in self._pairs:
            return True
        if self._same_tag_dependent and a == b:
            return True
        if self._marker_rule and (a == MARKER or b == MARKER):
            return True
        if self._predicate is not None and (
            self._predicate(a, b) or self._predicate(b, a)
        ):
            return True
        return False

    def independent(self, a: Tag, b: Tag) -> bool:
        """Whether tags ``a`` and ``b`` are independent (not dependent)."""
        return not self.dependent(a, b)

    def restricted_to(self, tags: Iterable[Tag]) -> FrozenSet[Tuple[Tag, Tag]]:
        """The explicit pair set of the relation restricted to finite ``tags``.

        Useful for verifying symmetry and for visualization.
        """
        tag_list = list(tags)
        return frozenset(
            (a, b) for a in tag_list for b in tag_list if self.dependent(a, b)
        )

    def check_symmetric(self, tags: Iterable[Tag]) -> None:
        """Verify symmetry on a finite tag set; raise on violation.

        Symmetry is structural for the built-in constructors, but a custom
        ``predicate`` could break it; this check guards that case.
        """
        tag_list = list(tags)
        for a in tag_list:
            for b in tag_list:
                if self.dependent(a, b) != self.dependent(b, a):
                    raise DependenceError(
                        f"dependence relation is not symmetric on ({a}, {b})"
                    )

    def union(self, other: "DependenceRelation") -> "DependenceRelation":
        """The relation declaring a pair dependent if either operand does."""
        return DependenceRelation(
            pairs=self._pairs | other._pairs,
            same_tag_dependent=self._same_tag_dependent or other._same_tag_dependent,
            marker_rule=self._marker_rule or other._marker_rule,
            predicate=_or_predicates(self._predicate, other._predicate),
            description=f"({self._description})|({other._description})",
        )

    def __repr__(self):
        return f"DependenceRelation({self._description or 'custom'})"


def _or_predicates(p, q):
    if p is None:
        return q
    if q is None:
        return p
    return lambda a, b: p(a, b) or q(a, b)
