"""Pomset (partially ordered multiset) view of data traces.

A data trace induces a labelled partial order on its item occurrences:
occurrence ``i`` precedes occurrence ``j`` iff there is a chain of
pairwise-dependent occurrences from ``i`` to ``j`` in (any) representative
sequence (Section 3.1; the visualization of Example 3.2 draws exactly the
Hasse diagram of this order).

:class:`Pomset` builds that order from a representative sequence and
offers the queries the tests and examples need: the full causality
relation, the Hasse covering relation, antichains/width, linearization
checking and enumeration, and an ASCII rendering in the style of the
paper's Example 3.2 figure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.traces.items import Item
from repro.traces.trace_type import DataTraceType


class Pomset:
    """The labelled partial order induced by a trace representative.

    Nodes are occurrence indexes ``0 .. n-1`` into the originating
    sequence; :attr:`labels` maps each node to its :class:`Item`.  The
    partial order is the transitive closure of "earlier and dependent".
    """

    def __init__(self, trace_type: DataTraceType, items: Sequence[Item]):
        self.trace_type = trace_type
        self.labels: Tuple[Item, ...] = tuple(items)
        n = len(self.labels)
        # strictly_below[j] = set of nodes i with i < j in the partial order.
        below: List[Set[int]] = [set() for _ in range(n)]
        for j in range(n):
            for i in range(j):
                if trace_type.items_dependent(self.labels[i], self.labels[j]):
                    below[j].add(i)
                    below[j] |= below[i]
        self._below: Tuple[FrozenSet[int], ...] = tuple(frozenset(s) for s in below)

    @property
    def size(self) -> int:
        return len(self.labels)

    def precedes(self, i: int, j: int) -> bool:
        """Whether occurrence ``i`` strictly precedes ``j`` in the order."""
        return i in self._below[j]

    def concurrent(self, i: int, j: int) -> bool:
        """Whether occurrences ``i`` and ``j`` are incomparable."""
        return i != j and not self.precedes(i, j) and not self.precedes(j, i)

    def covers(self) -> Set[Tuple[int, int]]:
        """The Hasse covering relation: pairs ``(i, j)`` with ``i`` an
        immediate predecessor of ``j`` (no node strictly between)."""
        result = set()
        for j in range(self.size):
            for i in self._below[j]:
                if not any(
                    self.precedes(i, k) and self.precedes(k, j)
                    for k in self._below[j]
                ):
                    result.add((i, j))
        return result

    def minimal_nodes(self) -> List[int]:
        """Nodes with no predecessor."""
        return [j for j in range(self.size) if not self._below[j]]

    def width(self) -> int:
        """The size of a largest antichain (Mirsky-style via brute force
        on small pomsets; intended for tests and visualization)."""
        best = 0
        nodes = list(range(self.size))

        def extend(antichain: List[int], start: int) -> None:
            nonlocal best
            best = max(best, len(antichain))
            for node in nodes[start:]:
                if all(self.concurrent(node, other) for other in antichain):
                    antichain.append(node)
                    extend(antichain, node + 1)
                    antichain.pop()

        extend([], 0)
        return best

    # ------------------------------------------------------------------
    # Linearizations.
    # ------------------------------------------------------------------

    def is_linearization(self, items: Sequence[Item]) -> bool:
        """Whether ``items`` is a representative of the same trace."""
        from repro.traces.normal_form import lex_normal_form

        return lex_normal_form(self.trace_type, tuple(items)) == lex_normal_form(
            self.trace_type, self.labels
        )

    def linearizations(self) -> Iterator[Tuple[Item, ...]]:
        """Enumerate all *distinct* representative sequences of the trace.

        Exponential in general; intended for small traces in tests (it is
        used as an oracle against :func:`random_equivalent_shuffle` and
        the normal forms).
        """
        n = self.size
        consumed = [False] * n

        def available() -> List[int]:
            return [
                j
                for j in range(n)
                if not consumed[j]
                and all(consumed[i] for i in self._below[j])
            ]

        def walk(prefix: List[int]) -> Iterator[Tuple[Item, ...]]:
            if len(prefix) == n:
                yield tuple(self.labels[i] for i in prefix)
                return
            seen_labels = set()
            for j in available():
                label = self.labels[j]
                if label in seen_labels:
                    continue  # equal items give identical continuations
                seen_labels.add(label)
                consumed[j] = True
                prefix.append(j)
                yield from walk(prefix)
                prefix.pop()
                consumed[j] = False

        yield from walk([])

    def count_linearizations(self) -> int:
        """The number of distinct representative sequences."""
        return sum(1 for _ in self.linearizations())

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------

    def render(self) -> str:
        """ASCII Hasse diagram, one line per cover level (Foata steps).

        Mirrors the Example 3.2 visualization: items grouped into steps,
        arrows implied between consecutive dependent steps.
        """
        from repro.traces.normal_form import foata_normal_form

        steps = foata_normal_form(self.trace_type, self.labels)
        columns = [" ".join(repr(item) for item in step) for step in steps]
        return "  ->  ".join(f"[{column}]" for column in columns)
