"""Tags, data types, and value validators (Section 3.1 definitions)."""

import pytest

from repro.errors import TraceTypeError
from repro.traces.tags import (
    DataType,
    MARKER,
    Tag,
    nat_validator,
    unit_validator,
)


class TestTag:
    def test_equality_by_name(self):
        assert Tag("M") == Tag("M")
        assert Tag("M") != Tag("N")

    def test_hashable(self):
        assert len({Tag("M"), Tag("M"), Tag("N")}) == 2

    def test_non_string_names(self):
        assert Tag(42) == Tag(42)
        assert Tag((1, 2)) != Tag((1, 3))

    def test_sort_key_total_order_across_types(self):
        tags = [Tag(3), Tag("a"), Tag((1, 2)), Tag(1)]
        ordered = sorted(tags, key=Tag.sort_key)
        assert len(ordered) == 4  # no comparison errors

    def test_marker_tag_is_hash(self):
        assert MARKER.name == "#"


class TestValidators:
    def test_nat_accepts_nonnegative_ints(self):
        assert nat_validator(0)
        assert nat_validator(17)

    def test_nat_rejects_negative_float_bool(self):
        assert not nat_validator(-1)
        assert not nat_validator(2.5)
        assert not nat_validator(True)

    def test_unit_accepts_only_none(self):
        assert unit_validator(None)
        assert not unit_validator(0)


class TestDataType:
    def test_explicit_tags(self):
        dt = DataType({Tag("M"): int, Tag("N"): str})
        assert dt.contains_tag(Tag("M"))
        assert not dt.contains_tag(Tag("X"))
        assert dt.is_finite()

    def test_check_item_accepts_valid(self):
        dt = DataType({Tag("M"): nat_validator})
        dt.check_item(Tag("M"), 5)

    def test_check_item_rejects_bad_value(self):
        dt = DataType({Tag("M"): nat_validator})
        with pytest.raises(TraceTypeError):
            dt.check_item(Tag("M"), -1)

    def test_check_item_rejects_unknown_tag(self):
        dt = DataType({Tag("M"): nat_validator})
        with pytest.raises(TraceTypeError):
            dt.check_item(Tag("X"), 5)

    def test_default_value_type_makes_alphabet_infinite(self):
        dt = DataType({MARKER: nat_validator}, default_value_type=int)
        assert not dt.is_finite()
        assert dt.contains_tag(Tag("any-key"))
        dt.check_item(Tag(12345), 7)

    def test_tag_predicate_restricts_alphabet(self):
        dt = DataType(
            {MARKER: nat_validator},
            default_value_type=int,
            tag_predicate=lambda tag: tag == MARKER or isinstance(tag.name, int),
        )
        assert dt.contains_tag(Tag(3))
        assert not dt.contains_tag(Tag("string-key"))
        with pytest.raises(TraceTypeError):
            dt.check_item(Tag("string-key"), 1)

    def test_float_validator_accepts_ints(self):
        dt = DataType({Tag("M"): float})
        dt.check_item(Tag("M"), 3)
        dt.check_item(Tag("M"), 3.5)
        with pytest.raises(TraceTypeError):
            dt.check_item(Tag("M"), "nope")

    def test_int_validator_rejects_bool(self):
        dt = DataType({Tag("M"): int})
        with pytest.raises(TraceTypeError):
            dt.check_item(Tag("M"), True)

    def test_string_spec_is_descriptive_only(self):
        dt = DataType({Tag("M"): "Float"})
        dt.check_item(Tag("M"), object())  # anything goes

    def test_bad_spec_rejected(self):
        with pytest.raises(TraceTypeError):
            DataType({Tag("M"): 42})
