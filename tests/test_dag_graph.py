"""TransductionDAG construction and structural validation."""

import pytest

from repro.errors import DagError
from repro.dag.graph import TransductionDAG, VertexKind
from repro.dag.viz import render_dag
from repro.operators.identity import IdentityOp
from repro.operators.merge import Merge
from repro.operators.split import HashSplit
from repro.traces.trace_type import unordered_type

U = unordered_type()


def linear_dag():
    dag = TransductionDAG("linear")
    src = dag.add_source("src", output_type=U)
    op = dag.add_op(IdentityOp(), parallelism=2, upstream=[src], edge_types=[U])
    dag.add_sink("out", upstream=op, input_type=U)
    return dag, src, op


class TestBuilder:
    def test_linear_valid(self):
        dag, _, _ = linear_dag()
        dag.validate()

    def test_vertex_kinds(self):
        dag, src, op = linear_dag()
        assert src.kind == VertexKind.SOURCE
        assert op.kind == VertexKind.OP
        assert [s.name for s in dag.sinks()] == ["out"]
        assert len(dag.processing_vertices()) == 1

    def test_edges_typed(self):
        dag, src, op = linear_dag()
        (edge,) = dag.out_edges(src)
        assert edge.trace_type == U

    def test_parallelism_hint_recorded(self):
        _, _, op = linear_dag()
        assert op.parallelism == 2

    def test_multi_input_op(self):
        dag = TransductionDAG()
        a = dag.add_source("a", output_type=U)
        b = dag.add_source("b", output_type=U)
        op = dag.add_op(IdentityOp(), upstream=[a, b], edge_types=[U, U])
        dag.add_sink("out", upstream=op)
        dag.validate()
        assert len(dag.in_edges(op)) == 2

    def test_connect_rejects_foreign_vertices(self):
        dag1, src1, _ = linear_dag()
        dag2 = TransductionDAG()
        with pytest.raises(DagError):
            dag2.connect(src1, src1)


class TestValidation:
    def test_source_needs_exactly_one_out(self):
        dag = TransductionDAG()
        dag.add_source("src", output_type=U)
        with pytest.raises(DagError):
            dag.validate()

    def test_sink_needs_exactly_one_in(self):
        dag, src, op = linear_dag()
        extra = dag.add_sink("extra")
        with pytest.raises(DagError):
            dag.validate()

    def test_op_needs_input_and_consumer(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        dag.add_op(IdentityOp(), upstream=[src])
        with pytest.raises(DagError):
            dag.validate()  # op has no consumer

    def test_splitter_arity_checked(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        split = dag.add_split(HashSplit(2), upstream=src)
        a = dag.add_op(IdentityOp(), upstream=[split])
        dag.add_sink("out", upstream=a)
        with pytest.raises(DagError):
            dag.validate()  # splitter declares 2 outputs, has 1

    def test_merge_arity_checked(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        merge = dag.add_merge(Merge(2), upstream=[src])
        dag.add_sink("out", upstream=merge)
        with pytest.raises(DagError):
            dag.validate()

    def test_cycle_detected(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        a = dag.add_op(IdentityOp(), upstream=[src])
        b = dag.add_op(IdentityOp(), upstream=[a])
        dag.connect(b, a)  # cycle
        dag.add_sink("out", upstream=b)
        with pytest.raises(DagError):
            dag.validate()

    def test_topological_order(self):
        dag, src, op = linear_dag()
        order = [v.name for v in dag.topological_order()]
        assert order.index("src") < order.index("ID") < order.index("out")


class TestViz:
    def test_render_mentions_edges_and_types(self):
        dag, _, _ = linear_dag()
        rendered = render_dag(dag)
        assert "src" in rendered
        assert "U(K,V)" in rendered
        assert "ID[x2]" in rendered
