"""Checkpoint/restore on the in-process backend + reliability plumbing.

``InProcessPipeline.snapshot``/``restore`` checkpoint every vertex state
at epoch boundaries; ``run_with_recovery`` drives the crash-and-rollback
loop over them and must reproduce the plain run's outputs exactly —
serial and epoch-batched alike.  The ``Resequencer`` and
``apply_edge_faults``/``recover_stream`` unit properties underpin the
simulator's exactly-once links, so they are pinned here too.
"""

from __future__ import annotations

import random

import pytest

from repro.compiler.inprocess import compile_inprocess
from repro.dag import TransductionDAG
from repro.operators.base import KV, Marker
from repro.operators.library import map_values, sliding_count, tumbling_count
from repro.storm.faults import EdgeFaults, Resequencer, apply_edge_faults, recover_stream
from repro.storm.local import events_to_trace
from repro.storm.recovery import (
    CheckpointStore,
    RecoveryOptions,
    run_with_recovery,
    split_epochs,
)
from repro.traces.trace_type import unordered_type

U = unordered_type()


def build_dag():
    dag = TransductionDAG("inproc-recovery")
    src = dag.add_source("SRC", output_type=U)
    mapped = dag.add_op(map_values(lambda v: v + 1, name="MAP"),
                        upstream=[src], edge_types=[U])
    counted = dag.add_op(tumbling_count("CNT"), upstream=[mapped],
                         edge_types=[U])
    dag.add_sink("OUT", upstream=counted, input_type=U)
    return dag


def stream(seed=0, epochs=6, per_epoch=15):
    rng = random.Random(seed)
    events = []
    for epoch in range(1, epochs + 1):
        for _ in range(per_epoch):
            events.append(KV(rng.choice("abcde"), rng.randrange(10)))
        events.append(Marker(epoch))
    return events


@pytest.fixture(scope="module")
def events():
    return stream()


@pytest.fixture(scope="module")
def baseline(events):
    outputs = compile_inprocess(build_dag()).run({"SRC": events})
    return events_to_trace(outputs["OUT"], False)


class TestRunWithRecovery:
    @pytest.mark.parametrize("batched", [False, True])
    @pytest.mark.parametrize("seed", range(5))
    def test_crash_recovery_parity(self, events, baseline, batched, seed):
        recovered = run_with_recovery(
            build_dag(), {"SRC": events}, batched=batched,
            crash_epochs=(2, 4), seed=seed,
        )
        assert events_to_trace(recovered.outputs["OUT"], False) == baseline
        assert recovered.stats.recoveries == 2
        assert recovered.stats.replayed_events > 0

    def test_sparse_checkpoints(self, events, baseline):
        recovered = run_with_recovery(
            build_dag(), {"SRC": events}, checkpoint_every=3,
            crash_epochs=(4,),
        )
        assert events_to_trace(recovered.outputs["OUT"], False) == baseline
        assert recovered.stats.recoveries == 1

    def test_edge_fault_ingestion(self, events, baseline):
        """Source streams pushed through a faulty link and the
        resequencer before ingestion still yield the exact outputs."""
        recovered = run_with_recovery(
            build_dag(), {"SRC": events}, batched=True, crash_epochs=(1,),
            edge_faults=EdgeFaults(drop=0.1, duplicate=0.1, reorder=0.2),
            seed=9,
        )
        assert events_to_trace(recovered.outputs["OUT"], False) == baseline
        assert recovered.stats.duplicates_filtered >= 1


class TestPipelineSnapshot:
    def test_mid_stream_snapshot_restore_identity(self, events, baseline):
        """Snapshot at an epoch boundary, keep running, roll back, rerun
        the tail: outputs must be identical both times."""
        pipeline = compile_inprocess(build_dag())
        epochs = split_epochs(events)
        for block in epochs[:3]:
            pipeline.push_batch("SRC", block)
        checkpoint = pipeline.snapshot()
        for block in epochs[3:]:
            pipeline.push_batch("SRC", block)
        first_tail = pipeline.outputs("OUT")

        pipeline.restore(checkpoint)
        for block in epochs[3:]:
            pipeline.push_batch("SRC", block)
        assert pipeline.outputs("OUT") == first_tail
        assert events_to_trace(first_tail, False) == baseline

    def test_restore_truncates_sink_outputs(self, events):
        pipeline = compile_inprocess(build_dag())
        epochs = split_epochs(events)
        for block in epochs[:2]:
            pipeline.push_batch("SRC", block)
        checkpoint = pipeline.snapshot()
        length = len(pipeline.outputs("OUT"))
        for block in epochs[2:]:
            pipeline.push_batch("SRC", block)
        assert len(pipeline.outputs("OUT")) > length
        pipeline.restore(checkpoint)
        assert len(pipeline.outputs("OUT")) == length

    def test_stateful_window_survives_rollback(self):
        """A sliding window spanning the checkpoint boundary keeps its
        cross-epoch state through restore."""
        dag = TransductionDAG("window")
        src = dag.add_source("SRC", output_type=U)
        windowed = dag.add_op(sliding_count(3, "WIN"), upstream=[src],
                              edge_types=[U])
        dag.add_sink("OUT", upstream=windowed, input_type=U)
        events = stream(seed=2)
        plain = compile_inprocess(dag).run({"SRC": events})

        def rebuild():
            dag2 = TransductionDAG("window")
            src2 = dag2.add_source("SRC", output_type=U)
            win2 = dag2.add_op(sliding_count(3, "WIN"), upstream=[src2],
                               edge_types=[U])
            dag2.add_sink("OUT", upstream=win2, input_type=U)
            return dag2

        recovered = run_with_recovery(rebuild(), {"SRC": events},
                                      crash_epochs=(3,))
        assert recovered.outputs["OUT"] == plain["OUT"]


class TestCheckpointStore:
    def test_completes_when_all_tasks_report(self):
        store = CheckpointStore(2)
        assert store.add(1, "a", {"x": 1}) is False
        assert store.latest() is None
        assert store.add(1, "b", {"y": 2}) is True
        ts, snaps = store.latest()
        assert ts == 1 and set(snaps) == {"a", "b"}

    def test_prunes_older_epochs(self):
        store = CheckpointStore(1)
        store.add(1, "a", "s1")
        store.add(2, "a", "s2")
        ts, snaps = store.latest()
        assert ts == 2 and snaps["a"] == "s2"

    def test_drop_after_discards_partial_future(self):
        store = CheckpointStore(2, index_of={1: 0, 2: 1}.__getitem__)
        store.add(1, "a", "s1a")
        store.add(1, "b", "s1b")
        store.add(2, "a", "s2a")  # partial
        store.drop_after(1)
        ts, _ = store.latest()
        assert ts == 1


class TestResequencer:
    def test_in_order_passthrough(self):
        reseq = Resequencer()
        assert reseq.offer(0, "a") == ["a"]
        assert reseq.offer(1, "b") == ["b"]
        assert reseq.duplicates == 0

    def test_buffers_gaps_and_releases_runs(self):
        reseq = Resequencer()
        assert reseq.offer(2, "c") == []
        assert reseq.offer(1, "b") == []
        assert reseq.offer(0, "a") == ["a", "b", "c"]
        assert reseq.pending() == 0

    def test_filters_duplicates(self):
        reseq = Resequencer()
        reseq.offer(0, "a")
        assert reseq.offer(0, "a") == []
        assert reseq.offer(2, "c") == []
        assert reseq.offer(2, "c") == []  # buffered duplicate
        assert reseq.duplicates == 2
        assert reseq.offer(1, "b") == ["b", "c"]

    @pytest.mark.parametrize("seed", range(8))
    def test_random_permutation_with_duplicates_restores_order(self, seed):
        rng = random.Random(seed)
        n = 40
        transmissions = list(range(n)) + [rng.randrange(n) for _ in range(10)]
        rng.shuffle(transmissions)
        reseq = Resequencer()
        released = []
        for seq in transmissions:
            released.extend(reseq.offer(seq, seq))
        assert released == list(range(n))
        assert reseq.duplicates == 10


class TestEdgeFaultStream:
    @pytest.mark.parametrize("seed", range(8))
    def test_recover_stream_is_exact_inverse(self, seed):
        rng = random.Random(seed)
        events = stream(seed=seed, epochs=3)
        faults = EdgeFaults(drop=0.1, duplicate=0.15, reorder=0.25)
        transmissions = apply_edge_faults(events, faults,
                                          random.Random(seed))
        recovered, duplicates = recover_stream(transmissions)
        assert recovered == events
        assert duplicates == len(transmissions) - len(events)

    def test_split_epochs_keeps_trailing_partial(self):
        events = [KV("a", 1), Marker(1), KV("b", 2)]
        blocks = split_epochs(events)
        assert blocks == [[KV("a", 1), Marker(1)], [KV("b", 2)]]
