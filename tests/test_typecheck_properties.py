"""Type-checker soundness as a property: pipelines that omit the SORT
repair in front of an order-sensitive stage are always rejected, and the
accepted fragment is closed under the Theorem 4.3 rewrites."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceTypeError
from repro.dag import TransductionDAG, deploy, typecheck_dag
from repro.operators.base import KV
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.library import map_values, tumbling_count
from repro.operators.sort import SortOp
from repro.traces.trace_type import unordered_type

U = unordered_type()


class Ordered(OpKeyedOrdered):
    def init(self):
        return 0

    def on_item(self, state, key, value, emit):
        emit(key, state)
        return state + 1


def build(prefix_stages, with_sort):
    """U source -> [prefix stages] -> (SORT?) -> ordered op -> sink."""
    dag = TransductionDAG("prop")
    upstream = dag.add_source("src", output_type=U)
    for i, stage in enumerate(prefix_stages):
        upstream = dag.add_op(stage, upstream=[upstream], edge_types=[None],
                              name=f"s{i}")
    if with_sort:
        upstream = dag.add_op(SortOp(), upstream=[upstream], edge_types=[None])
    dag.add_op(Ordered(), upstream=[upstream], edge_types=[None], name="ord")
    ordered = [v for v in dag.vertices.values() if v.name == "ord"][0]
    dag.add_sink("out", upstream=ordered)
    return dag


@st.composite
def unordered_prefixes(draw):
    """Random prefixes of stages with U (or identity-inferred) outputs."""
    factories = [
        lambda: map_values(lambda v: v),
        lambda: tumbling_count(),
    ]
    n = draw(st.integers(0, 3))
    return [factories[draw(st.integers(0, 1))]() for _ in range(n)]


class TestSoundness:
    @given(unordered_prefixes())
    @settings(max_examples=25)
    def test_missing_sort_always_rejected(self, prefix):
        dag = build(prefix, with_sort=False)
        with pytest.raises(TraceTypeError):
            typecheck_dag(dag)

    @given(unordered_prefixes())
    @settings(max_examples=25)
    def test_sort_repair_always_accepted(self, prefix):
        dag = build(prefix, with_sort=True)
        typecheck_dag(dag)

    @given(unordered_prefixes(), st.integers(2, 3))
    @settings(max_examples=15, deadline=None)
    def test_accepted_fragment_closed_under_deployment(self, prefix, n):
        """Theorem 4.3 rewrites of a well-typed DAG stay well-typed."""
        dag = build(prefix, with_sort=True)
        typecheck_dag(dag)
        for vertex in list(dag.vertices.values()):
            vertex.parallelism = n
        deployed = deploy(dag)
        typecheck_dag(deployed)

    def test_sort_after_ordered_op_accepted(self):
        """Re-sorting an already ordered stream is harmless and typed."""
        dag = TransductionDAG("resort")
        src = dag.add_source("src", output_type=U)
        sort1 = dag.add_op(SortOp(), upstream=[src], edge_types=[None])
        ordered = dag.add_op(Ordered(), upstream=[sort1], edge_types=[None])
        sort2 = dag.add_op(SortOp(), upstream=[ordered], edge_types=[None])
        dag.add_sink("out", upstream=sort2)
        typecheck_dag(dag)
