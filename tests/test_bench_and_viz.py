"""The experiment harness (cost models, sweeps, reporting) and the
visualization/CLI utilities."""

import pytest

from repro.bench.harness import (
    DEFAULT_VERTEX_COST,
    GENERATED_GLUE_COST,
    HANDCRAFTED_GLUE_COST,
    FusedCostModel,
    MarkerTriggerCost,
    ScalingPoint,
    fused_cost_model,
    measure_throughput,
    sweep_machines,
)
from repro.bench.reporting import (
    format_comparison_table,
    format_scaling_table,
    ratios,
    scaling_factor,
)
from repro.dag import TransductionDAG
from repro.dag.viz import dag_to_dot, render_dag, topology_to_dot
from repro.operators.base import KV, Marker
from repro.operators.library import map_values, tumbling_count
from repro.storm.simulator import SimulationReport
from repro.traces.trace_type import unordered_type

U = unordered_type()


class TestFusedCostModel:
    def test_single_vertex(self):
        model = FusedCostModel({"A": 5e-6}, glue_cost=1e-6)
        assert model.cpu_cost("A", KV("k", 1)) == pytest.approx(6e-6)

    def test_fused_chain_sums(self):
        model = FusedCostModel({"A": 5e-6, "B": 3e-6}, glue_cost=1e-6)
        assert model.cpu_cost("A;B", KV("k", 1)) == pytest.approx(9e-6)

    def test_unknown_vertex_uses_default(self):
        model = FusedCostModel({}, glue_cost=0.0, default=2e-6)
        assert model.cpu_cost("mystery", KV("k", 1)) == pytest.approx(2e-6)

    def test_dedup_suffix_resolved(self):
        model = FusedCostModel({"SORT": 4e-6}, glue_cost=0.0)
        assert model.cpu_cost("SORT.1", KV("k", 1)) == pytest.approx(4e-6)

    def test_callable_entry(self):
        model = FusedCostModel(
            {"A": lambda e: 7e-6 if isinstance(e, Marker) else 1e-6},
            glue_cost=0.0,
        )
        assert model.cpu_cost("A", Marker(1)) == pytest.approx(7e-6)
        assert model.cpu_cost("A", KV("k", 1)) == pytest.approx(1e-6)

    def test_vertex_cost_no_glue(self):
        model = FusedCostModel({"A": 5e-6}, glue_cost=1e-6)
        assert model.vertex_cost("A", KV("k", 1)) == pytest.approx(5e-6)
        assert model.glue_cost("A;B", KV("k", 1)) == pytest.approx(1e-6)

    def test_factory_glue_selection(self):
        generated = fused_cost_model({}, generated=True)
        hand = fused_cost_model({}, generated=False)
        assert generated.glue_cost("x", KV("k", 1)) == GENERATED_GLUE_COST
        assert hand.glue_cost("x", KV("k", 1)) == HANDCRAFTED_GLUE_COST


class TestMarkerTriggerCost:
    def test_items_charged_flat(self):
        entry = MarkerTriggerCost(1e-6, 50e-6)
        assert entry.cost(KV("k", 1), 0) == 1e-6

    def test_first_marker_triggers(self):
        entry = MarkerTriggerCost(1e-6, 50e-6, forward_cost=0.1e-6)
        assert entry.cost(Marker(1), 0) == 50e-6
        assert entry.cost(Marker(1), 0) == 0.1e-6  # repeat delivery
        assert entry.cost(Marker(2), 0) == 50e-6   # new timestamp
        assert entry.cost(Marker(1), 1) == 50e-6   # other task

    def test_plain_callable_fallback(self):
        entry = MarkerTriggerCost(1e-6, 50e-6)
        assert entry(KV("k", 1)) == 1e-6


def tiny_topology(parallelism=2):
    from repro.compiler import compile_dag
    from repro.compiler.compile import source_from_events

    dag = TransductionDAG("tiny")
    src = dag.add_source("src", output_type=U)
    op = dag.add_op(map_values(lambda v: v, name="M"), parallelism=parallelism,
                    upstream=[src], edge_types=[U])
    dag.add_sink("out", upstream=op)
    events = [KV("a", i) for i in range(50)] + [Marker(1)]
    return compile_dag(dag, {"src": source_from_events(events, 1)}).topology


class TestSweep:
    def test_measure_throughput(self):
        report = measure_throughput(
            tiny_topology(), 2, fused_cost_model({"M": 10e-6})
        )
        assert isinstance(report, SimulationReport)
        assert report.input_data_tuples == 50

    def test_sweep_machines_points(self):
        points = sweep_machines(
            lambda n: tiny_topology(parallelism=2 * n),
            lambda n: fused_cost_model({"M": 10e-6}),
            machines=(1, 2),
        )
        assert [p.machines for p in points] == [1, 2]
        assert all(p.throughput > 0 for p in points)

    def test_scaling_factor(self):
        points = [
            ScalingPoint(1, 100.0, 1.0, None),
            ScalingPoint(2, 250.0, 0.5, None),
        ]
        assert scaling_factor(points) == 2.5

    def test_ratios(self):
        hand = [ScalingPoint(1, 100.0, 1.0, None)]
        gen = [ScalingPoint(1, 90.0, 1.0, None)]
        assert ratios(hand, gen) == [0.9]


class TestReporting:
    def test_scaling_table_format(self):
        points = [ScalingPoint(1, 1_000_000.0, 1.0, None)]
        table = format_scaling_table("title", points)
        assert "title" in table and "1.000" in table

    def test_comparison_table_format(self):
        hand = [ScalingPoint(1, 1_000_000.0, 1.0, None)]
        gen = [ScalingPoint(1, 1_200_000.0, 1.0, None)]
        table = format_comparison_table("cmp", hand, gen)
        assert "1.200" in table and "1.200" in table.splitlines()[-1]


class TestViz:
    def test_dag_to_dot(self):
        dag = TransductionDAG("d")
        src = dag.add_source("src", output_type=U)
        op = dag.add_op(tumbling_count("C"), parallelism=2, upstream=[src],
                        edge_types=[U])
        dag.add_sink("out", upstream=op)
        dot = dag_to_dot(dag)
        assert dot.startswith('digraph "d"')
        assert "C[x2]" in dot
        assert "U(K,V)" in dot

    def test_topology_to_dot(self):
        dot = topology_to_dot(tiny_topology())
        assert "digraph" in dot
        assert "MarkerAware" in dot

    def test_render_dag_plain(self):
        dag = TransductionDAG("d")
        src = dag.add_source("src", output_type=U)
        op = dag.add_op(tumbling_count("C"), upstream=[src], edge_types=[U])
        dag.add_sink("out", upstream=op)
        assert "src" in render_dag(dag)


class TestCli:
    def test_show_dag_text(self, capsys):
        from repro.cli import main

        assert main(["show-dag", "iot"]) == 0
        out = capsys.readouterr().out
        assert "SENSOR" in out and "SORT" in out

    def test_show_dag_dot(self, capsys):
        from repro.cli import main

        assert main(["show-dag", "quickstart", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_motivation_command(self, capsys):
        from repro.cli import main

        assert main(["motivation", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "equals denotation: True" in out


class TestAsciiChart:
    def test_bars_scale_with_throughput(self):
        from repro.bench.reporting import ascii_chart

        points = [
            ScalingPoint(1, 100_000.0, 1.0, None),
            ScalingPoint(2, 200_000.0, 0.5, None),
        ]
        chart = ascii_chart(points, width=10, title="demo")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_empty_points(self):
        from repro.bench.reporting import ascii_chart

        assert "(no data)" in ascii_chart([], title="t")
