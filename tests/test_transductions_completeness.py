"""The converse denotation theorem made executable: implement() turns
monotone trace functions into consistent string transductions whose
denotations are the original functions."""

import random

import pytest
from hypothesis import given, settings

from repro.errors import ConsistencyError
from repro.traces.items import Item, marker
from repro.traces.normal_form import random_equivalent_shuffle
from repro.traces.tags import Tag
from repro.traces.trace import DataTrace
from repro.traces.trace_type import sequence_type
from repro.transductions.completeness import implement
from repro.transductions.consistency import ConsistencyChecker

from conftest import M, example31_sequences, measurements

OUT = sequence_type(int, tag_name="out")
OUT_TAG = Tag("out")


def smax_trace_function(example31_type):
    """Example 3.9's smax as a *trace* function (specification level)."""

    def beta(trace: DataTrace) -> DataTrace:
        outputs = []
        best = None
        for item in trace.canonical:
            if item.is_marker():
                if best is not None:
                    outputs.append(Item(OUT_TAG, best))
            elif best is None or item.value > best:
                best = item.value
        return DataTrace(OUT, outputs)

    return beta


class TestImplement:
    def test_realizes_smax(self, example31_type):
        f = implement(smax_trace_function(example31_type), example31_type, OUT)
        items = measurements(5, 3, ts=1) + measurements(9, ts=2) + [marker(3)]
        out = f.run(items)
        assert [i.value for i in out] == [5, 9, 9]

    def test_incremental_emission(self, example31_type):
        """Output appears exactly when the trace function grows."""
        f = implement(smax_trace_function(example31_type), example31_type, OUT)
        increments = f.increments(measurements(4, ts=1) + measurements(7, ts=2))
        by_item = {repr(item): out for item, out in increments}
        assert by_item["#1"] == [Item(OUT_TAG, 4)]
        assert by_item["#2"] == [Item(OUT_TAG, 7)]
        assert by_item["(M,4)"] == []

    @given(example31_sequences())
    @settings(max_examples=30)
    def test_implementation_is_consistent(self, example31_type, items):
        """The constructed f satisfies Definition 3.5."""
        f = implement(smax_trace_function(example31_type), example31_type, OUT)
        checker = ConsistencyChecker(example31_type, OUT, seed=2)
        assert checker.check_on_input(f, items, shuffles=6) is None

    @given(example31_sequences())
    @settings(max_examples=30)
    def test_denotation_roundtrip(self, example31_type, items):
        """beta -> implement -> denotation == beta."""
        beta = smax_trace_function(example31_type)
        f = implement(beta, example31_type, OUT)
        realized = DataTrace(OUT, f.run(items))
        assert realized == beta(DataTrace(example31_type, items))

    def test_non_monotone_rejected(self, example31_type):
        """A 'retracting' function is exposed at the offending step."""

        def fickle(trace: DataTrace) -> DataTrace:
            n = len(trace.data_items())
            if n == 1:
                return DataTrace(OUT, [Item(OUT_TAG, 1)])
            return DataTrace(OUT, [])  # retracts its own output

        f = implement(fickle, example31_type, OUT)
        with pytest.raises(ConsistencyError, match="not monotone"):
            f.run(measurements(5, 6))

    def test_identity_function(self, example31_type):
        beta = lambda trace: trace
        f = implement(beta, example31_type, example31_type)
        items = measurements(2, 9, ts=1)
        out = DataTrace(example31_type, f.run(items))
        assert out == DataTrace(example31_type, items)
