"""DT5xx DAG rules, typecheck diagnostics, and planner gating."""

import importlib.util
from pathlib import Path

import pytest

from repro.analysis import analyze_dag
from repro.dag.graph import TransductionDAG
from repro.dag.planner import Plan
from repro.dag.typecheck import (
    EdgeKindDiagnostic,
    typecheck_dag,
    typecheck_diagnostics,
)
from repro.errors import DagError, TraceTypeError
from repro.operators.stateless import OpStateless
from repro.traces.trace_type import ordered_type, unordered_type

U = unordered_type()
O = ordered_type()  # noqa: E741 - paper notation

_BAD_DAGS = Path(__file__).parent / "analysis_corpus" / "bad_dags.py"
_spec = importlib.util.spec_from_file_location("corpus_bad_dags", _BAD_DAGS)
bad_dags = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bad_dags)


class _Echo(OpStateless):
    name = "echo"

    def on_item(self, key, value, emit):
        emit(key, value)


def _clean_dag():
    dag = TransductionDAG("clean")
    src = dag.add_source("src", output_type=U)
    mapper = dag.add_op(_Echo(), upstream=[src], edge_types=[U])
    dag.add_sink("sink", upstream=mapper, input_type=U)
    return dag


class TestAnalyzeDag:
    def test_rr_before_ordered_is_dt501(self):
        codes = [f.code for f in analyze_dag(bad_dags.build_rr_before_ordered())]
        assert "DT501" in codes
        # DT501 subsumes the typechecker's rejection of the same path.
        assert "DT500" not in codes

    def test_fanout_parallel_is_dt503(self):
        findings = analyze_dag(bad_dags.build_fanout_parallel())
        assert [f.code for f in findings].count("DT503") == 1
        assert "2 consumers" in findings[0].message

    def test_defaulted_edge_is_dt502(self):
        codes = [f.code for f in analyze_dag(bad_dags.build_defaulted_edge())]
        assert "DT502" in codes
        assert all(c.startswith("DT50") for c in codes)

    def test_clean_dag_has_no_findings(self):
        assert analyze_dag(_clean_dag()) == []


class TestTypecheckDiagnostics:
    def test_diagnostics_describe_defaulted_edges(self):
        kinds, diagnostics = typecheck_diagnostics(
            bad_dags.build_defaulted_edge()
        )
        assert diagnostics, "untyped pipeline must report defaulted edges"
        assert all(isinstance(d, EdgeKindDiagnostic) for d in diagnostics)
        for diag in diagnostics:
            assert kinds[diag.edge_id] == "U"
            assert diag.src and diag.dst and diag.reason
            assert diag.src in diag.describe()

    def test_typed_pipeline_has_no_diagnostics(self):
        _, diagnostics = typecheck_diagnostics(_clean_dag())
        assert diagnostics == []

    def test_strict_rejects_defaulted_edges(self):
        dag = bad_dags.build_defaulted_edge()
        typecheck_dag(dag)  # default: soft U fallback, no raise
        with pytest.raises(TraceTypeError):
            typecheck_dag(dag, strict=True)

    def test_strict_accepts_typed_pipeline(self):
        typecheck_dag(_clean_dag(), strict=True)


class TestPlannerGate:
    def _fanout_vertex(self, dag):
        return next(
            v.vertex_id
            for v in dag.vertices.values()
            if len(dag.out_edges(v)) == 2
        )

    def test_plan_apply_rejects_multi_consumer_hint(self):
        dag = bad_dags.build_fanout_parallel()
        vid = self._fanout_vertex(dag)
        dag.vertices[vid].parallelism = 1  # hint comes from the plan
        with pytest.raises(DagError, match="Theorem 4.3"):
            Plan({vid: 3}).apply(dag)

    def test_plan_apply_unchecked_installs_hint(self):
        dag = bad_dags.build_fanout_parallel()
        vid = self._fanout_vertex(dag)
        dag.vertices[vid].parallelism = 1
        result = Plan({vid: 3}).apply(dag, check=False)
        assert result.vertices[vid].parallelism == 3

    def test_plan_apply_accepts_single_consumer(self):
        dag = _clean_dag()
        vid = next(
            v.vertex_id for v in dag.vertices.values() if v.name == "echo"
        )
        result = Plan({vid: 4}).apply(dag)
        assert result.vertices[vid].parallelism == 4
