"""ML substrates: REPTree regression, k-means, linear interpolation."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.ml import KMeans, RepTree, fill_series, linear_interpolate


class TestRepTree:
    def make_data(self, n=300, seed=0):
        rng = random.Random(seed)
        X = [[rng.uniform(0, 10), rng.uniform(0, 10)] for _ in range(n)]
        y = [3 * a + (5 if b > 5 else -5) + rng.gauss(0, 0.1) for a, b in X]
        return X, y

    def test_learns_piecewise_structure(self):
        X, y = self.make_data()
        tree = RepTree(seed=1).fit(X, y)
        errors = [abs(tree.predict(x) - t) for x, t in zip(X, y)]
        assert sum(errors) / len(errors) < 2.0

    def test_better_than_mean_baseline(self):
        X, y = self.make_data()
        tree = RepTree(seed=1).fit(X, y)
        mean = sum(y) / len(y)
        tree_sse = sum((tree.predict(x) - t) ** 2 for x, t in zip(X, y))
        mean_sse = sum((mean - t) ** 2 for t in y)
        assert tree_sse < mean_sse / 4

    def test_constant_target_single_leaf(self):
        X = [[float(i)] for i in range(50)]
        y = [7.0] * 50
        tree = RepTree(seed=0).fit(X, y)
        assert tree.n_nodes() == 1
        assert tree.predict([25.0]) == 7.0

    def test_max_depth_respected(self):
        X, y = self.make_data()
        tree = RepTree(max_depth=2, prune=False, seed=0).fit(X, y)
        assert tree.depth() <= 2

    def test_pruning_shrinks_or_keeps_tree(self):
        X, y = self.make_data(seed=3)
        grown = RepTree(prune=False, min_samples_split=4, seed=2).fit(X, y)
        pruned = RepTree(prune=True, min_samples_split=4, seed=2).fit(X, y)
        assert pruned.n_nodes() <= grown.n_nodes()

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            RepTree().predict([1.0])

    def test_feature_arity_checked(self):
        X, y = self.make_data()
        tree = RepTree(seed=0).fit(X, y)
        with pytest.raises(ModelError):
            tree.predict([1.0])

    def test_empty_fit_rejected(self):
        with pytest.raises(ModelError):
            RepTree().fit([], [])

    def test_deterministic_given_seed(self):
        X, y = self.make_data()
        t1 = RepTree(seed=5).fit(X, y)
        t2 = RepTree(seed=5).fit(X, y)
        probes = [[1.0, 1.0], [9.0, 9.0], [5.0, 2.0]]
        assert t1.predict_many(probes) == t2.predict_many(probes)


class TestKMeans:
    POINTS = [[0, 0], [0.2, 0], [5, 5], [5, 5.2], [10, 0], [10, 0.3]]

    def test_separates_clear_clusters(self):
        km = KMeans(3, seed=0).fit(self.POINTS)
        labels = [km.predict(p) for p in [[0, 0], [5, 5], [10, 0]]]
        assert len(set(labels)) == 3

    def test_inertia_decreases_with_k(self):
        i1 = KMeans(1, seed=0).fit(self.POINTS).inertia(self.POINTS)
        i3 = KMeans(3, seed=0).fit(self.POINTS).inertia(self.POINTS)
        assert i3 < i1

    def test_k_capped_at_distinct_points(self):
        km = KMeans(5, seed=0).fit([[1, 1], [1, 1], [2, 2]])
        assert len(km.centroids) <= 2

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            KMeans(2).fit([])

    def test_invalid_k(self):
        with pytest.raises(ModelError):
            KMeans(0)

    def test_deterministic_given_seed(self):
        a = KMeans(2, seed=4).fit(self.POINTS).centroids
        b = KMeans(2, seed=4).fit(self.POINTS).centroids
        assert a == b

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            KMeans(2).predict([0, 0])

    @given(st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
                    min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_centroids_within_data_hull_box(self, points):
        km = KMeans(2, seed=1).fit(points)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        for cx, cy in km.centroids:
            assert min(xs) - 1e-9 <= cx <= max(xs) + 1e-9
            assert min(ys) - 1e-9 <= cy <= max(ys) + 1e-9


class TestInterpolation:
    def test_table2_semantics(self):
        assert linear_interpolate(0, 0.0, 4, 8.0) == [
            (1, 2.0), (2, 4.0), (3, 6.0), (4, 8.0),
        ]

    def test_adjacent_points_no_gap(self):
        assert linear_interpolate(3, 1.0, 4, 2.0) == [(4, 2.0)]

    def test_zero_or_negative_gap(self):
        assert linear_interpolate(4, 1.0, 4, 2.0) == []
        assert linear_interpolate(5, 1.0, 4, 2.0) == []

    def test_fill_series_dense(self):
        filled = fill_series([(0, 0.0), (3, 3.0)])
        assert filled == [(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)]

    def test_fill_series_skips_duplicates(self):
        filled = fill_series([(0, 0.0), (2, 2.0), (2, 9.0), (3, 3.0)])
        assert filled == [(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)]

    def test_fill_series_empty(self):
        assert fill_series([]) == []

    @given(st.lists(st.integers(0, 30), min_size=2, max_size=8, unique=True))
    @settings(max_examples=30)
    def test_fill_series_has_no_gaps(self, timestamps):
        timestamps = sorted(timestamps)
        series = [(t, float(t * 2)) for t in timestamps]
        filled = fill_series(series)
        times = [t for t, _ in filled]
        assert times == list(range(timestamps[0], timestamps[-1] + 1))
