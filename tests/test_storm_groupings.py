"""Stream groupings: Storm's built-ins and the marker-aware family."""

import random

import pytest

from repro.operators.base import KV, Marker
from repro.storm.groupings import (
    BroadcastGrouping,
    FieldsGrouping,
    GlobalGrouping,
    MarkerAwareGrouping,
    ShuffleGrouping,
)


def bound(grouping, seed=0):
    grouping.bind(random.Random(seed))
    return grouping


class TestBuiltins:
    def test_shuffle_routes_each_to_one_task(self):
        g = bound(ShuffleGrouping())
        for _ in range(20):
            targets = g.select(KV("a", 1), 4)
            assert len(targets) == 1 and 0 <= targets[0] < 4

    def test_shuffle_routes_markers_too(self):
        """The Storm behaviour that breaks marker discipline (Section 2):
        markers go to ONE random task, not all."""
        g = bound(ShuffleGrouping())
        assert len(g.select(Marker(1), 4)) == 1

    def test_fields_grouping_consistent_per_key(self):
        g = bound(FieldsGrouping())
        t1 = g.select(KV("a", 1), 4)
        t2 = g.select(KV("a", 99), 4)
        assert t1 == t2

    def test_fields_grouping_custom_extractor(self):
        g = bound(FieldsGrouping(key_fn=lambda e: e.value % 2))
        assert g.select(KV("a", 2), 8) == g.select(KV("b", 4), 8)

    def test_global_grouping(self):
        g = bound(GlobalGrouping())
        assert g.select(KV("a", 1), 5) == [0]

    def test_broadcast(self):
        g = bound(BroadcastGrouping())
        assert g.select(KV("a", 1), 3) == [0, 1, 2]


class TestMarkerAware:
    def test_markers_always_broadcast(self):
        for policy in ("hash", "rr", "global", "affinity"):
            g = bound(MarkerAwareGrouping(policy))
            assert g.select(Marker(1), 3) == [0, 1, 2]

    def test_hash_policy_keeps_keys_together(self):
        g = bound(MarkerAwareGrouping("hash"))
        assert g.select(KV("k", 1), 5) == g.select(KV("k", 2), 5)

    def test_rr_policy_cycles(self):
        g = bound(MarkerAwareGrouping("rr"))
        targets = [g.select(KV("a", i), 3)[0] for i in range(6)]
        assert targets == [0, 1, 2, 0, 1, 2]

    def test_global_policy(self):
        g = bound(MarkerAwareGrouping("global"))
        assert g.select(KV("a", 1), 4) == [0]

    def test_affinity_policy_sticky(self):
        g = bound(MarkerAwareGrouping("affinity"), seed=3)
        first = g.select(KV("a", 1), 4)
        for i in range(10):
            assert g.select(KV("b", i), 4) == first

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MarkerAwareGrouping("zigzag")

    def test_describe(self):
        assert "hash" in MarkerAwareGrouping("hash").describe()
