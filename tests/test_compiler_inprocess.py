"""The in-process compilation backend: same DAG, same traces as both the
denotational semantics and the distributed topology."""

import pytest

from repro.errors import CompilationError
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.compiler.inprocess import compile_inprocess
from repro.dag import TransductionDAG, evaluate_dag
from repro.operators.base import KV, Marker
from repro.operators.library import filter_items, map_values, tumbling_count
from repro.operators.merge import Merge
from repro.operators.sort import SortOp
from repro.operators.split import RoundRobinSplit
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace
from repro.traces.blocks import BlockTrace
from repro.traces.trace_type import unordered_type

U = unordered_type()

EVENTS = [KV("a", 2), KV("b", 1), Marker(1), KV("a", 5), KV("b", 0), Marker(2)]


def pipeline_dag():
    dag = TransductionDAG("inproc")
    src = dag.add_source("src", output_type=U)
    f = dag.add_op(filter_items(lambda k, v: v > 0, name="F"),
                   upstream=[src], edge_types=[U])
    c = dag.add_op(tumbling_count("C"), upstream=[f], edge_types=[U])
    dag.add_sink("out", upstream=c)
    return dag


class TestInProcessBackend:
    def test_matches_denotation(self):
        dag = pipeline_dag()
        expected = evaluate_dag(dag, {"src": EVENTS}).sink_trace("out", False)
        pipeline = compile_inprocess(dag)
        outputs = pipeline.run({"src": EVENTS})
        assert BlockTrace.from_events(False, outputs["out"]) == expected

    def test_matches_distributed_backend(self):
        dag = pipeline_dag()
        pipeline = compile_inprocess(pipeline_dag())
        local = pipeline.run({"src": EVENTS})["out"]
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS, 2)})
        LocalRunner(compiled.topology, seed=0).run()
        distributed = compiled.sinks["out"].aligned_events
        assert BlockTrace.from_events(False, local) == BlockTrace.from_events(
            False, distributed
        )

    def test_incremental_push(self):
        pipeline = compile_inprocess(pipeline_dag())
        pipeline.push("src", KV("a", 2))
        assert pipeline.outputs("out") == []
        pipeline.push("src", Marker(1))
        assert pipeline.outputs("out") == [KV("a", 1), Marker(1)]

    def test_multi_source_merge(self):
        dag = TransductionDAG("multi")
        s1 = dag.add_source("s1", output_type=U)
        s2 = dag.add_source("s2", output_type=U)
        op = dag.add_op(tumbling_count("C"), upstream=[s1, s2],
                        edge_types=[U, U])
        dag.add_sink("out", upstream=op)
        pipeline = compile_inprocess(dag)
        outputs = pipeline.run({
            "s1": [KV("x", 1), Marker(1)],
            "s2": [KV("x", 1), KV("y", 2), Marker(1)],
        })
        trace = BlockTrace.from_events(False, outputs["out"])
        assert sorted(trace.blocks[0].pairs()) == [("x", 2), ("y", 1)]

    def test_explicit_merge_vertex(self):
        dag = TransductionDAG("mrg")
        s1 = dag.add_source("s1", output_type=U)
        s2 = dag.add_source("s2", output_type=U)
        merge = dag.add_merge(Merge(2), upstream=[s1, s2])
        op = dag.add_op(map_values(lambda v: v, name="M"), upstream=[merge],
                        edge_types=[U])
        dag.add_sink("out", upstream=op)
        pipeline = compile_inprocess(dag)
        outputs = pipeline.run({
            "s1": [KV("a", 1), Marker(1)], "s2": [Marker(1)],
        })
        trace = BlockTrace.from_events(False, outputs["out"])
        assert trace.num_markers() == 1

    def test_ordered_stages(self):
        dag = TransductionDAG("sorted")
        src = dag.add_source("src", output_type=U)
        sort = dag.add_op(SortOp(name="S"), upstream=[src], edge_types=[U])
        dag.add_sink("out", upstream=sort)
        pipeline = compile_inprocess(dag)
        outputs = pipeline.run({"src": [KV("k", 3), KV("k", 1), Marker(1)]})
        values = [e.value for e in outputs["out"] if isinstance(e, KV)]
        assert values == [1, 3]

    def test_type_errors_rejected(self):
        from repro.errors import TraceTypeError
        from repro.operators.keyed_ordered import OpKeyedOrdered

        class Ordered(OpKeyedOrdered):
            def init(self):
                return None

            def on_item(self, state, key, value, emit):
                return state

        dag = TransductionDAG("bad")
        src = dag.add_source("src", output_type=U)
        op = dag.add_op(Ordered(), upstream=[src], edge_types=[U])
        dag.add_sink("out", upstream=op)
        with pytest.raises(TraceTypeError):
            compile_inprocess(dag)

    def test_explicit_splitters_rejected(self):
        dag = TransductionDAG("split")
        src = dag.add_source("src", output_type=U)
        split = dag.add_split(RoundRobinSplit(2), upstream=src)
        a = dag.add_op(map_values(lambda v: v), upstream=[split])
        b = dag.add_op(map_values(lambda v: v), upstream=[split])
        merge = dag.add_merge(Merge(2), upstream=[a, b])
        dag.add_sink("out", upstream=merge)
        with pytest.raises(CompilationError):
            compile_inprocess(dag)

    def test_unknown_source_rejected(self):
        pipeline = compile_inprocess(pipeline_dag())
        with pytest.raises(CompilationError):
            pipeline.push("ghost", KV("a", 1))
