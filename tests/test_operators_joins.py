"""Stream-stream block joins, top-k, and distinct counts — template
discipline maintained (consistency under block shuffles)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.base import KV, Marker
from repro.operators.joins import (
    LEFT,
    RIGHT,
    BlockJoin,
    DistinctCount,
    TopK,
    tag_side,
)
from repro.traces.blocks import BlockTrace

from conftest import shuffle_within_blocks


def kvs(events):
    return [e for e in events if isinstance(e, KV)]


class TestTagSide:
    def test_tags_values(self):
        op = tag_side(LEFT)
        assert op.run([KV("k", 5)]) == [KV("k", (LEFT, 5))]

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            tag_side("M")


class TestBlockJoin:
    def test_basic_join(self):
        op = BlockJoin()
        out = op.run([
            KV("k", (LEFT, 1)), KV("k", (RIGHT, "a")),
            KV("k", (LEFT, 2)), Marker(1),
        ])
        pairs = sorted(e.value for e in kvs(out))
        assert pairs == [(1, "a"), (2, "a")]

    def test_join_is_per_key(self):
        op = BlockJoin()
        out = op.run([
            KV("k1", (LEFT, 1)), KV("k2", (RIGHT, "x")), Marker(1),
        ])
        assert kvs(out) == []  # no key has both sides

    def test_join_is_per_block(self):
        op = BlockJoin()
        out = op.run([
            KV("k", (LEFT, 1)), Marker(1), KV("k", (RIGHT, "a")), Marker(2),
        ])
        assert kvs(out) == []  # sides in different blocks never meet

    def test_projection(self):
        op = BlockJoin(project=lambda key, l, r: l + r)
        out = op.run([KV("k", (LEFT, 10)), KV("k", (RIGHT, 5)), Marker(1)])
        assert kvs(out) == [KV("k", 15)]

    def test_multiplicity(self):
        op = BlockJoin()
        out = op.run([
            KV("k", (LEFT, 1)), KV("k", (LEFT, 1)),
            KV("k", (RIGHT, "a")), Marker(1),
        ])
        assert len(kvs(out)) == 2  # bag semantics: duplicates join twice

    def test_consistency_under_block_shuffles(self):
        rng = random.Random(7)
        events = [
            KV("a", (LEFT, 1)), KV("a", (RIGHT, "x")), KV("b", (LEFT, 9)),
            KV("a", (LEFT, 2)), KV("b", (RIGHT, "y")), Marker(1),
            KV("a", (RIGHT, "z")), KV("a", (LEFT, 3)), Marker(2),
        ]
        base = BlockTrace.from_events(False, BlockJoin().run(events))
        for _ in range(6):
            shuffled = shuffle_within_blocks(events, rng)
            got = BlockTrace.from_events(False, BlockJoin().run(shuffled))
            assert got == base


class TestTopK:
    def test_top2(self):
        op = TopK(2)
        out = op.run([KV("k", 3), KV("k", 9), KV("k", 5), Marker(1)])
        assert kvs(out) == [KV("k", (9, 5))]

    def test_fewer_than_k(self):
        op = TopK(3)
        out = op.run([KV("k", 1), Marker(1)])
        assert kvs(out) == [KV("k", (1,))]

    def test_custom_sort_key(self):
        op = TopK(1, sort_key=len)
        out = op.run([KV("k", "aa"), KV("k", "bbbb"), Marker(1)])
        assert kvs(out) == [KV("k", ("bbbb",))]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopK(0)

    def test_combine_associative_commutative_with_ties(self):
        # Monoid elements are descending-sorted top-k tuples.
        op = TopK(2)
        monoid = op.monoid()
        assert monoid.spot_check([(3,), (5, 3), (5, 5), (9, 1), ()])

    @given(st.lists(st.integers(0, 9), max_size=12))
    @settings(max_examples=40)
    def test_matches_sorted_oracle(self, values):
        op = TopK(3)
        events = [KV("k", v) for v in values] + [Marker(1)]
        out = kvs(op.run(events))
        if not values:
            assert out == []
        else:
            expected = tuple(sorted(values, reverse=True)[:3])
            assert out[0].value == expected


class TestDistinctCount:
    def test_counts_distinct_per_block(self):
        op = DistinctCount()
        out = op.run([
            KV("k", 1), KV("k", 1), KV("k", 2), Marker(1),
            KV("k", 1), Marker(2),
        ])
        assert kvs(out) == [KV("k", 2), KV("k", 1)]

    def test_per_key_isolation(self):
        op = DistinctCount()
        out = op.run([KV("a", 1), KV("b", 1), Marker(1)])
        assert sorted((e.key, e.value) for e in kvs(out)) == [("a", 1), ("b", 1)]

    def test_consistency_under_block_shuffles(self):
        rng = random.Random(11)
        events = [KV("a", i % 3) for i in range(10)] + [Marker(1)]
        base = BlockTrace.from_events(False, DistinctCount().run(events))
        for _ in range(5):
            shuffled = shuffle_within_blocks(events, rng)
            got = BlockTrace.from_events(False, DistinctCount().run(shuffled))
            assert got == base
