"""Every shipped example must run to completion and print its headline
result — executable-documentation rot protection."""

import io
import pathlib
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: script -> a string its output must contain when healthy.
EXPECTED = {
    "quickstart.py": "matches the denotation",
    "trace_algebra.py": "violation found",
    "iot_interpolation.py": "equals the denotational semantics: True",
    "yahoo_analytics.py": "compiled run equals denotation: True",
    "smart_homes_prediction.py": "compiled run equals denotation: True",
    "extensions_tour.py": "Kahn determinism",
}


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs(script):
    path = EXAMPLES / script
    assert path.exists(), f"example {script} is missing"
    buffer = io.StringIO()
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        with redirect_stdout(buffer):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    output = buffer.getvalue()
    assert EXPECTED[script] in output, (
        f"{script} no longer prints its headline result; output was:\n"
        f"{output[-2000:]}"
    )
