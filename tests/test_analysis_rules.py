"""Unit tests for the static rules on inline sources: each rule's
minimal trigger, its sanctioned (passing) counterpart, suppressions,
output formats, and the rule registry."""

import json
import textwrap

import pytest

from repro.analysis import RULES, all_codes, analyze_source, explain, get_rule
from repro.analysis.findings import Report, filter_findings

DOCS = "docs/static_analysis.md"


def lint(source, **kwargs):
    return analyze_source(textwrap.dedent(source), **kwargs)


def codes(source, **kwargs):
    return [f.code for f in lint(source, **kwargs)]


STATELESS_HEADER = """
    from repro.operators.stateless import OpStateless
"""

KEYED_UNORDERED_HEADER = """
    from repro.operators.keyed_unordered import OpKeyedUnordered
"""


class TestPurity:
    def test_self_write_is_dt101(self):
        assert "DT101" in codes(
            """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    self.seen = value
                    emit(key, value)
            """
        )

    def test_self_mutating_method_is_dt101(self):
        assert "DT101" in codes(
            """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    self.buffer.append(value)
            """
        )

    def test_global_is_dt102(self):
        assert "DT102" in codes(
            """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    global total
                    total += value
            """
        )

    def test_nondeterministic_call_is_dt103(self):
        assert "DT103" in codes(
            """
            import time
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    emit(key, (value, time.time()))
            """
        )

    def test_shared_mutable_write_is_dt104(self):
        assert "DT104" in codes(
            """
            from repro.operators.stateless import OpStateless

            SEEN = set()

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    SEEN.add(value)
            """
        )

    def test_argument_mutation_is_dt105(self):
        assert "DT105" in codes(
            """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    value.append(1)
                    emit(key, value)
            """
        )

    def test_pure_map_passes(self):
        assert codes(
            """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    local = value * 2
                    emit(key, local)
            """
        ) == []

    def test_reads_of_self_config_pass(self):
        # Reading self.* is fine; only writes/mutations are impure.
        assert codes(
            """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    emit(key, value * self.factor)
            """
        ) == []


class TestOrder:
    KU = """
        from repro.operators.keyed_unordered import OpKeyedUnordered

        class Op(OpKeyedUnordered):
            def fold_in(self, key, value):
                return {body}
    """

    def test_subtraction_combine_is_dt201(self):
        src = """
            from repro.operators.keyed_unordered import OpKeyedUnordered

            class Op(OpKeyedUnordered):
                def combine(self, x, y):
                    return x - y
        """
        assert "DT201" in codes(src)

    def test_sum_combine_passes(self):
        src = """
            from repro.operators.keyed_unordered import OpKeyedUnordered

            class Op(OpKeyedUnordered):
                def combine(self, x, y):
                    return x + y
        """
        assert codes(src) == []

    def test_sorted_concat_passes(self):
        src = """
            from repro.operators.keyed_unordered import OpKeyedUnordered

            class Op(OpKeyedUnordered):
                def combine(self, x, y):
                    return sorted(x + y)
        """
        assert codes(src) == []

    def test_reduce_in_update_state_is_dt202(self):
        src = """
            import functools
            from repro.operators.keyed_unordered import OpKeyedUnordered

            class Op(OpKeyedUnordered):
                def update_state(self, old, agg):
                    return functools.reduce(lambda a, b: a - b, agg, old)
        """
        assert "DT202" in codes(src)

    def test_set_iteration_to_emit_is_dt203(self):
        src = """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    tags = {"a", "b", value}
                    out = []
                    for tag in tags:
                        out.append(tag)
                    emit(key, out)
        """
        assert "DT203" in codes(src)

    def test_len_of_set_passes(self):
        src = """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    tags = {"a", "b", value}
                    emit(key, len(tags))
        """
        assert codes(src) == []

    def test_sorted_iteration_passes(self):
        src = """
            from repro.operators.stateless import OpStateless

            class Op(OpStateless):
                def on_item(self, key, value, emit):
                    tags = {"a", "b", value}
                    out = []
                    for tag in sorted(tags):
                        out.append(tag)
                    emit(key, out)
        """
        assert codes(src) == []

    def test_dict_aggregate_tuple_freeze_is_dt203(self):
        src = """
            from repro.operators.keyed_unordered import OpKeyedUnordered

            class Op(OpKeyedUnordered):
                def identity(self):
                    return {}

                def update_state(self, old, agg):
                    return tuple(agg)
        """
        assert "DT203" in codes(src)

    def test_dict_star_merge_is_dt204(self):
        src = """
            from repro.operators.keyed_unordered import OpKeyedUnordered

            class Op(OpKeyedUnordered):
                def combine(self, x, y):
                    return {**x, **y}
        """
        assert "DT204" in codes(src)


class TestKeyed:
    def test_instance_keyed_state_is_dt301(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def on_item(self, state, key, value, emit):
                    self._table[key] = value
                    return state
        """
        assert "DT301" in codes(src)

    def test_cross_key_subscript_is_dt302(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def on_item(self, state, key, value, emit):
                    other = "hub"
                    emit(key, state[other])
                    return state
        """
        assert "DT302" in codes(src)

    def test_key_alias_subscript_passes(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def on_item(self, state, key, value, emit):
                    k = key
                    emit(key, state[k])
                    return state
        """
        assert codes(src) == []

    def test_key_rewrite_is_dt303(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def on_item(self, state, key, value, emit):
                    emit("relabelled", value)
                    return state
        """
        assert "DT303" in codes(src)

    def test_key_preserving_emit_passes(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def on_item(self, state, key, value, emit):
                    emit(key, value + 1)
                    return state
        """
        assert codes(src) == []


class TestSnapshot:
    def test_alias_return_is_dt401(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return state
        """
        assert "DT401" in codes(src)

    def test_shallow_list_is_dt402(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return list(state)
        """
        assert "DT402" in codes(src)

    def test_slice_copy_is_dt402(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return state[:]
        """
        assert "DT402" in codes(src)

    def test_deepcopy_passes(self):
        src = """
            import copy
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return copy.deepcopy(state)
        """
        assert codes(src) == []

    def test_none_guard_shallow_is_still_dt402(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return state if state is None else list(state)
        """
        assert "DT402" in codes(src)

    def test_transforming_copy_passes(self):
        # Rebuilding a fresh structure per entry is not a shallow alias.
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return [pair + 0 for pair in state]
        """
        assert codes(src) == []


class TestSuppressions:
    SRC = """
        from repro.operators.keyed_ordered import OpKeyedOrdered

        class Op(OpKeyedOrdered):
            def copy_state(self, state):
                return list(state)  # repro: ignore[DT402] -- scalar items
    """

    def test_used_suppression_silences_finding(self):
        assert codes(self.SRC) == []

    def test_suppress_flag_off_keeps_finding(self):
        assert "DT402" in codes(self.SRC, suppress=False)

    def test_standalone_comment_covers_next_line(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    # repro: ignore[DT402] -- scalar items
                    return list(state)
        """
        assert codes(src) == []

    def test_unused_suppression_is_dt001(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    import copy
                    return copy.deepcopy(state)  # repro: ignore[DT402]
        """
        assert codes(src) == ["DT001"]

    def test_wrong_code_does_not_suppress(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return list(state)  # repro: ignore[DT401]
        """
        got = codes(src)
        assert "DT402" in got and "DT001" in got

    def test_multi_code_suppression(self):
        src = """
            from repro.operators.keyed_ordered import OpKeyedOrdered

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return list(state)  # repro: ignore[DT401, DT402]
        """
        assert codes(src) == []

    def test_suppression_inside_string_is_ignored(self):
        # Regression: the scanner must only honor real COMMENT tokens.
        src = '''
            from repro.operators.keyed_ordered import OpKeyedOrdered

            DOC = """
            example:  # repro: ignore[DT402]
            """

            class Op(OpKeyedOrdered):
                def copy_state(self, state):
                    return list(state)
        '''
        got = codes(src)
        assert got == ["DT402"]  # no DT001, and the finding survives

    def test_syntax_error_is_dt002(self):
        assert codes("def broken(:\n    pass\n") == ["DT002"]


class TestReportAndRegistry:
    def test_filter_select_ignore_prefixes(self):
        findings = lint(self.__class__.BAD)
        only_4xx = filter_findings(findings, select=("DT4",), ignore=())
        assert {f.code for f in only_4xx} == {"DT402"}
        none_4xx = filter_findings(findings, select=(), ignore=("DT4",))
        assert all(not f.code.startswith("DT4") for f in none_4xx)

    BAD = """
        from repro.operators.keyed_ordered import OpKeyedOrdered

        class Op(OpKeyedOrdered):
            def copy_state(self, state):
                return list(state)

            def on_item(self, state, key, value, emit):
                emit("other", value)
                return state
    """

    def test_report_render_json(self):
        report = Report(lint(self.BAD))
        payload = json.loads(report.render("json"))
        assert {f["code"] for f in payload["findings"]} == {"DT303", "DT402"}

    def test_report_render_github(self):
        report = Report(lint(self.BAD))
        out = report.render("github")
        assert "::error" in out and "::warning" in out

    def test_exit_codes(self):
        warn_only = Report(
            [f for f in lint(self.BAD) if f.severity == "warning"]
        )
        assert warn_only.exit_code(strict=False) == 0
        assert warn_only.exit_code(strict=True) == 1
        with_error = Report(lint(self.BAD))
        assert with_error.exit_code(strict=False) == 1

    def test_every_rule_explains_itself(self):
        for code in all_codes():
            text = explain(code)
            assert code in text
            assert RULES[code].clause in text

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("DT999")

    def test_rule_codes_are_stable(self):
        # The documented public contract: removing or renaming a code is
        # a breaking change and must be a deliberate one.
        assert {
            "DT001", "DT002", "DT101", "DT102", "DT103", "DT104", "DT105",
            "DT201", "DT202", "DT203", "DT204", "DT301", "DT302", "DT303",
            "DT401", "DT402", "DT500", "DT501", "DT502", "DT503",
            "DT901", "DT902", "DT903",
        } <= set(all_codes())


class TestDocsInSync:
    def test_every_code_is_documented(self):
        from pathlib import Path

        docs = (
            Path(__file__).parents[1] / "docs" / "static_analysis.md"
        ).read_text(encoding="utf-8")
        for code in all_codes():
            assert code in docs, f"{code} missing from docs/static_analysis.md"
