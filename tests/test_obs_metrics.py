"""Observability metrics layer: registry semantics, null-registry
behaviour, and — crucially — instrumentation parity: an instrumented
simulation must produce bit-identical results to an uninstrumented one
(the obs layer is read-only with respect to the schedule and the RNG).
"""

import pytest

from repro.apps.iot import SensorWorkload, iot_typed_dag
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.obs import ObsContext, MetricsRegistry, NullRegistry, Tracer
from repro.obs.metrics import percentile
from repro.operators.base import KV, Marker
from repro.storm.cluster import Cluster
from repro.storm.local import LocalRunner
from repro.storm.simulator import Simulator
from repro.storm.topology import CaptureBolt, IteratorSpout, TopologyBuilder


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("tuples", component="a").inc()
        reg.counter("tuples", component="a").inc(2)
        reg.counter("tuples", component="b").inc()
        snap = reg.snapshot()
        assert snap["tuples"]["component=a"] == 3
        assert snap["tuples"]["component=b"] == 1

    def test_metric_identity_is_name_plus_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("n", x=1, y=2)
        b = reg.counter("n", y=2, x=1)  # label order must not matter
        c = reg.counter("n", x=1, y=3)
        assert a is b
        assert a is not c

    def test_gauge_tracks_extremes_and_note(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("skew", task=0)
        gauge.set_max(1, note="ch0")
        gauge.set_max(5, note="ch1")
        gauge.set_max(3, note="ch2")  # not a new max: note must not move
        assert gauge.max == 5
        assert gauge.note == "ch1"
        assert gauge.value == 3

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            hist.observe(value)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == 3.0
        assert hist.percentile(100) == 5.0
        assert hist.mean() == pytest.approx(3.0)

    def test_percentile_helper_empty(self):
        assert percentile([], 99) == 0.0

    def test_empty_histogram_percentile_is_nan(self):
        import math

        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.percentile(99))
        # The snapshot reports missing quantiles as None, not 0.0.
        snap = reg.snapshot()
        assert snap["lat"]["_"]["p50"] is None
        assert snap["lat"]["_"]["count"] == 0

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        assert not reg.enabled
        reg.counter("x", component="a").inc()
        reg.gauge("y").set_max(3, note="z")
        reg.histogram("z").observe(1.0)
        assert reg.snapshot() == {}
        assert reg.metrics() == []

    def test_null_registry_shares_one_instrument(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b", any_label=1)


class TestObsContext:
    def test_default_context_is_disabled(self):
        obs = ObsContext()
        assert not obs.enabled

    def test_collecting_context_is_enabled(self):
        obs = ObsContext.collecting()
        assert obs.enabled
        assert isinstance(obs.metrics, MetricsRegistry)
        assert isinstance(obs.tracer, Tracer)

    def test_partial_context_tracer_only(self):
        obs = ObsContext(tracer=Tracer())
        assert obs.enabled
        assert not obs.metrics.enabled


def _compiled_iot(seed):
    events = SensorWorkload().events()
    dag = iot_typed_dag(parallelism=2)
    compiled = compile_dag(dag, {"SENSOR": source_from_events(events, 2)})
    return compiled.topology


class TestInstrumentationParity:
    """Enabled instrumentation must not change simulation outcomes."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_identical_results_compiled_topology(self, seed):
        plain = LocalRunner(_compiled_iot(seed), seed=seed).run()
        obs = ObsContext.collecting()
        traced = LocalRunner(_compiled_iot(seed), seed=seed, obs=obs).run()

        assert traced.makespan == plain.makespan
        assert traced.processed == plain.processed
        assert traced.emitted == plain.emitted
        assert traced.sink_events == plain.sink_events
        assert traced.sink_delivery_times == plain.sink_delivery_times
        assert traced.machine_busy == plain.machine_busy
        # And the instrumented run actually collected something.
        assert obs.tracer.spans
        assert obs.metrics.snapshot()

    def test_identical_results_with_costs(self):
        events = [KV("k", i) for i in range(40)] + [Marker(1)]
        builder = TopologyBuilder("t")
        builder.set_spout("src", IteratorSpout(lambda i, n: iter(events)), 1)
        builder.set_bolt("sink", CaptureBolt(), 1).shuffle_grouping("src")
        topology = builder.build()

        plain = Simulator(topology, Cluster(2), seed=4).run()
        obs = ObsContext.collecting()
        traced = Simulator(topology, Cluster(2), seed=4, obs=obs).run()
        assert traced.makespan == plain.makespan
        assert traced.sink_events == plain.sink_events

    def test_disabled_context_collects_nothing(self):
        obs = ObsContext()  # null registry + null tracer
        LocalRunner(_compiled_iot(0), seed=0, obs=obs).run()
        assert obs.metrics.snapshot() == {}

    def test_event_counts_match_report(self):
        """Metric counters agree with the report's own accounting."""
        obs = ObsContext.collecting()
        report = LocalRunner(_compiled_iot(0), seed=0, obs=obs).run()
        snap = obs.metrics.snapshot()
        for component, count in report.processed.items():
            if count:  # spouts never enter the bolt path and stay at 0
                assert snap["tuples_processed"][f"component={component}"] == count

    def test_merge_skew_gauges_present_for_compiled_bolts(self):
        obs = ObsContext.collecting()
        LocalRunner(_compiled_iot(0), seed=0, obs=obs).run()
        snap = obs.metrics.snapshot()
        assert "merge_skew" in snap
        assert "merge_buffered_tuples" in snap
