"""Placement strategies: round-robin, packed, aligned — and their
performance consequences on the simulated cluster."""

import pytest

from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import TransductionDAG
from repro.operators.base import KV, Marker
from repro.operators.library import map_values
from repro.storm import (
    Cluster,
    Simulator,
    aligned_placement,
    packed_placement,
    round_robin_placement,
)
from repro.storm.costs import PerComponentCostModel
from repro.traces.trace_type import unordered_type

U = unordered_type()


def two_stage_topology(parallelism=4, n_events=200):
    from repro.compiler.compile import CompilerOptions

    dag = TransductionDAG("two-stage")
    src = dag.add_source("src", output_type=U)
    a = dag.add_op(map_values(lambda v: v + 1, name="A"), parallelism=parallelism,
                   upstream=[src], edge_types=[U])
    b = dag.add_op(map_values(lambda v: v * 2, name="B"), parallelism=parallelism,
                   upstream=[a], edge_types=[U])
    dag.add_sink("out", upstream=b)
    events = [KV("k", i) for i in range(n_events)] + [Marker(1)]
    # Fusion off: these tests need A and B as separate components so
    # inter-stage placement actually matters.
    return compile_dag(
        dag, {"src": source_from_events(events, 1)},
        CompilerOptions(fusion=False),
    ).topology


class TestStrategies:
    def test_round_robin_spreads(self):
        topology = two_stage_topology(parallelism=4)
        placement = round_robin_placement(topology, Cluster(4))
        machines = {placement.machine_of("A", i) for i in range(4)}
        assert machines == {0, 1, 2, 3}

    def test_packed_fills_first_machines(self):
        topology = two_stage_topology(parallelism=4)
        placement = packed_placement(topology, Cluster(4, cores_per_machine=2))
        machines = [placement.machine_of("A", i) for i in range(4)]
        assert machines == [0, 0, 1, 1]

    def test_aligned_colocates_task_indexes(self):
        topology = two_stage_topology(parallelism=4)
        placement = aligned_placement(topology, Cluster(4))
        for i in range(4):
            assert placement.machine_of("A", i) == placement.machine_of("B", i)

    def test_all_offload_sources(self):
        topology = two_stage_topology()
        for strategy in (round_robin_placement, packed_placement, aligned_placement):
            placement = strategy(topology, Cluster(2))
            assert placement.machine_of("src", 0) == Cluster.SOURCE_HOST
            assert placement.machine_of("out", 0) == Cluster.SOURCE_HOST


class TestPerformanceConsequences:
    def test_packed_wastes_machines(self):
        """With 4 tasks packed onto 2 of 4 machines, throughput drops
        vs. round-robin spreading."""
        cost = PerComponentCostModel({"A": 30e-6, "B": 30e-6})
        cluster = Cluster(4, cores_per_machine=2)
        topology = two_stage_topology(parallelism=4, n_events=400)
        spread = Simulator(
            topology, cluster, cost_model=cost,
            placement=round_robin_placement(topology, cluster), seed=1,
        ).run()
        topology2 = two_stage_topology(parallelism=4, n_events=400)
        packed = Simulator(
            topology2, cluster, cost_model=cost,
            placement=packed_placement(topology2, cluster), seed=1,
        ).run()
        assert spread.throughput() > packed.throughput() * 1.3

    def test_aligned_reduces_remote_hops_cost(self):
        """With receiver-side remote CPU, aligned placement beats
        round-robin when consecutive stages are index-correlated."""
        # Force index correlation: the rr grouping from A's task i walks
        # targets cyclically, so with equal parallelism the traffic is
        # spread; alignment still wins on the *fraction* of local hops.
        cost_spread = PerComponentCostModel({"A": 5e-6, "B": 5e-6})
        cost_spread.remote_cpu = 20e-6
        cost_aligned = PerComponentCostModel({"A": 5e-6, "B": 5e-6})
        cost_aligned.remote_cpu = 20e-6
        cluster = Cluster(2, cores_per_machine=2)
        topology = two_stage_topology(parallelism=2, n_events=400)
        spread = Simulator(
            topology, cluster, cost_model=cost_spread,
            placement=round_robin_placement(topology, cluster), seed=1,
        ).run()
        topology2 = two_stage_topology(parallelism=2, n_events=400)
        aligned = Simulator(
            topology2, cluster, cost_model=cost_aligned,
            placement=aligned_placement(topology2, cluster), seed=1,
        ).run()
        # Aligned must be at least as fast (it can only increase the
        # share of local deliveries here).
        assert aligned.throughput() >= spread.throughput() * 0.95
