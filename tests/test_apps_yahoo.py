"""The Yahoo benchmark applications: workload determinism, per-query
semantics (compiled == denotation across interleavings), hand-crafted
plausibility, and cross-validation of compiled vs. hand-crafted results
where their outputs are comparable."""

import pytest

from repro.apps.yahoo.events import EVENT_TYPES, AdEvent, YahooWorkload
from repro.apps.yahoo.handcrafted import HANDCRAFTED_BUILDERS, MarkerTracker
from repro.apps.yahoo.queries import QUERY_BUILDERS
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import evaluate_dag
from repro.operators.base import KV, Marker
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


@pytest.fixture(scope="module")
def workload():
    return YahooWorkload(
        seconds=4, events_per_second=150, n_campaigns=8, ads_per_campaign=5,
        n_users=40, n_locations=4,
    )


@pytest.fixture(scope="module")
def events(workload):
    return workload.events()


class TestWorkload:
    def test_deterministic(self, workload):
        assert workload.events() == workload.events()

    def test_marker_per_second(self, workload, events):
        markers = [e for e in events if isinstance(e, Marker)]
        assert [m.timestamp for m in markers] == list(
            range(1, workload.seconds + 1)
        )

    def test_event_schema(self, events):
        data = [e.value for e in events if isinstance(e, KV)]
        assert all(isinstance(e, AdEvent) for e in data)
        assert all(e.event_type in EVENT_TYPES for e in data)

    def test_event_times_within_blocks(self, workload, events):
        second = 0
        for e in events:
            if isinstance(e, Marker):
                second += 1
            else:
                assert second * 1000 <= e.value.event_time < (second + 1) * 1000

    def test_database_shapes(self, workload):
        db = workload.make_database()
        assert len(db.tables["ads"]) == workload.n_ads()
        assert len(db.tables["users"]) == workload.n_users
        row = db.lookup("ads", "ad_id", 7)
        assert row == (7, 7 // workload.ads_per_campaign)


@pytest.mark.parametrize("query", list(QUERY_BUILDERS))
class TestQuerySemantics:
    def test_compiled_equals_denotation(self, query, workload, events):
        builder, _ = QUERY_BUILDERS[query]
        dag = builder(workload.make_database(), parallelism=2)
        expected = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
        compiled = compile_dag(
            builder(workload.make_database(), parallelism=2),
            {"events": source_from_events(events, parallelism=2)},
        )
        for seed in (0, 3):
            LocalRunner(compiled.topology, seed=seed).run()
            got = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
            assert got == expected

    def test_handcrafted_runs_and_aligns(self, query, workload, events):
        topology, sink = HANDCRAFTED_BUILDERS[query](
            workload.make_database(), events, parallelism=2, spouts=2
        )
        LocalRunner(topology, seed=1).run()
        trace = events_to_trace(sink.aligned_events, False)
        assert trace.num_markers() == workload.seconds


class TestQueryContent:
    def test_query1_enriches_every_event(self, workload, events):
        builder, _ = QUERY_BUILDERS["I"]
        dag = builder(workload.make_database(), parallelism=1)
        trace = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
        assert trace.total_pairs() == workload.total_data_tuples()

    def test_query2_persists_counts(self, workload, events):
        db = workload.make_database()
        builder, _ = QUERY_BUILDERS["II"]
        dag = builder(db, parallelism=1)
        evaluate_dag(dag, {"events": events})
        store = db.stores["aggregates"]
        assert sum(store.snapshot().values()) == workload.total_data_tuples()

    def test_query3_counts_by_location(self, workload, events):
        builder, _ = QUERY_BUILDERS["III"]
        dag = builder(workload.make_database(), parallelism=1)
        trace = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
        final_block = trace.blocks[workload.seconds - 1]
        assert sum(v for _, v in final_block.pairs()) == workload.total_data_tuples()

    def test_query4_counts_views_only(self, workload, events):
        builder, _ = QUERY_BUILDERS["IV"]
        dag = builder(workload.make_database(), parallelism=1)
        trace = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
        views = sum(
            1
            for e in events
            if isinstance(e, KV) and e.value.event_type == "view"
        )
        # Window (10 blocks) exceeds stream length, so the last block's
        # counts sum to the total number of views.
        final_block = trace.blocks[workload.seconds - 1]
        assert sum(v for _, v in final_block.pairs()) == views

    def test_query5_tumbling_blocks_sum_to_views(self, workload, events):
        builder, _ = QUERY_BUILDERS["V"]
        dag = builder(workload.make_database(), parallelism=1)
        trace = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
        views = sum(
            1
            for e in events
            if isinstance(e, KV) and e.value.event_type == "view"
        )
        total = sum(
            v for block in trace.closed_blocks() for _, v in block.pairs()
        )
        assert total == views

    def test_query6_emits_cluster_quality(self, workload, events):
        builder, _ = QUERY_BUILDERS["VI"]
        dag = builder(workload.make_database(), parallelism=1)
        trace = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
        pairs = [p for block in trace.closed_blocks() for p in block.pairs()]
        assert pairs, "clustering must emit per-location fits"
        for location, (n_points, inertia) in pairs:
            assert 0 <= location < workload.n_locations
            assert n_points > 0
            assert inertia >= 0

    def test_query5_handcrafted_matches_compiled_counts(self, workload, events):
        """Tumbling counts bucketed by event time coincide with the
        marker-block counts, so the two implementations agree here."""
        builder, _ = QUERY_BUILDERS["V"]
        dag = builder(workload.make_database(), parallelism=1)
        expected = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
        topology, sink = HANDCRAFTED_BUILDERS["V"](
            workload.make_database(), events, parallelism=2, spouts=2
        )
        LocalRunner(topology, seed=2).run()
        got = events_to_trace(sink.aligned_events, False)
        assert got == expected


class TestMarkerTracker:
    def test_completion_requires_all_channels(self):
        tracker = MarkerTracker(2)
        assert tracker.advance("a", 1) == []
        assert tracker.advance("b", 1) == [1]

    def test_batch_completion(self):
        tracker = MarkerTracker(2)
        tracker.advance("a", 1)
        tracker.advance("a", 2)
        assert tracker.advance("b", 1) == [1]
        assert tracker.advance("b", 2) == [2]

    def test_single_channel(self):
        tracker = MarkerTracker(1)
        assert tracker.advance("a", 1) == [1]


class TestPeriodicClustering:
    def test_cluster_every_n_markers(self, workload, events):
        """Query VI with cluster_every=2 emits on every second marker,
        over the union of the two blocks' vectors."""
        from repro.apps.yahoo.queries import query6

        dag = query6(workload.make_database(), parallelism=1, cluster_every=2)
        trace = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
        emitting = [
            i for i, block in enumerate(trace.closed_blocks()) if block.pairs()
        ]
        assert emitting, "periodic clustering must emit"
        assert all(i % 2 == 1 for i in emitting), (
            "with every=2 only the 2nd, 4th, ... markers cluster"
        )

    def test_periodic_accumulates_across_blocks(self, workload, events):
        """Points clustered with every=2 cover two blocks: the counts at
        an emitting marker exceed (or equal) the per-block counts."""
        from repro.apps.yahoo.queries import query6

        per_block = evaluate_dag(
            query6(workload.make_database(), parallelism=1, cluster_every=1),
            {"events": events},
        ).sink_trace("SINK", False)
        per_two = evaluate_dag(
            query6(workload.make_database(), parallelism=1, cluster_every=2),
            {"events": events},
        ).sink_trace("SINK", False)
        # Compare the same marker (index 1 = the second block).
        single = dict(per_block.blocks[1].pairs())
        double = dict(per_two.blocks[1].pairs())
        for location, (n_points, _inertia) in double.items():
            assert n_points >= single[location][0]

    def test_periodic_variant_still_consistent(self, workload, events):
        from repro.apps.yahoo.queries import query6
        from repro.dag.semantics import check_dag_invariance

        dag = query6(workload.make_database(), parallelism=1, cluster_every=2)
        check_dag_invariance(dag, {"events": events[: len(events) // 2]},
                             shuffles=3)

    def test_invalid_period(self):
        from repro.apps.yahoo.queries import LocationClustering

        with pytest.raises(ValueError):
            LocationClustering(every=0)
