"""Shared fixtures: the paper's running-example trace types and small
workloads, plus hypothesis strategies for events and item sequences."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings as _hypothesis_settings
from hypothesis import strategies as st

# Our fixtures are immutable type descriptors, safe to share across
# generated inputs; silence the function-scoped-fixture health check.
_hypothesis_settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.function_scoped_fixture],
    deadline=None,
)
_hypothesis_settings.load_profile("repro")

from repro.operators.base import KV, Marker
from repro.traces.dependence import DependenceRelation
from repro.traces.items import Item, marker
from repro.traces.tags import DataType, MARKER, Tag, nat_validator
from repro.traces.trace_type import DataTraceType, ordered_type, unordered_type

M = Tag("M")


@pytest.fixture
def example31_type() -> DataTraceType:
    """Example 3.1: tags {M, #}, M self-independent, # ordered and
    dependent on M."""
    data_type = DataType({M: nat_validator, MARKER: nat_validator})
    dependence = DependenceRelation.with_marker(data_tags_self_dependent=False)
    return DataTraceType(data_type, dependence, name="Ex31")


@pytest.fixture
def u_type() -> DataTraceType:
    return unordered_type("K", "V")


@pytest.fixture
def o_type() -> DataTraceType:
    return ordered_type("K", "V")


def measurements(*values, ts=None):
    """Items (M, v) for each value, optionally ending with a marker."""
    items = [Item(M, v) for v in values]
    if ts is not None:
        items.append(marker(ts))
    return items


# ----------------------------------------------------------------------
# Hypothesis strategies.
# ----------------------------------------------------------------------

#: Small key/value alphabets keep shrunk counterexamples readable.
keys = st.sampled_from(["a", "b", "c"])
values = st.integers(min_value=0, max_value=9)


@st.composite
def event_streams(draw, max_blocks: int = 4, max_block_size: int = 6):
    """A well-formed keyed event stream: blocks of KV pairs + markers."""
    n_blocks = draw(st.integers(min_value=0, max_value=max_blocks))
    stream = []
    for block in range(n_blocks):
        size = draw(st.integers(min_value=0, max_value=max_block_size))
        for _ in range(size):
            stream.append(KV(draw(keys), draw(values)))
        stream.append(Marker(block + 1))
    # optional trailing open block
    tail = draw(st.integers(min_value=0, max_value=max_block_size))
    for _ in range(tail):
        stream.append(KV(draw(keys), draw(values)))
    return stream


@st.composite
def example31_sequences(draw, max_len: int = 10):
    """Item sequences over the Example 3.1 alphabet with increasing
    marker timestamps."""
    length = draw(st.integers(min_value=0, max_value=max_len))
    items = []
    next_ts = 1
    for _ in range(length):
        if draw(st.booleans()):
            items.append(Item(M, draw(st.integers(min_value=0, max_value=9))))
        else:
            items.append(marker(next_ts))
            next_ts += 1
    return items


# Re-exported for the test modules; one canonical implementation lives
# beside the other sample-stream helpers.
from repro.operators.sampling import shuffle_within_blocks  # noqa: E402, F401
