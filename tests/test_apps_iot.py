"""The Section 2 motivation experiment: naive parallelization of the
order-sensitive pipeline is semantically unsound; the typed deployment
is interleaving-invariant."""

import pytest

from repro.apps.iot import (
    SensorWorkload,
    build_naive_topology,
    iot_typed_dag,
    iot_vertex_costs,
)
from repro.apps.iot.sensors import SensorReading, deserialize, serialize
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import evaluate_dag, typecheck_dag
from repro.operators.base import KV, Marker
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


@pytest.fixture(scope="module")
def workload():
    return SensorWorkload(n_sensors=3, duration=40, marker_period=10)


@pytest.fixture(scope="module")
def events(workload):
    return workload.events()


class TestWorkload:
    def test_serialization_round_trip(self):
        reading = SensorReading(2, 21.5, 17)
        assert deserialize(serialize(reading)) == reading

    def test_has_missing_points(self, workload):
        by_sensor = {}
        for reading in workload.readings():
            by_sensor.setdefault(reading.sensor_id, set()).add(reading.timestamp)
        assert any(
            len(stamps) < workload.duration for stamps in by_sensor.values()
        )

    def test_watermark_structure(self, workload, events):
        markers = [e.timestamp for e in events if isinstance(e, Marker)]
        assert markers == [10, 20, 30, 40]


class TestTypedPipeline:
    def test_typechecks(self):
        typecheck_dag(iot_typed_dag(parallelism=2))

    def test_interleaving_invariance(self, events):
        dag = iot_typed_dag(parallelism=2)
        expected = evaluate_dag(dag, {"SENSOR": events}).sink_trace("SINK", False)
        compiled = compile_dag(dag, {"SENSOR": source_from_events(events, 1)})
        traces = set()
        for seed in range(5):
            LocalRunner(compiled.topology, seed=seed).run()
            traces.add(
                events_to_trace(compiled.sinks["SINK"].aligned_events, False)
            )
        assert traces == {expected}

    def test_parallelism_does_not_change_output(self, events):
        base = None
        for parallelism in (1, 2, 4):
            dag = iot_typed_dag(parallelism=parallelism)
            trace = evaluate_dag(dag, {"SENSOR": events}).sink_trace("SINK", False)
            compiled = compile_dag(dag, {"SENSOR": source_from_events(events, 1)})
            LocalRunner(compiled.topology, seed=2).run()
            got = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
            assert got == trace
            if base is None:
                base = trace
            else:
                assert trace == base

    def test_cost_table(self):
        costs = iot_vertex_costs()
        assert costs["Map"] > costs["LI"]  # deserialization dominates


class TestNaivePipeline:
    def test_single_instance_is_deterministic(self, events):
        outputs = set()
        for seed in range(4):
            topology, _ = build_naive_topology(events, map_parallelism=1)
            report = LocalRunner(topology, seed=seed).run()
            outputs.add(tuple(map(repr, report.sink_events["SINK"])))
        assert len(outputs) == 1

    def test_parallel_maps_are_nondeterministic(self, events):
        """The paper's motivating failure: with Map replicated, outputs
        depend on the interleaving (seed)."""
        outputs = set()
        for seed in range(6):
            topology, _ = build_naive_topology(events, map_parallelism=2)
            report = LocalRunner(topology, seed=seed).run()
            outputs.add(tuple(map(repr, report.sink_events["SINK"])))
        assert len(outputs) > 1

    def test_parallel_maps_corrupt_results(self, events):
        """Disorder corrupts the interpolation: the averages the naive
        parallel pipeline reports differ from the correct (single-Map)
        results on some interleavings."""
        topology, _ = build_naive_topology(events, map_parallelism=1)
        baseline = LocalRunner(topology, seed=0).run()
        baseline_values = sorted(
            (e.key, e.value)
            for e in baseline.sink_events["SINK"]
            if isinstance(e, KV)
        )
        corrupted_somewhere = False
        for seed in range(6):
            topology, _ = build_naive_topology(events, map_parallelism=2)
            report = LocalRunner(topology, seed=seed).run()
            values = sorted(
                (e.key, e.value)
                for e in report.sink_events["SINK"]
                if isinstance(e, KV)
            )
            if values != baseline_values:
                corrupted_somewhere = True
        assert corrupted_somewhere
