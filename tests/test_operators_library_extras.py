"""Table 2's maxOfAvgPerID (verbatim) and session windows."""

import random

import pytest

from repro.operators.base import KV, Marker
from repro.operators.library import MaxOfAvgPerKey, Sessionize
from repro.operators.validate import validate_operator
from repro.traces.blocks import BlockTrace

from conftest import shuffle_within_blocks


def kvs(events):
    return [e for e in events if isinstance(e, KV)]


class TestMaxOfAvgPerKey:
    def test_table2_semantics(self):
        """Average per block, running max of averages, stamped ts-1."""
        op = MaxOfAvgPerKey()
        out = op.run([
            KV("s", 10.0), KV("s", 20.0), Marker(1),   # avg 15
            KV("s", 2.0), Marker(2),                   # avg 2, max stays 15
            KV("s", 40.0), Marker(3),                  # avg 40, new max
        ])
        assert kvs(out) == [
            KV("s", (15.0, 0)), KV("s", (15.0, 1)), KV("s", (40.0, 2)),
        ]

    def test_empty_block_keeps_state(self):
        op = MaxOfAvgPerKey()
        out = op.run([KV("s", 6.0), Marker(1), Marker(2)])
        assert kvs(out) == [KV("s", (6.0, 0)), KV("s", (6.0, 1))]

    def test_no_emission_before_any_data(self):
        op = MaxOfAvgPerKey()
        out = op.run([Marker(1)])
        assert kvs(out) == []

    def test_per_key_isolation(self):
        op = MaxOfAvgPerKey()
        out = op.run([KV("a", 1.0), KV("b", 9.0), Marker(1)])
        assert sorted((e.key, e.value[0]) for e in kvs(out)) == [
            ("a", 1.0), ("b", 9.0),
        ]

    def test_template_laws(self):
        validate_operator(MaxOfAvgPerKey())

    def test_consistency_under_block_shuffles(self):
        rng = random.Random(3)
        events = [
            KV("a", 5.0), KV("a", 7.0), KV("b", 1.0), Marker(1),
            KV("a", 2.0), KV("b", 8.0), KV("b", 2.0), Marker(2),
        ]
        base = BlockTrace.from_events(False, MaxOfAvgPerKey().run(events))
        for _ in range(6):
            shuffled = shuffle_within_blocks(events, rng)
            got = BlockTrace.from_events(False, MaxOfAvgPerKey().run(shuffled))
            assert got == base


class TestSessionize:
    def test_gap_closes_session(self):
        op = Sessionize(gap=2)
        out = op.run([
            KV("u", ("a", 1)), KV("u", ("b", 2)), KV("u", ("c", 7)),
        ])
        assert kvs(out) == [KV("u", (1, 2, ("a", "b")))]

    def test_watermark_flushes_final_session(self):
        op = Sessionize(gap=2)
        out = op.run([KV("u", ("a", 1)), Marker(10)])
        assert kvs(out) == [KV("u", (1, 1, ("a",)))]

    def test_marker_within_gap_keeps_session_open(self):
        op = Sessionize(gap=5)
        out = op.run([KV("u", ("a", 8)), Marker(10), KV("u", ("b", 11)), Marker(20)])
        assert kvs(out) == [KV("u", (8, 11, ("a", "b")))]

    def test_per_key_sessions(self):
        op = Sessionize(gap=1)
        out = op.run([
            KV("u1", ("x", 1)), KV("u2", ("y", 1)),
            KV("u1", ("x2", 5)), Marker(10),
        ])
        emitted = sorted((e.key, e.value) for e in kvs(out))
        assert emitted == [
            ("u1", (1, 1, ("x",))),
            ("u1", (5, 5, ("x2",))),
            ("u2", (1, 1, ("y",))),
        ]

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            Sessionize(gap=0)

    def test_key_preservation_holds(self):
        # OpKeyedOrdered enforcement is active: emit under the input key.
        op = Sessionize(gap=1)
        out = op.run([KV("k", ("v", 1)), Marker(5)])
        assert all(e.key == "k" for e in kvs(out))
