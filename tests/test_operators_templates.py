"""The Table 1 operator templates: behaviour and the Theorem 4.2
consistency guarantee (checked empirically over random shuffles)."""

import random

import pytest
from hypothesis import given, settings

from repro.errors import TraceTypeError
from repro.operators.base import KV, Marker
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.keyed_unordered import CommutativeMonoid, OpKeyedUnordered
from repro.operators.stateless import OpStateless, StatelessFn
from repro.traces.blocks import BlockTrace

from conftest import event_streams, shuffle_within_blocks


def run_to_trace(operator, events, ordered=False):
    return BlockTrace.from_events(ordered, operator.run(events))


# ----------------------------------------------------------------------
# OpStateless.
# ----------------------------------------------------------------------


class Project(OpStateless):
    def on_item(self, key, value, emit):
        if value % 2 == 0:
            emit(key, value * 10)


class TestOpStateless:
    def test_per_item_output(self):
        out = Project().run([KV("a", 2), KV("a", 3), Marker(1)])
        assert out == [KV("a", 20), Marker(1)]

    def test_markers_forwarded_exactly_once(self):
        out = Project().run([Marker(1), Marker(2)])
        assert out == [Marker(1), Marker(2)]

    def test_on_marker_may_emit(self):
        class Heartbeat(OpStateless):
            def on_item(self, key, value, emit):
                pass

            def on_marker(self, m, emit):
                emit("hb", m.timestamp)

        out = Heartbeat().run([KV("a", 1), Marker(5)])
        assert out == [KV("hb", 5), Marker(5)]

    def test_stateless_fn_adapter(self):
        double = StatelessFn(lambda k, v: [(k, 2 * v)], name="double")
        assert double.run([KV("x", 3)]) == [KV("x", 6)]
        assert double.name == "double"

    def test_stateless_fn_none_means_drop(self):
        drop = StatelessFn(lambda k, v: None)
        assert drop.run([KV("x", 3)]) == []

    @given(event_streams())
    @settings(max_examples=40)
    def test_consistency_under_block_shuffles(self, events):
        rng = random.Random(13)
        base = run_to_trace(Project(), events)
        for _ in range(5):
            shuffled = shuffle_within_blocks(events, rng)
            assert run_to_trace(Project(), shuffled) == base


# ----------------------------------------------------------------------
# OpKeyedOrdered.
# ----------------------------------------------------------------------


class Delta(OpKeyedOrdered):
    """Emit the difference between consecutive per-key values."""

    def init(self):
        return None

    def on_item(self, state, key, value, emit):
        if state is not None:
            emit(key, value - state)
        return value


class TestOpKeyedOrdered:
    def test_per_key_state_isolation(self):
        out = Delta().run([KV("a", 1), KV("b", 10), KV("a", 4), KV("b", 11)])
        assert out == [KV("a", 3), KV("b", 1)]

    def test_order_sensitivity(self):
        a = Delta().run([KV("a", 1), KV("a", 4)])
        b = Delta().run([KV("a", 4), KV("a", 1)])
        assert a != b  # ordered semantics: input order matters per key

    def test_key_preservation_enforced(self):
        class BadRekey(OpKeyedOrdered):
            def init(self):
                return None

            def on_item(self, state, key, value, emit):
                emit("other", value)
                return state

        with pytest.raises(TraceTypeError):
            BadRekey().run([KV("a", 1)])

    def test_on_marker_updates_state(self):
        class ResetAtMarker(OpKeyedOrdered):
            def init(self):
                return 0

            def on_item(self, state, key, value, emit):
                emit(key, state + value)
                return state + value

            def on_marker(self, state, key, m, emit):
                return 0

        out = ResetAtMarker().run([KV("a", 1), KV("a", 2), Marker(1), KV("a", 5)])
        assert out == [KV("a", 1), KV("a", 3), Marker(1), KV("a", 5)]

    def test_cross_key_interleaving_irrelevant(self):
        """Equivalent O inputs (same per-key order) give equivalent outputs."""
        a = [KV("a", 1), KV("b", 5), KV("a", 2), KV("b", 6), Marker(1)]
        b = [KV("b", 5), KV("b", 6), KV("a", 1), KV("a", 2), Marker(1)]
        ta = BlockTrace.from_events(True, Delta().run(a))
        tb = BlockTrace.from_events(True, Delta().run(b))
        assert ta == tb


# ----------------------------------------------------------------------
# OpKeyedUnordered (the Table 3 algorithm).
# ----------------------------------------------------------------------


class BlockSum(OpKeyedUnordered):
    """Running per-key sum over whole history, emitted at each marker."""

    def fold_in(self, key, value):
        return value

    def identity(self):
        return 0

    def combine(self, x, y):
        return x + y

    def init(self):
        return 0

    def update_state(self, old_state, agg):
        return old_state + agg

    def on_marker(self, new_state, key, m, emit):
        emit(key, new_state)


class TestOpKeyedUnordered:
    def test_basic_aggregation(self):
        out = BlockSum().run(
            [KV("a", 1), KV("a", 2), KV("b", 5), Marker(1), KV("a", 4), Marker(2)]
        )
        trace = BlockTrace.from_events(False, out)
        expected = BlockTrace.from_events(
            False, [("a", 3), ("b", 5), ("#", 1), ("a", 7), ("b", 5), ("#", 2)]
        )
        assert trace == expected

    def test_item_processing_does_not_update_state(self):
        """on_item must see only the last marker snapshot (Table 1)."""
        snapshots = []

        class Spy(BlockSum):
            def on_item(self, last_state, key, value, emit):
                snapshots.append(last_state)

        Spy().run([KV("a", 1), KV("a", 2), Marker(1), KV("a", 9)])
        assert snapshots == [0, 0, 3]

    def test_start_state_advances_for_late_keys(self):
        """Table 3's startS: a key first seen after k markers starts from
        initialState advanced by k empty aggregates."""

        class CountBlocks(OpKeyedUnordered):
            def fold_in(self, key, value):
                return 0

            def identity(self):
                return 0

            def combine(self, x, y):
                return x + y

            def init(self):
                return 0

            def update_state(self, old_state, agg):
                return old_state + 1  # counts markers survived

            def on_marker(self, new_state, key, m, emit):
                emit(key, new_state)

        out = CountBlocks().run(
            [KV("a", 1), Marker(1), Marker(2), KV("b", 1), Marker(3)]
        )
        # At marker 3, key "a" has survived 3 markers; key "b" was first
        # seen after 2 markers and must also report 3 (startS advanced).
        last_block = [e for e in out if isinstance(e, KV) and e.key == "b"]
        assert last_block == [KV("b", 3)]
        a_values = [e.value for e in out if isinstance(e, KV) and e.key == "a"]
        assert a_values == [1, 2, 3]

    @given(event_streams())
    @settings(max_examples=40)
    def test_consistency_under_block_shuffles(self, events):
        rng = random.Random(29)
        base = run_to_trace(BlockSum(), events)
        for _ in range(5):
            shuffled = shuffle_within_blocks(events, rng)
            assert run_to_trace(BlockSum(), shuffled) == base

    def test_monoid_spot_check(self):
        monoid = BlockSum().monoid()
        assert monoid.spot_check([0, 1, 5, -3])
        bad = CommutativeMonoid(0, lambda x, y: x - y)
        assert not bad.spot_check([1, 2])

    def test_monoid_fold(self):
        assert BlockSum().monoid().fold([1, 2, 3]) == 6
