"""The derived operator library: maps, filters, window aggregates, joins."""

import pytest

from repro.operators.base import KV, Marker
from repro.operators.library import (
    KeyedSequenceOp,
    RunningAggregate,
    SlidingAggregate,
    TableJoin,
    TumblingAggregate,
    filter_items,
    flat_map,
    map_pairs,
    map_values,
    rekey,
    sliding_count,
    tumbling_count,
)


def kvs(events):
    return [e for e in events if isinstance(e, KV)]


class TestStatelessHelpers:
    def test_map_values(self):
        op = map_values(lambda v: v + 1)
        assert op.run([KV("a", 1)]) == [KV("a", 2)]

    def test_map_pairs(self):
        op = map_pairs(lambda k, v: (v, k))
        assert op.run([KV("a", 1)]) == [KV(1, "a")]

    def test_filter_items(self):
        op = filter_items(lambda k, v: v > 0)
        assert op.run([KV("a", 1), KV("a", -1)]) == [KV("a", 1)]

    def test_rekey(self):
        op = rekey(lambda k, v: v % 2)
        assert op.run([KV("x", 3)]) == [KV(1, 3)]

    def test_flat_map(self):
        op = flat_map(lambda k, v: [(k, i) for i in range(v)])
        assert op.run([KV("a", 3)]) == [KV("a", 0), KV("a", 1), KV("a", 2)]

    def test_table_join_drop_and_enrich(self):
        table = {"x": 10}
        op = TableJoin(
            lambda k, v: [(k, table[v])] if v in table else [], name="join"
        )
        assert op.run([KV("a", "x"), KV("a", "missing")]) == [KV("a", 10)]


class TestTumbling:
    def test_counts_per_block(self):
        op = tumbling_count()
        out = op.run([KV("a", 1), KV("a", 2), Marker(1), KV("a", 3), Marker(2)])
        assert kvs(out) == [KV("a", 2), KV("a", 1)]

    def test_no_emission_for_idle_keys(self):
        op = tumbling_count()
        out = op.run([KV("a", 1), Marker(1), KV("b", 1), Marker(2)])
        # Block 2 must report b only; a was idle.
        block2 = kvs(out[out.index(Marker(1)) + 1 :])
        assert block2 == [KV("b", 1)]

    def test_emit_empty_flag(self):
        op = TumblingAggregate(
            inject=lambda k, v: 1,
            identity_elem=0,
            combine_fn=lambda x, y: x + y,
            finish=lambda key, total, ts: total,
            emit_empty=True,
        )
        out = op.run([KV("a", 1), Marker(1), Marker(2)])
        assert kvs(out) == [KV("a", 1), KV("a", 0)]

    def test_finish_none_suppresses(self):
        op = TumblingAggregate(
            inject=lambda k, v: v,
            identity_elem=0,
            combine_fn=lambda x, y: x + y,
            finish=lambda key, total, ts: total if total > 5 else None,
        )
        out = op.run([KV("a", 3), Marker(1), KV("a", 9), Marker(2)])
        assert kvs(out) == [KV("a", 9)]

    def test_finish_sees_marker_timestamp(self):
        stamps = []
        op = TumblingAggregate(
            inject=lambda k, v: 1,
            identity_elem=0,
            combine_fn=lambda x, y: x + y,
            finish=lambda key, total, ts: stamps.append(ts),
        )
        op.run([KV("a", 1), Marker(42)])
        assert stamps == [42]


class TestSliding:
    def test_window_spans_blocks(self):
        op = sliding_count(3)
        out = op.run(
            [KV("a", 1), Marker(1), KV("a", 1), Marker(2), Marker(3), Marker(4), Marker(5)]
        )
        assert kvs(out) == [KV("a", 1), KV("a", 2), KV("a", 2), KV("a", 1)]
        # window [2,3,4] still holds the block-2 item; [3,4,5] holds none.

    def test_window_one_equals_tumbling(self):
        events = [KV("a", 2), Marker(1), KV("a", 5), KV("a", 1), Marker(2)]
        sliding = sliding_count(1).run(events)
        tumbling = tumbling_count().run(events)
        assert kvs(sliding) == kvs(tumbling)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_count(0)


class TestRunning:
    def test_whole_history(self):
        op = RunningAggregate(
            inject=lambda k, v: v,
            identity_elem=0,
            combine_fn=lambda x, y: x + y,
            finish=lambda key, total, ts: total,
        )
        out = op.run([KV("a", 2), Marker(1), KV("a", 3), Marker(2), Marker(3)])
        assert kvs(out) == [KV("a", 2), KV("a", 5), KV("a", 5)]


class TestKeyedSequenceOp:
    def test_step_function_adapter(self):
        op = KeyedSequenceOp(
            initial=lambda: 0,
            step=lambda state, value: (state + value, [state + value]),
        )
        out = op.run([KV("a", 1), KV("a", 2), KV("b", 10)])
        assert out == [KV("a", 1), KV("a", 3), KV("b", 10)]

    def test_marker_step(self):
        op = KeyedSequenceOp(
            initial=lambda: 0,
            step=lambda state, value: (state + value, []),
            marker_step=lambda state, ts: (0, [state]),
        )
        out = op.run([KV("a", 5), Marker(1), KV("a", 2), Marker(2)])
        assert kvs(out) == [KV("a", 5), KV("a", 2)]
