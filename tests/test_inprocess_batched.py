"""The in-process backend's batched path and worklist regressions.

Covers the epoch-batched execution mode of
:class:`~repro.compiler.inprocess.InProcessPipeline` (``batched=True``)
and two fixed engine bugs:

- ``_push_edge`` used to move events by *recursion*, so a pipeline
  deeper than the interpreter's recursion limit crashed with
  ``RecursionError`` — it now uses an iterative worklist;
- ``run`` used to keep polling exhausted sources in its round-robin,
  turning wildly skewed source lengths into quadratic busy-looping —
  exhausted sources now drop out of the rotation.
"""

from __future__ import annotations

import random
import sys

from repro.compiler.inprocess import compile_inprocess
from repro.dag import TransductionDAG, evaluate_dag
from repro.operators.base import KV, Marker
from repro.operators.library import map_values, rekey, tumbling_count
from repro.operators.merge import Merge
from repro.operators.sort import SortOp
from repro.storm.local import events_to_trace
from repro.traces.trace_type import unordered_type

U = unordered_type()


def random_stream(seed: int, n_blocks: int = 4):
    rng = random.Random(seed)
    stream = []
    for block in range(1, n_blocks + 1):
        for _ in range(rng.randrange(10)):
            stream.append(KV(rng.choice("abc"), rng.randrange(9)))
        stream.append(Marker(block))
    return stream


def chain_dag(depth: int) -> TransductionDAG:
    dag = TransductionDAG(f"chain-{depth}")
    upstream = dag.add_source("src", output_type=U)
    for i in range(depth):
        upstream = dag.add_op(
            map_values(lambda v: v + 1, name=f"inc{i}"),
            upstream=[upstream], edge_types=[None],
        )
    dag.add_sink("out", upstream=upstream)
    return dag


def mixed_dag() -> TransductionDAG:
    """Two sources, an explicit merge, and a keyed/sorted tail."""
    dag = TransductionDAG("mixed")
    a = dag.add_source("a", output_type=U)
    b = dag.add_source("b", output_type=U)
    merged = dag.add_merge(Merge(2), upstream=[a, b])
    v = dag.add_op(
        rekey(lambda k, v: v % 2, name="rk"), upstream=[merged],
        edge_types=[None],
    )
    v = dag.add_op(tumbling_count("tc"), upstream=[v], edge_types=[None])
    v = dag.add_op(
        SortOp(sort_key=lambda v: v, name="srt"), upstream=[v],
        edge_types=[None],
    )
    dag.add_sink("out", upstream=v)
    return dag


class TestDeepChainRegression:
    def test_chain_deeper_than_recursion_limit(self):
        depth = sys.getrecursionlimit() + 100
        pipeline = compile_inprocess(chain_dag(depth))
        pipeline.push("src", KV("a", 0))
        pipeline.push("src", Marker(1))
        assert pipeline.outputs("out") == [KV("a", depth), Marker(1)]

    def test_deep_chain_batched(self):
        depth = sys.getrecursionlimit() + 100
        pipeline = compile_inprocess(chain_dag(depth), batched=True)
        out = pipeline.run({"src": [KV("a", 0), KV("b", 1), Marker(1)]})
        assert out["out"] == [KV("a", depth), KV("b", depth + 1), Marker(1)]


class TestSkewedSources:
    def test_exhausted_sources_leave_rotation(self):
        dag = mixed_dag()
        short = [KV("a", 1), Marker(1), Marker(2), Marker(3)]
        long = random_stream(5, n_blocks=3) + [
            KV("b", k % 7) for k in range(500)
        ] + [Marker(4)]
        # The short source is exhausted after 4 events; the run must
        # still drain the long one completely (and quickly).
        base = evaluate_dag(dag, {"a": short, "b": long}).sink_trace(
            "out", True
        )
        for batched in (False, True):
            pipeline = compile_inprocess(dag, batched=batched)
            out = pipeline.run({"a": short, "b": long})
            assert events_to_trace(out["out"], True) == base

    def test_empty_source_stream(self):
        dag = mixed_dag()
        pipeline = compile_inprocess(dag)
        out = pipeline.run({"a": [], "b": []})
        assert out["out"] == []


class TestBatchedParity:
    def test_batched_matches_serial_and_denotation(self):
        dag_builders = [lambda: chain_dag(3), mixed_dag]
        for build in dag_builders:
            for seed in range(4):
                streams = {
                    name: random_stream(seed * 13 + i)
                    for i, name in enumerate(
                        s.name for s in build().sources()
                    )
                }
                base = evaluate_dag(build(), streams).sink_trace("out", False)
                serial = compile_inprocess(build()).run(streams)
                batched = compile_inprocess(build(), batched=True).run(streams)
                assert events_to_trace(serial["out"], False) == base
                assert events_to_trace(batched["out"], False) == base

    def test_push_and_push_batch_mix(self):
        dag = chain_dag(2)
        stream = random_stream(9)
        serial = compile_inprocess(dag)
        for event in stream:
            serial.push("src", event)
        mixed = compile_inprocess(dag)
        mixed.push_batch("src", stream[:3])
        for event in stream[3:5]:
            mixed.push("src", event)
        mixed.push_batch("src", stream[5:])
        assert mixed.outputs("out") == serial.outputs("out")

    def test_merge_vertex_batched(self):
        merge = Merge(2)
        assert merge.n_inputs == 2  # sanity: explicit merge in mixed_dag
        dag = mixed_dag()
        streams = {"a": random_stream(1), "b": random_stream(2)}
        base = evaluate_dag(dag, streams).sink_trace("out", True)
        batched = compile_inprocess(dag, batched=True).run(streams)
        assert events_to_trace(batched["out"], True) == base
