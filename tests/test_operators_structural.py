"""Structural operators: MRG, RR, HASH, UNQ, SORT, identity — including
the splitter law SPLIT >> MRG = id (Section 4)."""

import random

import pytest
from hypothesis import given, settings

from repro.errors import SimulationError
from repro.operators.base import KV, Marker
from repro.operators.identity import IdentityOp, identity_op
from repro.operators.merge import Merge
from repro.operators.sort import SortOp
from repro.operators.split import (
    HashSplit,
    RoundRobinSplit,
    Splitter,
    UnqSplit,
    default_key_hash,
)
from repro.traces.blocks import BlockTrace

from conftest import event_streams


def run_splitter(splitter, events):
    """Split an event list into per-channel lists."""
    state = splitter.initial_state()
    channels = [[] for _ in range(splitter.n_outputs)]
    for event in events:
        for channel, out in splitter.handle(state, event):
            channels[channel].append(out)
    return channels


def run_merge(merge, channels, rng=None):
    """Merge per-channel lists with a (seeded) random interleaving."""
    state = merge.initial_state()
    cursors = [0] * len(channels)
    out = []
    rng = rng or random.Random(0)
    while any(cursors[i] < len(channels[i]) for i in range(len(channels))):
        live = [i for i in range(len(channels)) if cursors[i] < len(channels[i])]
        i = rng.choice(live)
        out.extend(merge.handle(state, i, channels[i][cursors[i]]))
        cursors[i] += 1
    return out


class TestMerge:
    def test_single_channel_passthrough(self):
        m = Merge(1)
        state = m.initial_state()
        out = []
        for event in [KV("a", 1), Marker(1), KV("a", 2)]:
            out.extend(m.handle(state, 0, event))
        assert out == [KV("a", 1), Marker(1), KV("a", 2)]

    def test_marker_alignment(self):
        m = Merge(2)
        state = m.initial_state()
        out = []
        out += m.handle(state, 0, Marker(1))
        assert out == []  # channel 1 has not delivered marker 1 yet
        out += m.handle(state, 1, KV("b", 1))
        out += m.handle(state, 1, Marker(1))
        assert out == [KV("b", 1), Marker(1)]

    def test_items_from_ahead_channel_buffered(self):
        m = Merge(2)
        state = m.initial_state()
        out = []
        out += m.handle(state, 0, Marker(1))
        out += m.handle(state, 0, KV("a", 99))  # belongs to block 2
        assert out == []
        out += m.handle(state, 1, Marker(1))
        assert out == [Marker(1), KV("a", 99)]

    def test_multiple_blocks_ahead(self):
        m = Merge(2)
        state = m.initial_state()
        out = []
        for ts in (1, 2, 3):
            out += m.handle(state, 0, KV("a", ts))
            out += m.handle(state, 0, Marker(ts))
        assert out == [KV("a", 1)]
        for ts in (1, 2, 3):
            out += m.handle(state, 1, Marker(ts))
        markers = [e for e in out if isinstance(e, Marker)]
        assert markers == [Marker(1), Marker(2), Marker(3)]
        values = [e.value for e in out if isinstance(e, KV)]
        assert values == [1, 2, 3]

    def test_misaligned_timestamps_detected(self):
        m = Merge(2)
        state = m.initial_state()
        m.handle(state, 0, Marker(1))
        with pytest.raises(SimulationError):
            m.handle(state, 1, Marker(7))

    def test_channel_out_of_range(self):
        m = Merge(2)
        with pytest.raises(SimulationError):
            m.handle(m.initial_state(), 5, KV("a", 1))

    def test_at_least_one_input(self):
        with pytest.raises(ValueError):
            Merge(0)

    @given(event_streams())
    @settings(max_examples=40)
    def test_merge_output_interleaving_invariant(self, events):
        """Any interleaving of the same channels yields the same trace."""
        channels = run_splitter(RoundRobinSplit(3), events)
        base = None
        for seed in range(4):
            out = run_merge(Merge(3), channels, random.Random(seed))
            trace = BlockTrace.from_events(False, out)
            if base is None:
                base = trace
            else:
                assert trace == base


class TestSplitters:
    def test_round_robin_balances(self):
        events = [KV("k", i) for i in range(9)]
        channels = run_splitter(RoundRobinSplit(3), events)
        assert [len(c) for c in channels] == [3, 3, 3]

    def test_markers_broadcast(self):
        channels = run_splitter(RoundRobinSplit(2), [KV("a", 1), Marker(1)])
        assert Marker(1) in channels[0] and Marker(1) in channels[1]

    def test_hash_split_keeps_keys_together(self):
        events = [KV(k, i) for i in range(20) for k in ("a", "b", "c")]
        channels = run_splitter(HashSplit(4), events)
        for key in ("a", "b", "c"):
            hosting = [
                i
                for i, channel in enumerate(channels)
                if any(isinstance(e, KV) and e.key == key for e in channel)
            ]
            assert len(hosting) == 1

    def test_hash_split_deterministic(self):
        events = [KV("a", 1), KV("b", 2)]
        assert run_splitter(HashSplit(3), events) == run_splitter(
            HashSplit(3), events
        )

    def test_unq_routes_everything_to_zero(self):
        channels = run_splitter(UnqSplit(3), [KV("a", 1), KV("b", 2), Marker(1)])
        assert [e for e in channels[1] if isinstance(e, KV)] == []
        assert len([e for e in channels[0] if isinstance(e, KV)]) == 2

    def test_splitter_requires_positive_fanout(self):
        with pytest.raises(ValueError):
            RoundRobinSplit(0)

    @given(event_streams())
    @settings(max_examples=40)
    def test_split_then_merge_is_identity_rr(self, events):
        channels = run_splitter(RoundRobinSplit(3), events)
        merged = run_merge(Merge(3), channels, random.Random(2))
        assert BlockTrace.from_events(False, merged) == BlockTrace.from_events(
            False, events
        )

    @given(event_streams())
    @settings(max_examples=40)
    def test_split_then_merge_is_identity_hash(self, events):
        channels = run_splitter(HashSplit(3), events)
        merged = run_merge(Merge(3), channels, random.Random(2))
        assert BlockTrace.from_events(False, merged) == BlockTrace.from_events(
            False, events
        )

    def test_default_key_hash_stability(self):
        # Known FNV-1a-derived values must be stable across runs/platforms.
        assert default_key_hash("a") == default_key_hash("a")
        assert default_key_hash(("x", 1)) == default_key_hash(("x", 1))
        assert default_key_hash("a") != default_key_hash("b")


class TestSort:
    def test_sorts_per_key_between_markers(self):
        op = SortOp()
        out = op.run(
            [KV("a", 3), KV("a", 1), KV("b", 2), Marker(1), KV("a", 9), Marker(2)]
        )
        a_values = [e.value for e in out if isinstance(e, KV) and e.key == "a"]
        assert a_values == [1, 3, 9]

    def test_custom_sort_key(self):
        op = SortOp(sort_key=lambda v: v[1])
        out = op.run([KV("a", ("x", 9)), KV("a", ("y", 1)), Marker(1)])
        assert [e.value for e in out if isinstance(e, KV)] == [("y", 1), ("x", 9)]

    def test_output_canonical_under_input_shuffle(self):
        events = [KV("a", 3), KV("b", 7), KV("a", 1), Marker(1)]
        shuffled = [KV("a", 1), KV("a", 3), KV("b", 7), Marker(1)]
        assert SortOp().run(events) == SortOp().run(shuffled)

    def test_does_not_emit_before_marker(self):
        op = SortOp()
        state = op.initial_state()
        assert op.handle(state, KV("a", 1)) == []
        out = op.handle(state, Marker(1))
        assert out == [KV("a", 1), Marker(1)]

    def test_duplicate_sort_keys_stable_canonical(self):
        out1 = SortOp(sort_key=lambda v: 0).run([KV("a", 2), KV("a", 1), Marker(1)])
        out2 = SortOp(sort_key=lambda v: 0).run([KV("a", 1), KV("a", 2), Marker(1)])
        assert out1 == out2


class TestIdentity:
    def test_passthrough(self):
        events = [KV("a", 1), Marker(1)]
        assert identity_op().run(events) == events

    def test_kind_polymorphic(self):
        assert IdentityOp.input_kind is None
        assert IdentityOp.output_kind is None
