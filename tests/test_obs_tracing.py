"""Marker-epoch tracing: span-tree well-formedness and export formats.

The key structural invariants:

- every epoch opened by a marker arrival is closed (aligned runs close
  them via release; `finalize` closes stragglers flagged `unaligned`);
- fused-member spans nest within their task's busy (exec) intervals;
- exports are valid (JSONL passes the schema validator, the Chrome
  trace is a loadable Trace Event Format object).
"""

import json

import pytest

from repro.apps.iot import SensorWorkload, iot_typed_dag
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.obs import ObsContext, Tracer
from repro.obs.schema import TraceSchemaError, validate_jsonl
from repro.obs.tracing import CAT_EPOCH, CAT_EXEC, CAT_MEMBER
from repro.storm.local import LocalRunner


@pytest.fixture(scope="module")
def traced_run():
    """One instrumented compiled-topology run shared by the assertions."""
    events = SensorWorkload().events()
    dag = iot_typed_dag(parallelism=2)
    compiled = compile_dag(dag, {"SENSOR": source_from_events(events, 2)})
    obs = ObsContext.collecting()
    report = LocalRunner(compiled.topology, seed=2, obs=obs).run()
    return obs, report


class TestSpanTree:
    def test_every_epoch_closed(self, traced_run):
        obs, _ = traced_run
        assert obs.tracer.open_epoch_count() == 0
        epochs = obs.tracer.spans_by_cat(CAT_EPOCH)
        assert epochs, "a marker-bearing run must produce epoch spans"
        for span in epochs:
            assert span.end >= span.start
            assert "epoch" in span.args

    def test_workload_epochs_all_aligned(self, traced_run):
        """This workload drains fully, so no epoch may end unaligned."""
        obs, _ = traced_run
        unaligned = [
            s for s in obs.tracer.spans_by_cat(CAT_EPOCH)
            if s.args.get("unaligned")
        ]
        assert unaligned == []

    def test_epoch_count_matches_marker_structure(self, traced_run):
        """Each frontend task closes one epoch per aligned marker."""
        obs, report = traced_run
        epochs = obs.tracer.spans_by_cat(CAT_EPOCH)
        per_task = {}
        for span in epochs:
            key = (span.component, span.task_index)
            per_task[key] = per_task.get(key, 0) + 1
        n_markers = len(report.marker_emit_times)
        assert n_markers > 0
        for key, count in per_task.items():
            assert count == n_markers, (
                f"task {key} closed {count} epochs, expected {n_markers}"
            )

    def test_member_spans_nest_in_exec_spans(self, traced_run):
        obs, _ = traced_run
        execs = {}
        for span in obs.tracer.spans_by_cat(CAT_EXEC):
            execs.setdefault((span.component, span.task_index), []).append(
                (span.start, span.end)
            )
        members = obs.tracer.spans_by_cat(CAT_MEMBER)
        assert members, "compiled bolts must produce member spans"
        eps = 1e-12
        for span in members:
            intervals = execs[(span.component, span.task_index)]
            assert any(
                s - eps <= span.start and span.end <= e + eps
                for s, e in intervals
            ), f"member span {span} outside every exec span"

    def test_spans_fit_in_makespan(self, traced_run):
        obs, report = traced_run
        for span in obs.tracer.spans:
            assert span.start >= 0.0
            assert span.end <= report.makespan + 1e-12

    def test_exec_spans_of_one_task_do_not_overlap(self, traced_run):
        """Tasks are single-threaded: busy intervals must be disjoint."""
        obs, _ = traced_run
        by_task = {}
        for span in obs.tracer.spans_by_cat(CAT_EXEC):
            by_task.setdefault((span.component, span.task_index), []).append(span)
        for spans in by_task.values():
            spans.sort(key=lambda s: s.start)
            for a, b in zip(spans, spans[1:]):
                assert a.end <= b.start + 1e-12


class TestFinalize:
    def test_finalize_closes_open_epochs_as_unaligned(self):
        tracer = Tracer()
        tracer.epoch_arrival("bolt", 0, 1, "t1", 1.0)
        tracer.epoch_arrival("bolt", 1, 1, "t1", 2.0)
        tracer.epoch_release("bolt", 0, "t1", 3.0)
        tracer.finalize(10.0)
        assert tracer.open_epoch_count() == 0
        unaligned = [s for s in tracer.spans_by_cat(CAT_EPOCH)
                     if s.args.get("unaligned")]
        assert len(unaligned) == 1
        assert unaligned[0].task_index == 1
        assert unaligned[0].end == 10.0

    def test_release_returns_wait(self):
        tracer = Tracer()
        tracer.epoch_arrival("bolt", 0, 1, "t1", 1.5)
        wait = tracer.epoch_release("bolt", 0, "t1", 4.0)
        assert wait == pytest.approx(2.5)

    def test_release_without_arrival_is_zero_length(self):
        tracer = Tracer()
        wait = tracer.epoch_release("bolt", 0, "t1", 4.0)
        assert wait == 0.0
        (span,) = tracer.spans_by_cat(CAT_EPOCH)
        assert span.start == span.end == 4.0


class TestExports:
    def test_jsonl_passes_schema(self, traced_run, tmp_path):
        obs, _ = traced_run
        path = tmp_path / "trace.jsonl"
        obs.tracer.write_jsonl(str(path))
        count = validate_jsonl(str(path))
        assert count == len(obs.tracer.spans) + len(obs.tracer.samples)

    def test_schema_rejects_bad_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "span", "name": "x"}) + "\n")
        with pytest.raises(TraceSchemaError):
            validate_jsonl(str(path))

    def test_schema_rejects_inverted_span(self, tmp_path):
        record = {
            "type": "span", "name": "x", "cat": "exec", "component": "c",
            "task": 0, "machine": 0, "start": 2.0, "end": 1.0, "args": {},
        }
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TraceSchemaError):
            validate_jsonl(str(path))

    def test_schema_rejects_orphan_member_span(self, tmp_path):
        record = {
            "type": "span", "name": "x", "cat": "member", "component": "c",
            "task": 0, "machine": 0, "start": 0.0, "end": 1.0, "args": {},
        }
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TraceSchemaError):
            validate_jsonl(str(path))

    def test_chrome_trace_shape(self, traced_run, tmp_path):
        obs, _ = traced_run
        path = tmp_path / "trace.json"
        obs.tracer.write_chrome_trace(str(path))
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "X" in phases      # complete spans
        assert "C" in phases      # counter timelines
        assert "M" in phases      # process/thread names
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert {"name", "cat", "ts", "pid", "tid"} <= set(event)

    def test_chrome_trace_microsecond_scale(self, traced_run):
        """Simulated seconds must be exported as microseconds."""
        obs, report = traced_run
        data = obs.tracer.chrome_trace()
        max_ts = max(
            (e["ts"] for e in data["traceEvents"] if e["ph"] == "X"),
            default=0.0,
        )
        assert max_ts <= report.makespan * 1e6 + 1e-6


class TestStallReport:
    def test_ranks_by_stall_and_flags_skew(self, traced_run):
        obs, report = traced_run
        diag = obs.stall_report(report.makespan)
        stalls = [row.stall_seconds for row in diag.rows]
        assert stalls == sorted(stalls, reverse=True)
        text = diag.format()
        assert "Stall diagnostics" in text
        assert "stall/cpu" in text
        payload = diag.to_dict()
        assert payload["makespan"] == report.makespan
        assert payload["rows"]

    def test_cpu_matches_exec_spans(self, traced_run):
        obs, _ = traced_run
        diag = obs.stall_report()
        for row in diag.rows:
            total = sum(
                s.duration() for s in obs.tracer.spans_by_cat(CAT_EXEC)
                if s.component == row.component
            )
            assert row.cpu_seconds == pytest.approx(total)
