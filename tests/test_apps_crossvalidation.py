"""Differential testing of hand-crafted vs. compiled implementations.

Queries whose hand-crafted form buckets by *data* (event time) agree
with the compiled traces exactly.  Queries whose hand-crafted form
snapshots running state at marker arrival (II, III, VI) are only
*eventually* equal: the hand-rolled tracker forwards markers correctly
but does not buffer data that races ahead of a not-yet-complete marker,
so mid-stream block attribution drifts with the interleaving — the very
fragility of "practical fixes" that Section 2 describes.  The typed
pipeline's merge frontend buffers per channel and has no such drift.
"""

import pytest

from repro.apps.yahoo.events import YahooWorkload
from repro.apps.yahoo.handcrafted import HANDCRAFTED_BUILDERS
from repro.apps.yahoo.queries import QUERY_BUILDERS
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


@pytest.fixture(scope="module")
def workload():
    return YahooWorkload(
        seconds=4, events_per_second=150, n_campaigns=6, ads_per_campaign=5,
        n_users=40, n_locations=4,
    )


def compiled_trace(workload, query, events, parallelism=2, seed=1):
    builder, _ = QUERY_BUILDERS[query]
    dag = builder(workload.make_database(), parallelism=parallelism)
    compiled = compile_dag(
        dag, {"events": source_from_events(events, parallelism=2)}
    )
    LocalRunner(compiled.topology, seed=seed).run()
    return events_to_trace(compiled.sinks["SINK"].aligned_events, False)


def handcrafted_trace(workload, query, events, parallelism=2, seed=1):
    topology, sink = HANDCRAFTED_BUILDERS[query](
        workload.make_database(), events, parallelism=parallelism, spouts=2
    )
    LocalRunner(topology, seed=seed).run()
    return events_to_trace(sink.aligned_events, False)


#: Hand-crafted implementations that bucket by event time (data-driven):
#: exact trace equality with the compiled pipeline.
EXACTLY_COMPARABLE = ["IV", "V"]

#: Hand-crafted implementations that snapshot running state at markers:
#: equal once all data has drained (the final block), drifting before.
EVENTUALLY_COMPARABLE = ["II", "III"]

#: Stateless pass-through (Query I): per-item outputs are identical but
#: block attribution drifts with racing data, so only the overall
#: multiset of enriched items is comparable.
CONTENT_COMPARABLE = ["I"]


@pytest.mark.parametrize("query", EXACTLY_COMPARABLE)
def test_data_driven_queries_agree_exactly(query, workload):
    events = workload.events()
    left = compiled_trace(workload, query, events)
    right = handcrafted_trace(workload, query, events)
    assert left == right, f"query {query}: implementations disagree"


@pytest.mark.parametrize("query", EXACTLY_COMPARABLE)
def test_exact_agreement_is_parallelism_independent(query, workload):
    events = workload.events()
    reference = compiled_trace(workload, query, events, parallelism=1)
    for parallelism in (2, 4):
        assert compiled_trace(workload, query, events, parallelism) == reference
        assert handcrafted_trace(workload, query, events, parallelism) == reference


@pytest.mark.parametrize("query", EVENTUALLY_COMPARABLE)
def test_snapshot_queries_agree_on_final_block(query, workload):
    """Per-link FIFO guarantees each stage's marker N follows its data,
    so by the time the hand tracker completes the last marker all counts
    have landed: the final blocks must coincide."""
    events = workload.events()
    left = compiled_trace(workload, query, events)
    right = handcrafted_trace(workload, query, events)
    final = workload.seconds - 1
    assert left.blocks[final] == right.blocks[final]


@pytest.mark.parametrize("query", CONTENT_COMPARABLE)
def test_stateless_queries_agree_on_content(query, workload):
    """Every enriched item appears in both outputs with the same
    multiplicity; only its block attribution drifts on the hand side."""
    from collections import Counter

    events = workload.events()
    left = compiled_trace(workload, query, events)
    right = handcrafted_trace(workload, query, events)

    def content(trace):
        return Counter(p for block in trace.blocks for p in block.pairs())

    assert content(left) == content(right)
    assert left.num_markers() == right.num_markers()


def test_handcrafted_snapshots_drift_with_interleaving(workload):
    """The fragility itself: Query III's hand-crafted mid-stream blocks
    depend on the interleaving seed, while the compiled pipeline's do
    not — Section 2's argument, measured."""
    events = workload.events()
    hand = {handcrafted_trace(workload, "III", events, seed=s) for s in range(4)}
    compiled = {compiled_trace(workload, "III", events, seed=s) for s in range(4)}
    assert len(compiled) == 1, "typed pipeline must be interleaving-invariant"
    assert len(hand) > 1, (
        "hand-rolled marker tracking is expected to mis-bucket under "
        "racing interleavings; if this starts passing, the hand-crafted "
        "baseline has silently become alignment-exact"
    )
