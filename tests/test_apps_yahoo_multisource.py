"""The Figure 3 multi-source form of Query IV, and hand-vs-generated
cross-validation on persisted state (Query II)."""

import pytest

from repro.apps.yahoo.events import YahooWorkload
from repro.apps.yahoo.handcrafted import handcrafted_query2
from repro.apps.yahoo.queries import query2, query4, query4_multi_source
from repro.compiler import compile_dag
from repro.compiler.compile import SourceSpec, source_from_events
from repro.dag import evaluate_dag
from repro.operators.base import KV, Marker
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


@pytest.fixture(scope="module")
def workload():
    return YahooWorkload(
        seconds=4, events_per_second=120, n_campaigns=6, ads_per_campaign=5,
        n_users=30,
    )


def split_stream(events, n_sources):
    """Partition data across N sources; every source gets all markers."""
    parts = [[] for _ in range(n_sources)]
    data_seen = 0
    for event in events:
        if isinstance(event, Marker):
            for part in parts:
                part.append(event)
        else:
            parts[data_seen % n_sources].append(event)
            data_seen += 1
    return parts


class TestFigure3MultiSource:
    def test_equals_single_source_denotation(self, workload):
        """The Figure 3 DAG over N sources computes the same trace as the
        single-source Query IV over the union stream."""
        events = workload.events()
        single = query4(workload.make_database(), parallelism=1)
        expected = evaluate_dag(single, {"events": events}).sink_trace(
            "SINK", False
        )

        n_sources = 3
        parts = split_stream(events, n_sources)
        multi = query4_multi_source(
            workload.make_database(), n_sources, parallelism=2
        )
        inputs = {f"Yahoo{i}": parts[i] for i in range(n_sources)}
        got = evaluate_dag(multi, inputs).sink_trace("SINK", False)
        assert got == expected

    def test_compiled_multi_source(self, workload):
        events = workload.events()
        n_sources = 2
        parts = split_stream(events, n_sources)
        single = query4(workload.make_database(), parallelism=1)
        expected = evaluate_dag(single, {"events": events}).sink_trace(
            "SINK", False
        )
        multi = query4_multi_source(
            workload.make_database(), n_sources, parallelism=2
        )
        compiled = compile_dag(
            multi,
            {
                f"Yahoo{i}": SourceSpec(
                    (lambda part: lambda t, n: iter(part))(parts[i])
                )
                for i in range(n_sources)
            },
        )
        for seed in (0, 2):
            LocalRunner(compiled.topology, seed=seed).run()
            got = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
            assert got == expected

    def test_spout_components_per_source(self, workload):
        multi = query4_multi_source(workload.make_database(), 3, parallelism=1)
        compiled = compile_dag(
            multi,
            {f"Yahoo{i}": source_from_events([Marker(1)]) for i in range(3)},
        )
        spouts = [s.name for s in compiled.topology.spouts()]
        assert sorted(spouts) == ["Yahoo0", "Yahoo1", "Yahoo2"]


class TestQuery2StateCrossValidation:
    def test_compiled_and_handcrafted_persist_same_counts(self, workload):
        """Both implementations must leave identical final per-ad counts
        in the database store."""
        events = workload.events()

        db_compiled = workload.make_database()
        dag = query2(db_compiled, parallelism=2)
        compiled = compile_dag(dag, {"events": source_from_events(events, 2)})
        LocalRunner(compiled.topology, seed=1).run()

        db_hand = workload.make_database()
        topology, _sink = handcrafted_query2(
            db_hand, events, parallelism=2, spouts=2
        )
        LocalRunner(topology, seed=1).run()

        assert (
            db_compiled.stores["aggregates"].snapshot()
            == db_hand.stores["aggregates"].snapshot()
        )
