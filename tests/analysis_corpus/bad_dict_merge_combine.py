"""DT204 + DT901: dict.update as a combine.

``update`` keeps the *later* binding for a duplicate key, so
``combine(x, y) != combine(y, x)`` whenever both sides bound the same
key — the law check finds the counterexample.
"""

from repro.operators.keyed_unordered import OpKeyedUnordered

EXPECT_STATIC = ("DT204", "DT901")  # DT901: lint cross-confirms DT2xx files
EXPECT_DYNAMIC = ("DT901",)


class LastWriteWins(OpKeyedUnordered):
    name = "last-write-wins"

    def fold_in(self, key, value):
        return {key: value}

    def identity(self):
        return {}

    def combine(self, x, y):
        merged = dict(x)
        merged.update(y)  # DT204: right side wins on duplicate keys
        return merged

    def init(self):
        return 0

    def update_state(self, old_state, agg):
        return old_state + len(agg)

    def on_marker(self, new_state, key, m, emit):
        emit(key, new_state)
