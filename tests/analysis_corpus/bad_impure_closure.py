"""DT104: a pure callback mutating shared module-level state."""

from repro.operators.stateless import OpStateless

EXPECT_STATIC = ("DT104",)
EXPECT_DYNAMIC = ("DT902",)

_CACHE = {}


class DedupByCache(OpStateless):
    """Emits only first-seen values — but "first" is per-process."""

    name = "dedup-by-cache"

    def on_item(self, key, value, emit):
        if value in _CACHE:
            return
        _CACHE[value] = True  # DT104: writes shared mutable module state
        emit(key, value)
