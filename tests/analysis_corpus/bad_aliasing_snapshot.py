"""DT401: a snapshot that returns the live state object.

The checkpoint aliases the running state: mutations after the snapshot
corrupt the checkpoint, so recovery replays from a state the trace
never contained.
"""

from repro.operators.keyed_ordered import OpKeyedOrdered

EXPECT_STATIC = ("DT401",)
EXPECT_DYNAMIC = ()  # O-input: block-shuffle consistency does not apply


class AliasedWindow(OpKeyedOrdered):
    name = "aliased-window"

    def init(self):
        return []

    def copy_state(self, state):
        return state  # DT401: checkpoint aliases live mutable state

    def on_item(self, state, key, value, emit):
        state.append(value)
        emit(key, len(state))
        return state
