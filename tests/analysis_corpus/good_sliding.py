"""A clean OpSlidingWindow: max over the last two blocks."""

from repro.operators.sliding import OpSlidingWindow

EXPECT_STATIC = ()
EXPECT_DYNAMIC = ()

_NEG_INF = float("-inf")


class MaxOverTwoBlocks(OpSlidingWindow):
    name = "max-over-two"
    window = 2

    def fold_in(self, key, value):
        return value

    def identity(self):
        return _NEG_INF

    def combine(self, x, y):
        return max(x, y)

    def finish(self, key, agg, timestamp):
        return agg if agg != _NEG_INF else None
