"""DT902 (dynamic only): order dependence laundered through a helper.

The callback body writes no state the AST rules can see — the mutation
happens inside a module-level helper.  The block-shuffle consistency
check still observes that equivalent inputs produce different outputs.
"""

from repro.operators.stateless import OpStateless

EXPECT_STATIC = ()
EXPECT_DYNAMIC = ("DT902",)

_LAST = []


def _delta(value):
    prev = _LAST[-1] if _LAST else 0
    _LAST.append(value)
    return value - prev


class StreamDelta(OpStateless):
    name = "stream-delta"

    def on_item(self, key, value, emit):
        emit(key, _delta(value))  # output depends on global arrival order
