"""DT201 + DT901: string concatenation as a combine.

Concatenation is associative but not commutative: "ab" != "ba", so the
block aggregate leaks arrival order into the state.
"""

from repro.operators.keyed_unordered import OpKeyedUnordered

EXPECT_STATIC = ("DT201", "DT901")
EXPECT_DYNAMIC = ("DT901", "DT902")


class ConcatLog(OpKeyedUnordered):
    name = "concat-log"

    def fold_in(self, key, value):
        return str(value)

    def identity(self):
        return ""

    def combine(self, x, y):
        return "".join([x, y])  # DT201: concatenation is order-sensitive

    def init(self):
        return ""

    def update_state(self, old_state, agg):
        return old_state + agg

    def on_marker(self, new_state, key, m, emit):
        emit(key, new_state)
