"""DT203 + DT204 + DT902: first-seen tracking via dict insertion order.

The aggregate is a dict whose insertion order is arrival order; the
merge lets the right side win (DT204) and ``update_state`` freezes the
iteration order into the state (DT203).  Both are witnessed dynamically
as a Definition 3.5 inconsistency (DT902).
"""

from repro.operators.keyed_unordered import OpKeyedUnordered

EXPECT_STATIC = ("DT203", "DT204")
# The dict merge is commutative under == (dict equality ignores order),
# so the monoid laws pass; the order leak shows up as a Definition 3.5
# inconsistency instead.
EXPECT_DYNAMIC = ("DT902",)


class FirstSeenOrder(OpKeyedUnordered):
    name = "first-seen-order"

    def fold_in(self, key, value):
        return {value: True}

    def identity(self):
        return {}

    def combine(self, x, y):
        return {**x, **y}  # DT204: duplicate keys resolved by merge order

    def init(self):
        return ()

    def update_state(self, old_state, agg):
        return old_state + tuple(agg)  # DT203: dict order = arrival order

    def on_marker(self, new_state, key, m, emit):
        emit(key, new_state)
