"""DT303: an O->O operator emitting under a different key.

Table 1 restricts ``OpKeyedOrdered`` emissions to the input key —
otherwise the output cannot be viewed as per-key ordered.  The runtime
enforces this with a guard that raises at the first violation; the
linter reports it before anything runs.
"""

from repro.operators.keyed_ordered import OpKeyedOrdered

EXPECT_STATIC = ("DT303",)
EXPECT_DYNAMIC = ()  # O-input: block-shuffle consistency does not apply


class GlobalRelabel(OpKeyedOrdered):
    name = "global-relabel"

    def init(self):
        return None

    def on_item(self, state, key, value, emit):
        emit("all", value)  # DT303: rewrites the key on an O output
        return state
