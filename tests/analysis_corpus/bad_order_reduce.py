"""DT202 + DT901: an order-sensitive reduce over a list aggregate.

The combine concatenates lists (so the aggregate records arrival
order — list concatenation is not commutative, which the dynamic law
check witnesses) and ``update_state`` folds it left-to-right with
``reduce``, baking that order into the state.
"""

import functools

from repro.operators.keyed_unordered import OpKeyedUnordered

EXPECT_STATIC = ("DT202", "DT901")  # DT901: lint cross-confirms DT2xx files
EXPECT_DYNAMIC = ("DT901",)


class LeftFoldDeltas(OpKeyedUnordered):
    name = "left-fold-deltas"

    def fold_in(self, key, value):
        return [value]

    def identity(self):
        return []

    def combine(self, x, y):
        return x + y

    def init(self):
        return 0

    def update_state(self, old_state, agg):
        # DT202: reduce over the aggregate is evaluation-order-sensitive
        return functools.reduce(lambda a, b: a - b, agg, old_state)

    def on_marker(self, new_state, key, m, emit):
        emit(key, new_state)
