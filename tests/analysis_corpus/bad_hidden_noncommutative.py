"""DT901 (dynamic only): non-commutativity hidden behind a helper.

The combine body is a single innocent-looking call, so the static
heuristics (which only look at the callback body) see nothing.  The
sampled law check still catches it — this file is why ``--dynamic``
exists alongside the AST rules.
"""

from repro.operators.keyed_unordered import OpKeyedUnordered

EXPECT_STATIC = ()
EXPECT_DYNAMIC = ("DT901", "DT902")  # the law break is output-visible too


def _blend(a, b):
    # Weighted toward the left operand: _blend(a, b) != _blend(b, a).
    return 2 * a + b


class HiddenBlend(OpKeyedUnordered):
    name = "hidden-blend"

    def fold_in(self, key, value):
        return value

    def identity(self):
        return 0

    def combine(self, x, y):
        return _blend(x, y)  # looks pure and symmetric; is neither

    def init(self):
        return 0

    def update_state(self, old_state, agg):
        return old_state + agg

    def on_marker(self, new_state, key, m, emit):
        emit(key, new_state)
