"""DT201 + DT901: a keyed-unordered fold whose combine subtracts.

Subtraction is neither associative nor commutative, so the per-block
aggregate depends on arrival order — the exact side condition Table 1
requires of the monoid.  The static heuristic flags it (DT201) and the
monoid-law spot-check produces a concrete counterexample (DT901).
"""

from repro.operators.keyed_unordered import OpKeyedUnordered

EXPECT_STATIC = ("DT201", "DT901")  # DT901: lint cross-confirms DT201 files
EXPECT_DYNAMIC = ("DT901",)


class RunningDifference(OpKeyedUnordered):
    name = "running-difference"

    def fold_in(self, key, value):
        return value

    def identity(self):
        return 0

    def combine(self, x, y):
        return x - y  # DT201: non-commutative operator across x and y

    def init(self):
        return 0

    def update_state(self, old_state, agg):
        return old_state + agg

    def on_marker(self, new_state, key, m, emit):
        emit(key, new_state)
