"""DT102: a callback that declares ``global`` and rebinds it."""

from repro.operators.stateless import OpStateless

EXPECT_STATIC = ("DT102",)
EXPECT_DYNAMIC = ("DT902",)

TOTAL = 0


class GlobalTotal(OpStateless):
    name = "global-total"

    def on_item(self, key, value, emit):
        global TOTAL  # DT102: global state in a pure callback
        TOTAL = TOTAL + value
        emit(key, TOTAL)
