"""DT302: indexing keyed state with something other than the key.

The template hands ``on_item`` exactly one key's state; reaching for a
different key's entry assumes a shared table that does not exist once
keys are partitioned across tasks.
"""

from repro.operators.keyed_ordered import OpKeyedOrdered

EXPECT_STATIC = ("DT302",)
EXPECT_DYNAMIC = ()  # O-input: block-shuffle consistency does not apply


class PeerReader(OpKeyedOrdered):
    name = "peer-reader"

    def init(self):
        return {"hub": 0}

    def on_item(self, state, key, value, emit):
        peer = "hub"
        baseline = state[peer]  # DT302: subscript by a non-key name
        emit(key, value - baseline)
        return state
