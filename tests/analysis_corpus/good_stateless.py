"""A clean OpStateless: pure per-item map, no findings expected."""

from repro.operators.stateless import OpStateless

EXPECT_STATIC = ()
EXPECT_DYNAMIC = ()


class CelsiusToKelvin(OpStateless):
    name = "c-to-k"

    def on_item(self, key, value, emit):
        emit(key, value + 273.15)
