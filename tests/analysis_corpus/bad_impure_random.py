"""DT103: nondeterministic call inside a pure callback."""

import random

from repro.operators.stateless import OpStateless

EXPECT_STATIC = ("DT103",)
EXPECT_DYNAMIC = ("DT902",)


class JitteredMap(OpStateless):
    name = "jittered-map"

    def on_item(self, key, value, emit):
        emit(key, value + random.random())  # DT103: output depends on RNG
