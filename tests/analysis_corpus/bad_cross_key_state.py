"""DT301: per-key state kept on ``self`` instead of in the template.

State the runtime does not own is invisible to checkpointing and is
not co-partitioned with the key under parallelization — after a HASH
split the instance handling key "a" no longer holds "a"'s history.
"""

from repro.operators.keyed_ordered import OpKeyedOrdered

EXPECT_STATIC = ("DT301",)
EXPECT_DYNAMIC = ()  # O-input: block-shuffle consistency does not apply


class ShadowHistory(OpKeyedOrdered):
    name = "shadow-history"

    def __init__(self):
        self._hist = {}

    def init(self):
        return None

    def on_item(self, state, key, value, emit):
        prev = self._hist[key] if key in self._hist else None  # DT301
        emit(key, (prev, value))
        return value
