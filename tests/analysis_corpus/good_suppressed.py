"""A justified suppression that is actually used: no findings expected.

The operator emits per-block membership as a frozenset — iterating the
set *would* draw DT203/DT402-style suspicion where the rules are
conservative, so the one conservative hit here carries a justification
comment.  The suppression must count as used (no DT001).
"""

from repro.operators.keyed_unordered import OpKeyedUnordered

EXPECT_STATIC = ()
EXPECT_DYNAMIC = ()


class DistinctValues(OpKeyedUnordered):
    name = "distinct-values"

    def fold_in(self, key, value):
        return frozenset([value])

    def identity(self):
        return frozenset()

    def combine(self, x, y):
        return x | y

    def init(self):
        return frozenset()

    def update_state(self, old_state, agg):
        merged = list(old_state)
        for v in agg:  # iterating the set aggregate taints `merged`
            if v not in merged:
                merged.append(v)
        # repro: ignore[DT203] -- on_marker only emits len(new_state)
        return tuple(merged)

    def on_marker(self, new_state, key, m, emit):
        emit(key, len(new_state))
