"""DT5xx corpus: builder functions returning deliberately bad DAGs.

Used by ``tests/test_analysis_dag.py``; each builder documents the
finding it must produce.
"""

from repro.dag.graph import TransductionDAG
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.split import RoundRobinSplit
from repro.operators.stateless import OpStateless
from repro.traces.trace_type import ordered_type, unordered_type

U = unordered_type()
O = ordered_type()  # noqa: E741 - paper notation

EXPECT_STATIC = ()  # the operator classes below are clean; the DAGs are not


class _Passthrough(OpStateless):
    name = "passthrough"

    def on_item(self, key, value, emit):
        emit(key, value)


class _RunningLast(OpKeyedOrdered):
    name = "running-last"

    def init(self):
        return None

    def on_item(self, state, key, value, emit):
        emit(key, value)
        return value


def build_rr_before_ordered():
    """The Section 2 bug: RR split feeding an order-sensitive operator.

    Expected: DT501 (and the typechecker would reject it outright).
    """
    dag = TransductionDAG("rr-before-ordered")
    src = dag.add_source("src", output_type=U)
    split = dag.add_split(RoundRobinSplit(2), upstream=src)
    ordered = dag.add_op(_RunningLast(), upstream=[split], edge_types=[O])
    dag.add_sink("sink", upstream=ordered)
    return dag


def build_fanout_parallel():
    """A parallelism hint on a vertex with two consumers.

    Expected: DT503 (Theorem 4.3 needs exactly one consumer).
    """
    dag = TransductionDAG("fanout-parallel")
    src = dag.add_source("src", output_type=U)
    mapper = dag.add_op(_Passthrough(), parallelism=3, upstream=[src])
    left = dag.add_op(_Passthrough(), upstream=[mapper], name="left")
    right = dag.add_op(_Passthrough(), upstream=[mapper], name="right")
    dag.add_sink("sink-l", upstream=left)
    dag.add_sink("sink-r", upstream=right)
    return dag


def build_defaulted_edge():
    """An edge whose kind nothing constrains.

    Expected: DT502 (the checker silently defaulted it to U).
    """
    dag = TransductionDAG("defaulted-edge")
    src = dag.add_source("src")
    mapper = dag.add_op(_Passthrough(), upstream=[src])
    dag.add_sink("sink", upstream=mapper)
    return dag
