"""DT402: a shallow copy of nested mutable state.

``list(state)`` copies the spine but shares the inner per-sensor
lists; ``on_item`` mutates those in place, so the checkpoint drifts
with the live state anyway.
"""

from repro.operators.keyed_ordered import OpKeyedOrdered

EXPECT_STATIC = ("DT402",)
EXPECT_DYNAMIC = ()  # O-input: block-shuffle consistency does not apply


class NestedBuffers(OpKeyedOrdered):
    name = "nested-buffers"

    def init(self):
        return [[], []]  # [readings, alarms]

    def copy_state(self, state):
        return list(state)  # DT402: inner lists are shared, not copied

    def on_item(self, state, key, value, emit):
        state[0].append(value)
        emit(key, value)
        return state
