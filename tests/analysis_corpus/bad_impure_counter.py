"""DT101: an OpStateless that keeps hidden instance state.

The emitted value depends on how many items this *instance* has seen,
so two deployments (or a replay after recovery) emit different output
for the same trace — exactly the purity side condition of Theorem 4.2.
"""

from repro.operators.stateless import OpStateless

EXPECT_STATIC = ("DT101",)
EXPECT_DYNAMIC = ("DT902",)  # the counter also breaks Definition 3.5


class CountingTagger(OpStateless):
    name = "counting-tagger"

    def __init__(self):
        self.seen = 0

    def on_item(self, key, value, emit):
        self.seen += 1  # DT101: writes self.* from a pure callback
        emit(key, (self.seen, value))
