"""A clean OpKeyedUnordered: sum monoid, sorted state iteration.

Shows the sanctioned patterns the rules must NOT flag: a commutative
numeric combine, and a ``sorted(...)`` wrapper laundering a dict's
iteration order before it reaches output.
"""

from repro.operators.keyed_unordered import OpKeyedUnordered

EXPECT_STATIC = ()
EXPECT_DYNAMIC = ()


class PerKeyTotal(OpKeyedUnordered):
    name = "per-key-total"

    def fold_in(self, key, value):
        return value

    def identity(self):
        return 0

    def combine(self, x, y):
        return x + y

    def init(self):
        return {}

    def update_state(self, old_state, agg):
        new_state = dict(old_state)
        new_state["total"] = new_state.get("total", 0) + agg
        return new_state

    def on_marker(self, new_state, key, m, emit):
        # sorted() makes the dict's iteration order irrelevant.
        emit(key, tuple(sorted(new_state.items())))
