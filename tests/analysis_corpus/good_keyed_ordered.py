"""A clean OpKeyedOrdered: key-preserving delta with a proper copy."""

from repro.operators.keyed_ordered import OpKeyedOrdered

EXPECT_STATIC = ()
EXPECT_DYNAMIC = ()


class PerKeyDelta(OpKeyedOrdered):
    name = "per-key-delta"

    def init(self):
        return None

    def copy_state(self, state):
        return state  # repro: ignore[DT401] -- state is an immutable scalar

    def on_item(self, state, key, value, emit):
        if state is not None:
            emit(key, value - state)
        return value
