"""End-to-end property: Corollary 4.4 over *randomly generated* typed
pipelines.

A pipeline is a random sequence of stages drawn from a pool of template
operators (stateless transforms, keyed aggregates, SORT + keyed-ordered
pairs, joins, sliding windows), with random parallelism hints.  For each
generated pipeline and each random input stream:

1. the sequential denotation is computed (``evaluate_dag``);
2. the Theorem 4.3 deployment (logical rewrite) is evaluated;
3. the compiled topology runs under multiple interleaving seeds;

and all of them must produce the same output trace.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_dag
from repro.compiler.compile import CompilerOptions, source_from_events
from repro.dag import TransductionDAG, deploy, evaluate_dag, typecheck_dag
from repro.operators.base import KV, Marker
from repro.operators.joins import DistinctCount, TopK
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.library import (
    filter_items,
    map_values,
    rekey,
    sliding_count,
    tumbling_count,
)
from repro.operators.sliding import sliding_window
from repro.operators.sort import SortOp
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace
from repro.traces.trace_type import ordered_type, unordered_type

U = unordered_type()
O = ordered_type()


class CumulativeSum(OpKeyedOrdered):
    def init(self):
        return 0

    def on_item(self, state, key, value, emit):
        total = state + as_num(value)
        emit(key, total)
        return total


def as_num(value):
    """Normalize any stage's output value to a number, so stages compose
    regardless of the value shapes upstream stages emit (TopK emits
    tuples, counts emit ints, ...)."""
    if isinstance(value, (int, float)):
        return int(value)
    if isinstance(value, (tuple, frozenset)):
        return sum(as_num(v) for v in value)
    return len(repr(value))


def stage_pool():
    """Stage factories: each returns (operator, nominal input kind).

    Keyed-ordered stages are emitted as (SORT, op) pairs so the pipeline
    stays well-typed; numeric stages normalize values with ``as_num``.
    """
    return [
        lambda: [(map_values(lambda v: as_num(v) + 1, name="inc"), U)],
        lambda: [(map_values(lambda v: as_num(v) * 2, name="dbl"), U)],
        lambda: [(filter_items(lambda k, v: as_num(v) % 3 != 0, name="f3"), U)],
        lambda: [(rekey(lambda k, v: as_num(v) % 2, name="rk"), U)],
        lambda: [(tumbling_count("tc"), U)],
        lambda: [(sliding_count(2, name="sc"), U)],
        lambda: [(
            sliding_window(
                2, lambda k, v: as_num(v), 0, lambda a, b: a + b, name="sw"
            ),
            U,
        )],
        lambda: [(TopK(2, sort_key=as_num), U)],
        lambda: [(DistinctCount(), U)],
        lambda: [(SortOp(sort_key=as_num, name="srt"), U), (CumulativeSum(), O)],
    ]


@st.composite
def random_pipelines(draw):
    """(stage specs, parallelism hints) for a 1–4 stage pipeline."""
    pool = stage_pool()
    n_stages = draw(st.integers(min_value=1, max_value=4))
    picks = [draw(st.integers(0, len(pool) - 1)) for _ in range(n_stages)]
    parallelisms = [draw(st.integers(1, 3)) for _ in range(n_stages)]
    return picks, parallelisms


@st.composite
def random_streams(draw):
    n_blocks = draw(st.integers(1, 3))
    stream = []
    for block in range(1, n_blocks + 1):
        size = draw(st.integers(0, 6))
        for _ in range(size):
            stream.append(
                KV(draw(st.sampled_from("abc")), draw(st.integers(0, 9)))
            )
        stream.append(Marker(block))
    return stream


def build_pipeline(picks, parallelisms):
    pool = stage_pool()
    dag = TransductionDAG("random-pipeline")
    src = dag.add_source("src", output_type=U)
    upstream = src
    for pick, parallelism in zip(picks, parallelisms):
        for operator, _nominal_input in pool[pick]():
            # Edge types deliberately omitted: the type checker infers
            # kinds along the pipeline (a stateless stage after an
            # O-producer reads the O edge by subsumption).
            upstream = dag.add_op(
                operator, parallelism=parallelism, upstream=[upstream],
                edge_types=[None],
            )
    dag.add_sink("out", upstream=upstream)
    return dag


class TestRandomPipelines:
    @given(random_pipelines(), random_streams())
    @settings(max_examples=25, deadline=None)
    def test_corollary_44_logical_deployment(self, pipeline, stream):
        picks, parallelisms = pipeline
        dag = build_pipeline(picks, parallelisms)
        typecheck_dag(dag)
        base = evaluate_dag(dag, {"src": stream}).sink_trace("out", False)
        deployed = deploy(dag)
        got = evaluate_dag(deployed, {"src": stream}).sink_trace("out", False)
        assert got == base

    @given(random_pipelines(), random_streams(),
           st.integers(0, 3), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_compiled_execution_equivalence(self, pipeline, stream, seed, fusion):
        picks, parallelisms = pipeline
        dag = build_pipeline(picks, parallelisms)
        base = evaluate_dag(dag, {"src": stream}).sink_trace("out", False)
        compiled = compile_dag(
            dag,
            {"src": source_from_events(stream, parallelism=2)},
            CompilerOptions(fusion=fusion),
        )
        LocalRunner(compiled.topology, seed=seed).run()
        got = events_to_trace(compiled.sinks["out"].aligned_events, False)
        assert got == base

    def test_deep_pipeline_every_stage_kind(self):
        """One deterministic deep pipeline touching every pool entry."""
        picks = list(range(len(stage_pool())))
        parallelisms = [2] * len(picks)
        dag = build_pipeline(picks, parallelisms)
        stream = [KV("a", 4), KV("b", 7), Marker(1), KV("a", 2), Marker(2)]
        base = evaluate_dag(dag, {"src": stream}).sink_trace("out", False)
        deployed = deploy(dag)
        assert evaluate_dag(deployed, {"src": stream}).sink_trace(
            "out", False
        ) == base
        compiled = compile_dag(dag, {"src": source_from_events(stream, 2)})
        for seed in range(3):
            LocalRunner(compiled.topology, seed=seed).run()
            got = events_to_trace(compiled.sinks["out"].aligned_events, False)
            assert got == base
