"""DataTrace: equivalence classes, monoid structure, prefix order,
residuals (Section 3.1)."""

import random

import pytest
from hypothesis import given, settings

from repro.errors import TraceTypeError
from repro.traces.items import Item, marker
from repro.traces.normal_form import random_equivalent_shuffle
from repro.traces.tags import Tag
from repro.traces.trace import DataTrace, empty_trace
from repro.traces.trace_type import bag_type, sequence_type

from conftest import M, example31_sequences, measurements


class TestEquivalence:
    def test_example_31(self, example31_type):
        t1 = DataTrace(example31_type, measurements(5, 5, 8, ts=1) + measurements(9))
        t2 = DataTrace(example31_type, measurements(8, 5, 5, ts=1) + measurements(9))
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_marker_position_matters(self, example31_type):
        t1 = DataTrace(example31_type, measurements(5, ts=1))
        t2 = DataTrace(example31_type, [marker(1), Item(M, 5)])
        assert t1 != t2

    def test_type_name_distinguishes(self):
        seq = sequence_type(int)
        bag = bag_type(int)
        a = DataTrace(seq, [Item(Tag("item"), 1)])
        b = DataTrace(bag, [Item(Tag("item"), 1)])
        assert a != b

    def test_ill_typed_items_rejected(self, example31_type):
        with pytest.raises(TraceTypeError):
            DataTrace(example31_type, [Item(M, -3)])

    def test_equivalent_to_sequence(self, example31_type):
        t = DataTrace(example31_type, measurements(5, 8))
        assert t.equivalent_to_sequence(measurements(8, 5))
        assert not t.equivalent_to_sequence(measurements(8, 8))

    def test_sequence_type_traces_are_sequences(self):
        seq = sequence_type(int)
        tag = Tag("item")
        a = DataTrace(seq, [Item(tag, 2), Item(tag, 1)])
        b = DataTrace(seq, [Item(tag, 1), Item(tag, 2)])
        assert a != b

    def test_bag_type_traces_are_bags(self):
        bag = bag_type(int)
        tag = Tag("item")
        a = DataTrace(bag, [Item(tag, 2), Item(tag, 1)])
        b = DataTrace(bag, [Item(tag, 1), Item(tag, 2)])
        assert a == b


class TestMonoid:
    def test_concat(self, example31_type):
        left = DataTrace(example31_type, measurements(5, ts=1))
        right = DataTrace(example31_type, measurements(8))
        combined = left + right
        assert combined == DataTrace(
            example31_type, measurements(5, ts=1) + measurements(8)
        )

    def test_empty_is_identity(self, example31_type):
        t = DataTrace(example31_type, measurements(5, 8, ts=1))
        e = empty_trace(example31_type)
        assert t + e == t
        assert e + t == t

    def test_append(self, example31_type):
        t = DataTrace(example31_type, measurements(5))
        assert t.append(Item(M, 8)) == DataTrace(example31_type, measurements(5, 8))

    def test_concat_type_mismatch(self, example31_type, u_type):
        a = DataTrace(example31_type, measurements(5))
        b = DataTrace(u_type, [])
        with pytest.raises(TraceTypeError):
            a.concat(b)

    @given(example31_sequences(max_len=6), example31_sequences(max_len=6))
    @settings(max_examples=40)
    def test_concat_respects_classes(self, example31_type, u, v):
        # [u] . [v] must not depend on chosen representatives.
        rng = random.Random(5)
        u2 = random_equivalent_shuffle(example31_type, u, rng)
        v2 = random_equivalent_shuffle(example31_type, v, rng)
        fix = _fix_marker_timestamps
        u, v = fix(u), fix(v)
        u2, v2 = fix(u2), fix(v2)
        a = DataTrace(example31_type, list(u) + list(v))
        b = DataTrace(example31_type, list(u2) + list(v2))
        assert a == b


def _fix_marker_timestamps(items):
    """Renumber marker timestamps 1.. so concatenations stay well-formed."""
    result = []
    ts = 1
    for item in items:
        if item.is_marker():
            result.append(marker(ts))
            ts += 1
        else:
            result.append(item)
    return result


class TestPrefixOrder:
    def test_sequence_prefix_is_trace_prefix(self, example31_type):
        full = measurements(5, 7, ts=1) + measurements(9)
        for cut in range(len(full) + 1):
            assert DataTrace(example31_type, full[:cut]).is_prefix_of(
                DataTrace(example31_type, full)
            )

    def test_prefix_up_to_equivalence(self, example31_type):
        # (M,8) alone is a prefix of (M,5)(M,8)# because items commute.
        small = DataTrace(example31_type, measurements(8))
        big = DataTrace(example31_type, measurements(5, 8, ts=1))
        assert small.is_prefix_of(big)

    def test_non_prefix(self, example31_type):
        small = DataTrace(example31_type, measurements(9))
        big = DataTrace(example31_type, measurements(5, 8, ts=1))
        assert not small.is_prefix_of(big)

    def test_marker_blocks_prefix(self, example31_type):
        # u = #1 (M,5)   is not a prefix of   v = (M,5) #1 ... wait, it is:
        # v has 5 before the marker; u needs 5 after.  Check both ways.
        u = DataTrace(example31_type, [marker(1), Item(M, 5)])
        v = DataTrace(example31_type, [Item(M, 5), marker(1)])
        assert not u.is_prefix_of(v)
        assert not v.is_prefix_of(u)

    def test_reflexive_antisymmetric(self, example31_type):
        t = DataTrace(example31_type, measurements(5, 8, ts=1))
        s = DataTrace(example31_type, measurements(8, 5, ts=1))
        assert t.is_prefix_of(t)
        assert t.is_prefix_of(s) and s.is_prefix_of(t) and t == s

    @given(example31_sequences())
    @settings(max_examples=50)
    def test_prefix_iff_residual(self, example31_type, items):
        full = DataTrace(example31_type, items)
        cut = len(items) // 2
        prefix = DataTrace(example31_type, items[:cut])
        residual = prefix.residual_in(full)
        assert residual is not None
        assert prefix + residual == full


class TestResidual:
    def test_residual_basic(self, example31_type):
        u = DataTrace(example31_type, measurements(5))
        v = DataTrace(example31_type, measurements(5, 8, ts=1))
        w = u.residual_in(v)
        assert w == DataTrace(example31_type, measurements(8, ts=1))

    def test_residual_none_when_not_prefix(self, example31_type):
        u = DataTrace(example31_type, measurements(9))
        v = DataTrace(example31_type, measurements(5, ts=1))
        assert u.residual_in(v) is None

    def test_residual_of_self_is_empty(self, example31_type):
        t = DataTrace(example31_type, measurements(5, 8, ts=1))
        assert t.residual_in(t) == empty_trace(example31_type)


class TestViews:
    def test_projections(self, example31_type):
        t = DataTrace(example31_type, measurements(5, 8, ts=1) + measurements(9))
        assert t.markers() == (marker(1),)
        assert sorted(i.value for i in t.data_items()) == [5, 8, 9]
        assert t.project_tag(M) == t.data_items()

    def test_len_iter_bool(self, example31_type):
        t = DataTrace(example31_type, measurements(5, ts=1))
        assert len(t) == 2
        assert list(t) == list(t.canonical)
        assert t
        assert not empty_trace(example31_type)
