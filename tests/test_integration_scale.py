"""Moderate-scale end-to-end run: a realistic workload through the full
stack (generator -> typed DAG -> compiler -> simulated cluster) with
exact accounting invariants — conservation of tuples, no duplication,
simulated-clock sanity."""

import pytest

from repro.apps.yahoo.events import YahooWorkload
from repro.apps.yahoo.queries import query4, query4_costs
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import evaluate_dag
from repro.operators.base import KV, Marker
from repro.storm import Cluster, Simulator
from repro.storm.local import events_to_trace


@pytest.fixture(scope="module")
def run():
    workload = YahooWorkload(
        seconds=10, events_per_second=2000, n_campaigns=50,
        ads_per_campaign=10, n_users=500,
    )
    events = workload.events()
    dag = query4(workload.make_database(), parallelism=8)
    compiled = compile_dag(dag, {"events": source_from_events(events, 2)})
    report = Simulator(
        compiled.topology, Cluster(4), cost_model=query4_costs(), seed=1
    ).run()
    return workload, events, dag, compiled, report


class TestScale:
    def test_all_input_tuples_accounted(self, run):
        workload, events, dag, compiled, report = run
        assert report.input_data_tuples == workload.total_data_tuples()
        # Every data tuple is processed exactly once by stage 1 plus the
        # markers each of the two spout tasks broadcasts to 8 tasks.
        expected_markers = 2 * 8 * workload.seconds
        assert report.processed["FilterMap"] == (
            workload.total_data_tuples() + expected_markers
        )

    def test_output_trace_matches_denotation(self, run):
        workload, events, dag, compiled, report = run
        expected = evaluate_dag(dag, {"events": events}).sink_trace(
            "SINK", False
        )
        got = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
        assert got == expected

    def test_window_counts_conserve_views(self, run):
        workload, events, dag, compiled, report = run
        views = sum(
            1 for e in events
            if isinstance(e, KV) and e.value.event_type == "view"
        )
        trace = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
        final_block = trace.blocks[workload.seconds - 1]
        assert sum(v for _, v in final_block.pairs()) == views

    def test_clock_sanity(self, run):
        workload, events, dag, compiled, report = run
        # Makespan must at least cover the critical per-task DB work.
        per_task_floor = (
            workload.total_data_tuples() / 8 * 30e-6
        )
        assert report.makespan >= per_task_floor * 0.9
        # And the cluster cannot do better than its total core rate.
        total_work = workload.total_data_tuples() * 31e-6
        assert report.makespan >= total_work / (4 * 2) * 0.9

    def test_utilization_bounded(self, run):
        _, _, _, _, report = run
        for machine in range(4):
            assert 0.0 <= report.utilization(machine) <= 1.0
