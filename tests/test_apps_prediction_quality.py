"""Quality of the Smart-Homes predictor: the REPTree must beat trivial
baselines on held-out data — evidence that the ML substrate is real, not
a stub."""

import random

import pytest

from repro.apps.smarthomes.events import DEVICE_TYPES
from repro.apps.smarthomes.prediction import (
    make_features,
    train_predictor,
    training_series,
)


@pytest.fixture(scope="module")
def models():
    return train_predictor(horizon=120, train_seconds=1200, past=60, seed=5)


def held_out_data(device_type: str, horizon=120, past=60):
    """Features/labels from a series the models never saw (other seed).

    Spans the same time-of-day range the models were trained on (trees
    cannot extrapolate the time feature beyond training support).
    """
    series = training_series(device_type, 1200, seed=99)
    return make_features(series, horizon=horizon, past=past)


def sse(predictions, labels):
    return sum((p - y) ** 2 for p, y in zip(predictions, labels))


class TestPredictorQuality:
    @pytest.mark.parametrize("device_type", ["ac", "heater", "lights"])
    def test_beats_mean_baseline(self, models, device_type):
        X, y = held_out_data(device_type)
        model = models[device_type]
        predictions = [model.predict(x) for x in X]
        mean = sum(y) / len(y)
        assert sse(predictions, y) < sse([mean] * len(y), y)

    @pytest.mark.parametrize("device_type", ["ac", "heater"])
    def test_beats_naive_extrapolation(self, models, device_type):
        """Baseline: predict horizon * current load."""
        X, y = held_out_data(device_type)
        model = models[device_type]
        predictions = [model.predict(x) for x in X]
        naive = [120 * x[1] for x in X]  # x[1] = current load
        assert sse(predictions, y) <= sse(naive, y)

    def test_predictions_in_physical_range(self, models):
        for device_type in DEVICE_TYPES:
            X, y = held_out_data(device_type)
            model = models[device_type]
            lo, hi = min(y), max(y)
            span = hi - lo
            for x in X[::50]:
                prediction = model.predict(x)
                assert lo - span <= prediction <= hi + span

    def test_relative_error_reasonable(self, models):
        X, y = held_out_data("heater")
        model = models["heater"]
        errors = [abs(model.predict(x) - t) / max(t, 1.0) for x, t in zip(X, y)]
        assert sum(errors) / len(errors) < 0.25  # under 25% mean error
