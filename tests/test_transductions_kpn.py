"""Kahn process networks and their trace-transduction encoding
(Example 3.3 / the generalization claim of Sections 3 and 7)."""

import pytest

from repro.errors import DagError
from repro.transductions.examples import DeterministicMerge
from repro.transductions.kpn import (
    KahnNetwork,
    merge_network,
    network_transduction,
    read,
    write,
)


def doubler_network():
    """One process: out = 2*x for each input token."""

    def program():
        while True:
            x = yield read("in")
            yield write("out", 2 * x)

    network = KahnNetwork()
    network.add_input("in")
    network.add_output("out")
    network.add_process("double", program)
    return network


def pipeline_network():
    """Two processes in a chain through an internal channel."""

    def stage1():
        while True:
            x = yield read("in")
            yield write("mid", x + 1)

    def stage2():
        while True:
            x = yield read("mid")
            yield write("out", x * 10)

    network = KahnNetwork()
    network.add_input("in")
    network.add_output("out")
    network.add_process("inc", stage1)
    network.add_process("scale", stage2)
    return network


class TestExecution:
    def test_single_process(self):
        outputs = doubler_network().run({"in": [1, 2, 3]})
        assert outputs["out"] == [2, 4, 6]

    def test_pipeline_through_internal_channel(self):
        outputs = pipeline_network().run({"in": [1, 2]})
        assert outputs["out"] == [20, 30]

    def test_empty_input(self):
        outputs = doubler_network().run({"in": []})
        assert outputs["out"] == []

    def test_partial_consumption_allowed(self):
        """A process may finish early, leaving tokens unread."""

        def program():
            x = yield read("in")
            yield write("out", x)

        network = KahnNetwork()
        network.add_input("in")
        network.add_output("out")
        network.add_process("head", program)
        outputs = network.run({"in": [7, 8, 9]})
        assert outputs["out"] == [7]

    def test_duplicate_process_rejected(self):
        network = KahnNetwork()
        network.add_process("p", lambda: iter(()))
        with pytest.raises(DagError):
            network.add_process("p", lambda: iter(()))

    def test_bad_command_rejected(self):
        def program():
            yield "not-a-command"

        network = KahnNetwork()
        network.add_input("in")
        network.add_process("bad", program)
        with pytest.raises(DagError):
            network.run({"in": []})


class TestKahnDeterminism:
    """The point of the encoding: outputs independent of scheduling —
    the KPN denotes a function on channel traces."""

    def test_merge_matches_example_37(self):
        network = merge_network()
        xs, ys = ["a", "b", "c"], ["1", "2"]
        outputs = network.run({"in0": xs, "in1": ys})
        assert tuple(outputs["out"]) == DeterministicMerge.specification(xs, ys)

    def test_scheduling_invariance(self):
        network_factory = merge_network
        results = set()
        for seed in range(8):
            outputs = network_factory().run(
                {"in0": [1, 2, 3], "in1": [10, 20]}, seed=seed
            )
            results.add(tuple(outputs["out"]))
        assert len(results) == 1

    def test_fanout_network_invariance(self):
        """Two independent consumers of a shared producer (via two
        internal channels) — scheduling still cannot matter."""

        def producer():
            while True:
                x = yield read("in")
                yield write("c1", x)
                yield write("c2", x)

        def consumer(channel, out):
            def program():
                while True:
                    x = yield read(channel)
                    yield write(out, -x)

            return program

        def build():
            network = KahnNetwork()
            network.add_input("in")
            network.add_output("o1")
            network.add_output("o2")
            network.add_process("producer", producer)
            network.add_process("c1", consumer("c1", "o1"))
            network.add_process("c2", consumer("c2", "o2"))
            return network

        results = set()
        for seed in range(6):
            outputs = build().run({"in": [1, 2, 3]}, seed=seed)
            results.add((tuple(outputs["o1"]), tuple(outputs["o2"])))
        assert results == {((-1, -2, -3), (-1, -2, -3))}


class TestTraceEncoding:
    def test_monotonicity_in_prefix_order(self):
        """Kahn continuity = monotone trace transduction of the
        channels type: extending an input channel extends outputs."""
        beta = network_transduction(merge_network())
        full = beta({"in0": [1, 2, 3], "in1": [10, 20]})
        for cut0 in range(4):
            for cut1 in range(3):
                partial = network_transduction(merge_network())(
                    {"in0": [1, 2, 3][:cut0], "in1": [10, 20][:cut1]}
                )
                n = len(partial["out"])
                assert partial["out"] == full["out"][:n]

    def test_channels_type_matches_shape(self):
        from repro.traces.trace_type import channels_type

        X = channels_type(["in0", "in1"])
        assert X.name == "Channels(in0,in1)"
        network = merge_network()
        assert set(network.input_channels) == {"in0", "in1"}
