"""Pomset view of traces: partial order, Hasse diagram, linearizations
(the Example 3.2 visualization)."""

import random

from hypothesis import given, settings

from repro.traces.items import Item, marker
from repro.traces.normal_form import lex_normal_form, random_equivalent_shuffle
from repro.traces.pomset import Pomset

from conftest import M, example31_sequences, measurements


class TestOrder:
    def test_example_32_structure(self, example31_type):
        # (M,5)(M,7) # (M,9)(M,8)(M,9) # (M,6)
        items = (
            measurements(5, 7, ts=1)
            + measurements(9, 8, 9, ts=2)
            + measurements(6)
        )
        p = Pomset(example31_type, items)
        marker1 = 2  # index of first marker
        assert p.precedes(0, marker1)
        assert p.precedes(marker1, 3)
        assert p.concurrent(0, 1)  # (M,5) || (M,7)
        assert p.concurrent(3, 4)  # (M,9) || (M,8)
        assert p.precedes(0, 6)    # transitively through markers

    def test_minimal_nodes(self, example31_type):
        items = measurements(5, 7, ts=1)
        p = Pomset(example31_type, items)
        assert p.minimal_nodes() == [0, 1]

    def test_width(self, example31_type):
        p = Pomset(example31_type, measurements(5, 7, 9))
        assert p.width() == 3
        p2 = Pomset(example31_type, measurements(5, ts=1) + measurements(7))
        assert p2.width() == 1

    def test_covers_exclude_transitive(self, example31_type):
        items = measurements(5, ts=1) + measurements(9)
        p = Pomset(example31_type, items)
        covers = p.covers()
        assert (0, 1) in covers and (1, 2) in covers
        assert (0, 2) not in covers


class TestLinearizations:
    def test_count_example_32_block(self, example31_type):
        # {5,5,8} then # then 9: 3 distinct arrangements of the bag.
        items = measurements(5, 5, 8, ts=1) + measurements(9)
        p = Pomset(example31_type, items)
        assert p.count_linearizations() == 3

    def test_fully_ordered_has_one(self, example31_type):
        items = measurements(5, ts=1) + measurements(8, ts=2)
        assert Pomset(example31_type, items).count_linearizations() == 1

    def test_all_linearizations_equivalent(self, example31_type):
        items = measurements(3, 1, ts=1) + measurements(2)
        p = Pomset(example31_type, items)
        nf = lex_normal_form(example31_type, items)
        for linearization in p.linearizations():
            assert lex_normal_form(example31_type, linearization) == nf

    def test_is_linearization(self, example31_type):
        items = measurements(3, 1)
        p = Pomset(example31_type, items)
        assert p.is_linearization(measurements(1, 3))
        assert not p.is_linearization(measurements(1, 1))

    @given(example31_sequences(max_len=6))
    @settings(max_examples=30)
    def test_shuffles_are_linearizations(self, example31_type, items):
        p = Pomset(example31_type, items)
        rng = random.Random(9)
        shuffled = random_equivalent_shuffle(example31_type, items, rng)
        assert p.is_linearization(shuffled)


class TestRender:
    def test_render_contains_steps(self, example31_type):
        items = measurements(5, 7, ts=1) + measurements(9)
        rendered = Pomset(example31_type, items).render()
        assert "(M,5)" in rendered and "->" in rendered

    def test_render_empty(self, example31_type):
        assert Pomset(example31_type, []).render() == ""
