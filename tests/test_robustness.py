"""Failure injection and edge-of-contract behaviour across the stack:
misbehaving operators, malformed marker protocols, skewed sources, and
the simulator's latency accounting."""

import pytest

from repro.errors import SimulationError, TaskFailureError
from repro.compiler import compile_dag
from repro.compiler.compile import SourceSpec, source_from_events
from repro.dag import TransductionDAG
from repro.operators.base import KV, Marker
from repro.operators.library import map_values, tumbling_count
from repro.operators.merge import Merge
from repro.storm import Cluster, LocalRunner, Simulator
from repro.storm.costs import PerComponentCostModel
from repro.storm.groupings import MarkerAwareGrouping
from repro.storm.topology import (
    Bolt,
    CaptureBolt,
    IteratorSpout,
    TopologyBuilder,
)
from repro.traces.trace_type import unordered_type

U = unordered_type()


class ExplodingBolt(Bolt):
    """Raises after N tuples — models an operator bug."""

    def __init__(self, after: int):
        self._after = after

    def prepare(self, task_index, n_tasks):
        return {"count": 0}

    def execute(self, state, tup, collector):
        state["count"] += 1
        if state["count"] > self._after:
            raise RuntimeError("injected operator failure")
        collector.emit(tup.event)


class TestOperatorFailures:
    def test_operator_exception_surfaces(self):
        """A bug in user code must propagate with its failure context:
        which task, on which machine, at which sealed epoch — plus the
        partial report accumulated up to the failure."""
        builder = TopologyBuilder("boom")
        builder.set_spout(
            "src", IteratorSpout(lambda i, n: iter([KV("a", j) for j in range(10)])), 1
        )
        builder.set_bolt("boom", ExplodingBolt(after=3), 1).grouping(
            "src", MarkerAwareGrouping("global")
        )
        sink = CaptureBolt()
        builder.set_bolt("sink", sink, 1).grouping("boom", MarkerAwareGrouping("global"))
        with pytest.raises(TaskFailureError, match="injected operator failure") as info:
            LocalRunner(builder.build()).run()
        failure = info.value
        assert isinstance(failure, SimulationError)  # backwards compatible
        assert failure.component == "boom"
        assert failure.task_index == 0
        assert failure.machine is not None
        assert failure.report is not None
        assert failure.report.input_all_tuples > 0


class TestMarkerProtocolViolations:
    def test_merge_rejects_mismatched_timestamps(self):
        merge = Merge(2)
        state = merge.initial_state()
        merge.handle(state, 0, Marker(5))
        with pytest.raises(SimulationError, match="misaligned"):
            merge.handle(state, 1, Marker(6))

    def test_source_with_missing_markers_stalls_alignment(self):
        """A source partition that drops a marker leaves the merge
        frontend waiting: downstream sees no output for that block —
        detectably incomplete rather than silently wrong."""

        def good(i, n):
            return iter([KV("a", 1), Marker(1), KV("a", 2), Marker(2)])

        def bad(i, n):
            return iter([KV("b", 1), Marker(1)])  # never sends marker 2

        dag = TransductionDAG("stall")
        s1 = dag.add_source("good", output_type=U)
        s2 = dag.add_source("bad", output_type=U)
        op = dag.add_op(tumbling_count("C"), upstream=[s1, s2],
                        edge_types=[U, U])
        dag.add_sink("out", upstream=op)
        compiled = compile_dag(
            dag, {"good": SourceSpec(good), "bad": SourceSpec(bad)}
        )
        LocalRunner(compiled.topology, seed=0).run()
        trace = None
        from repro.storm.local import events_to_trace

        trace = events_to_trace(compiled.sinks["out"].aligned_events, False)
        # Only block 1 completed; marker 2 never aligned.
        assert trace.num_markers() == 1

    def test_skewed_source_rates_still_align(self):
        """One source 10x faster than the other: alignment holds the
        fast source's later blocks until the slow one catches up, and
        the result equals the balanced run."""

        def fast(i, n):
            events = []
            for block in range(1, 4):
                events.extend(KV("f", j) for j in range(10))
                events.append(Marker(block))
            return iter(events)

        def slow(i, n):
            events = []
            for block in range(1, 4):
                events.append(KV("s", block))
                events.append(Marker(block))
            return iter(events)

        dag = TransductionDAG("skew")
        s1 = dag.add_source("fast", output_type=U)
        s2 = dag.add_source("slow", output_type=U)
        op = dag.add_op(tumbling_count("C"), upstream=[s1, s2],
                        edge_types=[U, U])
        dag.add_sink("out", upstream=op)
        compiled = compile_dag(
            dag, {"fast": SourceSpec(fast), "slow": SourceSpec(slow)}
        )
        from repro.storm.local import events_to_trace

        traces = set()
        for seed in range(3):
            LocalRunner(compiled.topology, seed=seed).run()
            traces.add(events_to_trace(compiled.sinks["out"].aligned_events, False))
        assert len(traces) == 1
        (trace,) = traces
        assert trace.num_markers() == 3
        for block in trace.closed_blocks():
            assert ("f", 10) in block.pairs()
            assert ("s", 1) in block.pairs()


class TestLatencyAccounting:
    def test_marker_latencies_positive_and_ordered(self):
        events = []
        for block in range(1, 4):
            events.extend(KV("k", i) for i in range(20))
            events.append(Marker(block))
        dag = TransductionDAG("lat")
        src = dag.add_source("src", output_type=U)
        op = dag.add_op(map_values(lambda v: v, name="M"), parallelism=2,
                        upstream=[src], edge_types=[U])
        dag.add_sink("out", upstream=op)
        compiled = compile_dag(dag, {"src": source_from_events(events, 1)})
        report = Simulator(
            compiled.topology,
            Cluster(2),
            cost_model=PerComponentCostModel({"M": 20e-6}),
            seed=1,
        ).run()
        latencies = report.marker_latencies(
            next(n for n in compiled.topology.components if n == "out")
        )
        assert set(latencies) == {1, 2, 3}
        assert all(value > 0 for value in latencies.values())

    def test_marker_emit_times_recorded(self):
        events = [KV("a", 1), Marker(1)]
        dag = TransductionDAG("t")
        src = dag.add_source("src", output_type=U)
        op = dag.add_op(map_values(lambda v: v, name="M"), upstream=[src],
                        edge_types=[U])
        dag.add_sink("out", upstream=op)
        compiled = compile_dag(dag, {"src": source_from_events(events, 1)})
        report = LocalRunner(compiled.topology).run()
        assert 1 in report.marker_emit_times
