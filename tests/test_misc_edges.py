"""Edge-of-API coverage: small contracts that the larger suites exercise
only indirectly."""

import pytest

from repro.errors import ConsistencyError, TraceTypeError
from repro.operators.base import Emitter, KV, Marker, is_marker_event
from repro.storm.tuples import StormTuple
from repro.traces.items import Item, is_marker, kv_item, marker
from repro.traces.tags import MARKER, Tag
from repro.traces.trace import DataTrace
from repro.traces.trace_type import channels_type, ordered_type, unordered_type

U = unordered_type()


class TestItems:
    def test_kv_item_tag_is_key(self):
        item = kv_item(("b", 3), 1.5)
        assert item.key == ("b", 3)
        assert item.tag == Tag(("b", 3))

    def test_marker_timestamp_property(self):
        assert marker(7).timestamp == 7
        with pytest.raises(AttributeError):
            Item(Tag("M"), 1).timestamp

    def test_is_marker_helpers(self):
        assert is_marker(marker(1))
        assert not is_marker(kv_item("a", 1))
        assert is_marker_event(Marker(1))
        assert not is_marker_event(KV("a", 1))

    def test_reprs(self):
        assert repr(marker(3)) == "#3"
        assert repr(kv_item("a", 1)) == "(a,1)"
        assert repr(KV("a", 1)) == "KV('a', 1)"
        assert repr(Marker(3)) == "Marker(3)"


class TestEmitter:
    def test_collects_and_drains(self):
        emitter = Emitter()
        emitter.emit("k", 1)
        emitter.emit("k", 2)
        assert emitter.drain() == [KV("k", 1), KV("k", 2)]
        assert emitter.drain() == []

    def test_key_guard(self):
        def guard(key):
            if key != "only":
                raise TraceTypeError("bad key")

        emitter = Emitter(key_guard=guard)
        emitter.emit("only", 1)
        with pytest.raises(TraceTypeError):
            emitter.emit("other", 1)


class TestStormTuple:
    def test_channel_identity(self):
        tup = StormTuple(KV("a", 1), "comp", 3)
        assert tup.channel() == ("comp", 3)

    def test_repr_mentions_provenance(self):
        tup = StormTuple(Marker(1), "src", 0)
        assert "src[0]" in repr(tup)


class TestTraceTypeConstructors:
    def test_channels_type_arity_check(self):
        with pytest.raises(TraceTypeError):
            channels_type(["a", "b"], value_types=[int])

    def test_u_o_names(self):
        assert unordered_type("CID", "Long").name == "U(CID,Long)"
        assert ordered_type("ID", float).name == "O(ID,float)"

    def test_key_predicate_enforced(self):
        restricted = unordered_type(key_predicate=lambda k: isinstance(k, int))
        restricted.check_item(kv_item(3, "x"))
        with pytest.raises(TraceTypeError):
            restricted.check_item(kv_item("string-key", "x"))

    def test_compatible_with(self):
        assert unordered_type().compatible_with(unordered_type("A", "B"))
        assert not unordered_type().compatible_with(ordered_type())

    def test_marker_values_are_nats(self):
        with pytest.raises(TraceTypeError):
            U.check_item(Item(MARKER, -1))


class TestTraceMethodSurface:
    def test_foata_method(self):
        t = DataTrace(U, [kv_item("a", 1), kv_item("b", 2), marker(1)])
        steps = t.foata()
        assert len(steps) == 2  # the unordered pair, then the marker
        assert steps[1] == (marker(1),)

    def test_repr_shows_type_and_items(self):
        t = DataTrace(U, [kv_item("a", 1)])
        assert "U(K,V)" in repr(t)

    def test_consistency_error_carries_witness(self):
        error = ConsistencyError("msg", witness=("a", "b"))
        assert error.witness == ("a", "b")
