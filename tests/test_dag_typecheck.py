"""The DAG type checker: U/O kinds, subsumption, and the Section 2
soundness rejections."""

import pytest

from repro.errors import TraceTypeError
from repro.dag.graph import TransductionDAG
from repro.dag.typecheck import typecheck_dag
from repro.operators.base import KV
from repro.operators.identity import IdentityOp
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.library import map_values, tumbling_count
from repro.operators.merge import Merge
from repro.operators.sort import SortOp
from repro.operators.split import HashSplit, RoundRobinSplit
from repro.traces.trace_type import ordered_type, unordered_type

U = unordered_type()
O = ordered_type()


class Stateful(OpKeyedOrdered):
    def init(self):
        return None

    def on_item(self, state, key, value, emit):
        emit(key, value)
        return state


class TestAccepts:
    def test_stateless_pipeline(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        op = dag.add_op(map_values(lambda v: v), upstream=[src], edge_types=[U])
        dag.add_sink("out", upstream=op, input_type=U)
        kinds = typecheck_dag(dag)
        assert set(kinds.values()) == {"U"}

    def test_sort_bridges_u_to_o(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        sort = dag.add_op(SortOp(), upstream=[src], edge_types=[U])
        li = dag.add_op(Stateful(), upstream=[sort], edge_types=[O])
        dag.add_sink("out", upstream=li, input_type=O)
        typecheck_dag(dag)

    def test_stateless_consumes_ordered_by_subsumption(self):
        """Figure 5: the stateless Map reads LI's ordered output."""
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=O)
        sort = dag.add_op(SortOp(), upstream=[src], edge_types=[O])
        mapper = dag.add_op(map_values(lambda v: v), upstream=[sort], edge_types=[O])
        dag.add_sink("out", upstream=mapper, input_type=U)
        typecheck_dag(dag)

    def test_inference_fills_unannotated_edges(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        sort = dag.add_op(SortOp(), upstream=[src])
        li = dag.add_op(Stateful(), upstream=[sort])
        dag.add_sink("out", upstream=li)
        kinds = typecheck_dag(dag)
        (sort_out,) = dag.out_edges(sort)
        assert kinds[sort_out.edge_id] == "O"

    def test_hash_split_preserves_kind(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=O)
        split = dag.add_split(HashSplit(2), upstream=src)
        dag.in_edges(split)[0].trace_type = O
        a = dag.add_op(Stateful(), upstream=[split])
        b = dag.add_op(Stateful(), upstream=[split])
        merge = dag.add_merge(Merge(2), upstream=[a, b])
        dag.add_sink("out", upstream=merge)
        kinds = typecheck_dag(dag)
        for edge in dag.out_edges(split):
            assert kinds[edge.edge_id] == "O"


class TestRejects:
    def test_keyed_ordered_on_unordered_edge(self):
        """The Section 2 bug: LI fed an unordered stream."""
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        li = dag.add_op(Stateful(), upstream=[src], edge_types=[U])
        dag.add_sink("out", upstream=li)
        with pytest.raises(TraceTypeError) as exc:
            typecheck_dag(dag)
        assert "SORT" in str(exc.value) or "ordered" in str(exc.value)

    def test_round_robin_on_ordered_edge(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=O)
        split = dag.add_split(RoundRobinSplit(2), upstream=src)
        dag.in_edges(split)[0].trace_type = O
        a = dag.add_op(IdentityOp(), upstream=[split])
        b = dag.add_op(IdentityOp(), upstream=[split])
        merge = dag.add_merge(Merge(2), upstream=[a, b])
        dag.add_sink("out", upstream=merge)
        with pytest.raises(TraceTypeError):
            typecheck_dag(dag)

    def test_round_robin_on_inferred_ordered_edge(self):
        """Even without an annotation, SORT's output is inferred O and RR
        on it must be rejected."""
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        sort = dag.add_op(SortOp(), upstream=[src])
        split = dag.add_split(RoundRobinSplit(2), upstream=sort)
        a = dag.add_op(IdentityOp(), upstream=[split])
        b = dag.add_op(IdentityOp(), upstream=[split])
        merge = dag.add_merge(Merge(2), upstream=[a, b])
        dag.add_sink("out", upstream=merge)
        with pytest.raises(TraceTypeError):
            typecheck_dag(dag)

    def test_merge_of_mixed_kinds(self):
        dag = TransductionDAG()
        a = dag.add_source("a", output_type=U)
        b = dag.add_source("b", output_type=O)
        merge = dag.add_merge(Merge(2), upstream=[a, b])
        dag.in_edges(merge)[0].trace_type = U
        dag.in_edges(merge)[1].trace_type = O
        dag.add_sink("out", upstream=merge)
        with pytest.raises(TraceTypeError):
            typecheck_dag(dag)

    def test_conflicting_annotations(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        sort = dag.add_op(SortOp(), upstream=[src], edge_types=[U])
        after = dag.add_op(IdentityOp(), upstream=[sort], edge_types=[U])
        dag.add_sink("out", upstream=after)
        # SORT output declared U contradicts its O output kind.
        with pytest.raises(TraceTypeError):
            typecheck_dag(dag)
