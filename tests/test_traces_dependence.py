"""Dependence relations: constructors, symmetry, union (Section 3.1)."""

import pytest

from repro.errors import DependenceError
from repro.traces.dependence import DependenceRelation
from repro.traces.tags import MARKER, Tag

A, B, C = Tag("A"), Tag("B"), Tag("C")


class TestConstructors:
    def test_full_on_finite_tags(self):
        dep = DependenceRelation.full([A, B])
        assert dep.dependent(A, A)
        assert dep.dependent(A, B)
        assert not dep.dependent(A, C)  # C not in the finite square

    def test_full_unbounded(self):
        dep = DependenceRelation.full()
        assert dep.dependent(A, C)
        assert dep.dependent(MARKER, MARKER)

    def test_empty(self):
        dep = DependenceRelation.empty()
        assert dep.independent(A, A)
        assert dep.independent(A, B)

    def test_keyed_self_dependence_only(self):
        dep = DependenceRelation.keyed()
        assert dep.dependent(A, A)
        assert dep.independent(A, B)

    def test_marker_relation_unordered(self):
        dep = DependenceRelation.with_marker(data_tags_self_dependent=False)
        assert dep.dependent(MARKER, MARKER)
        assert dep.dependent(A, MARKER)
        assert dep.dependent(MARKER, B)
        assert dep.independent(A, A)
        assert dep.independent(A, B)

    def test_marker_relation_ordered(self):
        dep = DependenceRelation.with_marker(data_tags_self_dependent=True)
        assert dep.dependent(A, A)
        assert dep.independent(A, B)
        assert dep.dependent(A, MARKER)


class TestExplicitPairs:
    def test_pairs_are_symmetrized(self):
        dep = DependenceRelation(pairs=[(A, B)])
        assert dep.dependent(A, B)
        assert dep.dependent(B, A)

    def test_restricted_to(self):
        dep = DependenceRelation(pairs=[(A, B)])
        square = dep.restricted_to([A, B, C])
        assert (A, B) in square and (B, A) in square
        assert (A, C) not in square

    def test_check_symmetric_passes_for_builtin(self):
        DependenceRelation.keyed().check_symmetric([A, B, C])

    def test_check_symmetric_catches_bad_predicate(self):
        bad = DependenceRelation(predicate=lambda a, b: a == A and b == B)
        # The predicate itself is asymmetric, but `dependent` symmetrizes
        # it by checking both directions, so this passes.
        bad.check_symmetric([A, B])

    def test_union(self):
        dep = DependenceRelation(pairs=[(A, B)]).union(
            DependenceRelation(pairs=[(B, C)])
        )
        assert dep.dependent(A, B)
        assert dep.dependent(B, C)
        assert not dep.dependent(A, C)

    def test_union_preserves_rules(self):
        dep = DependenceRelation.keyed().union(DependenceRelation(pairs=[(A, B)]))
        assert dep.dependent(C, C)
        assert dep.dependent(A, B)
