"""The in-memory relational substrate (the Derby substitution)."""

import pytest

from repro.errors import SchemaError
from repro.db import Column, Derby, KeyValueStore, Schema, Table


def ads_table():
    table = Table("ads", Schema([Column("ad_id", int), Column("campaign_id", int)]))
    table.insert_many((i, i // 10) for i in range(100))
    return table


class TestSchema:
    def test_column_type_check(self):
        with pytest.raises(SchemaError):
            Column("x", int).check("not-an-int")

    def test_untyped_column_accepts_anything(self):
        Column("x").check(object())

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a"), Column("a")])

    def test_row_arity_checked(self):
        schema = Schema([Column("a"), Column("b")])
        with pytest.raises(SchemaError):
            schema.check_row((1,))

    def test_position_unknown_column(self):
        with pytest.raises(SchemaError):
            Schema([Column("a")]).position("z")


class TestTable:
    def test_insert_and_len(self):
        assert len(ads_table()) == 100

    def test_ill_typed_row_rejected(self):
        table = ads_table()
        with pytest.raises(SchemaError):
            table.insert(("x", 1))

    def test_indexed_lookup(self):
        table = ads_table()
        table.create_index("ad_id")
        assert table.lookup_one("ad_id", 42) == (42, 4)
        assert table.lookup_count == 1
        assert table.scan_count == 0

    def test_unindexed_lookup_scans(self):
        table = ads_table()
        assert table.lookup_one("ad_id", 42) == (42, 4)
        assert table.scan_count == 1

    def test_lookup_missing(self):
        table = ads_table()
        table.create_index("ad_id")
        assert table.lookup_one("ad_id", 999) is None

    def test_index_built_over_existing_rows(self):
        table = ads_table()
        table.create_index("campaign_id")
        assert len(table.lookup("campaign_id", 3)) == 10

    def test_index_maintained_on_insert(self):
        table = ads_table()
        table.create_index("ad_id")
        table.insert((100, 10))
        assert table.lookup_one("ad_id", 100) == (100, 10)

    def test_select(self):
        table = ads_table()
        rows = table.select(lambda row: row[1] == 0)
        assert len(rows) == 10

    def test_project(self):
        table = ads_table()
        assert table.project((42, 4), ["campaign_id"]) == (4,)

    def test_join(self):
        campaigns = Table(
            "campaigns", Schema([Column("cid", int), Column("name", str)])
        )
        campaigns.insert_many((i, f"c{i}") for i in range(10))
        joined = ads_table().join(campaigns, "campaign_id", "cid")
        assert len(joined) == 100
        assert joined[0][-1].startswith("c")


class TestStore:
    def test_put_get(self):
        store = KeyValueStore()
        store.put("a", 1)
        assert store.get("a") == 1
        assert store.get("missing", 99) == 99

    def test_counters(self):
        store = KeyValueStore()
        store.put("a", 1)
        store.put("a", 2)
        store.get("a")
        assert store.write_count == 2
        assert store.read_count == 1

    def test_delete_and_contains(self):
        store = KeyValueStore()
        store.put("a", 1)
        store.delete("a")
        assert "a" not in store
        assert len(store) == 0

    def test_snapshot_is_a_copy(self):
        store = KeyValueStore()
        store.put("a", 1)
        snap = store.snapshot()
        store.put("a", 2)
        assert snap == {"a": 1}


class TestDerby:
    def test_facade_lookup(self):
        db = Derby()
        t = db.create_table("ads", [("ad_id", int), ("campaign_id", int)])
        t.insert_many((i, i % 3) for i in range(9))
        t.create_index("ad_id")
        assert db.lookup("ads", "ad_id", 4) == (4, 1)
        assert db.total_lookups() == 1

    def test_facade_persist(self):
        db = Derby()
        db.create_store("aggregates")
        db.persist("aggregates", "k", 7)
        assert db.stores["aggregates"].get("k") == 7
        assert db.total_writes() == 1

    def test_duplicate_ddl_rejected(self):
        db = Derby()
        db.create_table("t", [("a", int)])
        with pytest.raises(SchemaError):
            db.create_table("t", [("a", int)])
        db.create_store("s")
        with pytest.raises(SchemaError):
            db.create_store("s")
