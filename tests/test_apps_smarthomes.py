"""The Smart-Homes case study: workload shape, per-stage behaviour, and
the Figure 5 pipeline's deployment and semantics."""

import pytest

from repro.apps.smarthomes.events import (
    DEVICE_TYPES,
    PlugReading,
    SmartHomesWorkload,
    device_load,
)
from repro.apps.smarthomes.pipeline import (
    AveragePerSecondOp,
    LinearInterpolationOp,
    PredictOp,
    smart_homes_costs,
    smart_homes_dag,
)
from repro.apps.smarthomes.prediction import (
    make_features,
    train_predictor,
    training_series,
)
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import evaluate_dag, typecheck_dag
from repro.ml import fill_series
from repro.operators.base import KV, Marker
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


@pytest.fixture(scope="module")
def workload():
    return SmartHomesWorkload(
        n_buildings=2, units_per_building=2, plugs_per_unit=2, duration=60
    )


@pytest.fixture(scope="module")
def models():
    return train_predictor(horizon=120, train_seconds=600, past=60)


class TestWorkload:
    def test_deterministic(self, workload):
        assert workload.events() == workload.events()

    def test_watermark_guarantee(self, workload):
        """All measurements with ts < period*i precede the i-th marker."""
        seen_markers = 0
        for event in workload.events():
            if isinstance(event, Marker):
                seen_markers += 1
            else:
                assert event.value.timestamp >= (seen_markers) * workload.marker_period - workload.marker_period
                assert event.value.timestamp < (seen_markers + 1) * workload.marker_period

    def test_has_gaps_and_duplicates(self, workload):
        by_plug = {}
        for reading in workload.readings():
            by_plug.setdefault(reading.plug_key(), []).append(reading.timestamp)
        gaps = sum(
            1
            for times in by_plug.values()
            for a, b in zip(sorted(times), sorted(times)[1:])
            if b - a > 4
        )
        duplicates = sum(
            len(times) - len(set(times)) for times in by_plug.values()
        )
        assert gaps > 0, "workload must contain gaps"
        assert duplicates > 0, "workload must contain duplicate timestamps"

    def test_database_covers_all_plugs(self, workload):
        db = workload.make_database()
        for key in workload.plug_keys():
            row = db.lookup("plugs", "plug_key", key)
            assert row is not None and row[1] in DEVICE_TYPES

    def test_load_model_nonnegative(self):
        import random

        rng = random.Random(0)
        for device in DEVICE_TYPES:
            for t in (0, 3600, 43200, 86399):
                assert device_load(device, t, rng) >= 0.0


class TestStages:
    def test_interpolation_matches_batch_oracle(self):
        op = LinearInterpolationOp()
        samples = [(0, 10.0), (3, 16.0), (5, 20.0)]
        events = [KV("p", (v, t, "ac")) for t, v in samples]
        out = op.run(events)
        got = [(value[1], value[0]) for e in out if isinstance(e, KV)
               for value in [e.value]]
        expected = fill_series(samples)
        assert [(t, v) for t, v in got] == [(t, v) for t, v in expected]

    def test_interpolation_skips_duplicates(self):
        op = LinearInterpolationOp()
        out = op.run([
            KV("p", (1.0, 0, "ac")),
            KV("p", (9.0, 0, "ac")),  # duplicate ts
            KV("p", (3.0, 2, "ac")),
        ])
        values = [e.value for e in out if isinstance(e, KV)]
        assert values == [(1.0, 0, "ac"), (2.0, 1, "ac"), (3.0, 2, "ac")]

    def test_average_groups_by_timestamp(self):
        op = AveragePerSecondOp()
        out = op.run([
            KV("ac", (10.0, 1)), KV("ac", (20.0, 1)), KV("ac", (30.0, 2)),
        ])
        emitted = [e.value for e in out if isinstance(e, KV)]
        assert emitted == [(15.0, 1)]  # ts=2 group still open

    def test_predict_emits_after_warmup(self, models):
        op = PredictOp(models, past=10)
        events = [KV("ac", (500.0, t)) for t in range(20)]
        out = op.run(events)
        predictions = [e for e in out if isinstance(e, KV)]
        assert predictions, "predictor must emit once the window is warm"
        ts, value = predictions[-1].value
        assert value > 0


class TestTraining:
    def test_feature_extraction_shapes(self):
        series = training_series("ac", 300, seed=1)
        X, y = make_features(series, horizon=60, past=30)
        assert len(X) == len(y) == 300 - 30 - 60
        assert all(len(x) == 3 for x in X)

    def test_models_cover_all_device_types(self, models):
        assert set(models) == set(DEVICE_TYPES)

    def test_prediction_scale_reasonable(self, models):
        """A heater's 2-minute forecast should be near 120x its typical
        per-second load (sanity of units)."""
        series = training_series("heater", 400, seed=9)
        X, y = make_features(series, horizon=120, past=60)
        prediction = models["heater"].predict(X[0])
        assert 0.2 * min(y) <= prediction <= 2.0 * max(y)


class TestPipeline:
    def test_typechecks_and_renders(self, workload, models):
        dag = smart_homes_dag(workload.make_database(), models, parallelism=2)
        typecheck_dag(dag)

    def test_figure5_deployment_shape(self, workload, models):
        dag = smart_homes_dag(workload.make_database(), models, parallelism=2)
        compiled = compile_dag(
            dag, {"hub": source_from_events(workload.events(), 2)}
        )
        assert list(compiled.topology.components) == [
            "hub", "JFM", "SORT1;LI;Map", "SORT2;Avg;Predict", "SINK",
        ]

    def test_compiled_equals_denotation(self, workload, models):
        events = workload.events()
        dag = smart_homes_dag(workload.make_database(), models, parallelism=2)
        expected = evaluate_dag(dag, {"hub": events}).sink_trace("SINK", True)
        compiled = compile_dag(
            smart_homes_dag(workload.make_database(), models, parallelism=2),
            {"hub": source_from_events(events, 2)},
        )
        for seed in (0, 4):
            LocalRunner(compiled.topology, seed=seed).run()
            got = events_to_trace(compiled.sinks["SINK"].aligned_events, True)
            assert got == expected

    def test_pipeline_produces_predictions(self, workload, models):
        events = workload.events()
        dag = smart_homes_dag(workload.make_database(), models, parallelism=1)
        trace = evaluate_dag(dag, {"hub": events}).sink_trace("SINK", True)
        assert trace.total_pairs() > 0

    def test_cost_table_covers_all_vertices(self, workload, models):
        dag = smart_homes_dag(workload.make_database(), models, parallelism=1)
        costs = smart_homes_costs()
        from repro.dag.graph import VertexKind

        for vertex in dag.vertices.values():
            if vertex.kind == VertexKind.OP:
                assert vertex.name in costs
